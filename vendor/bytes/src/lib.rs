//! Offline stand-in for the `bytes` crate, providing the subset of the
//! [`Bytes`] API this workspace uses: cheaply cloneable, immutable,
//! reference-counted byte buffers.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice (no copy semantics matter here; the slice
    /// is copied into the shared buffer once).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a new `Bytes` over the given sub-range.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes { data: Arc::from(&self.data[range]) }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes[len={}]", self.data.len())
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let s = Bytes::from_static(b"abc");
        assert_eq!(s.to_vec(), b"abc".to_vec());
        assert_eq!(Bytes::new().len(), 0);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let b = Bytes::from(vec![9u8; 1000]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.slice(10..20).len(), 10);
    }
}
