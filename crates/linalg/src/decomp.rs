//! Matrix decompositions: LU (with partial pivoting), Cholesky, QR.

use crate::matrix::{Matrix, MatrixError};

const SINGULARITY_EPS: f64 = 1e-12;

/// Solves `a * x = b` for square `a` using LU decomposition with partial
/// pivoting.
///
/// # Errors
///
/// [`MatrixError::ShapeMismatch`] if `a` is not square or `b` has the wrong
/// length; [`MatrixError::Singular`] if a pivot is (numerically) zero.
///
/// # Examples
///
/// ```
/// use coda_linalg::{lu_solve, Matrix};
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// assert_eq!(lu_solve(&a, &[2.0, 3.0]).unwrap(), vec![3.0, 2.0]);
/// ```
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MatrixError::ShapeMismatch { left: a.shape(), right: a.shape() });
    }
    if b.len() != n {
        return Err(MatrixError::ShapeMismatch { left: a.shape(), right: (b.len(), 1) });
    }
    let mut lu = a.clone();
    let mut x = b.to_vec();
    // scale reference for the singularity test
    let scale = lu.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
    for k in 0..n {
        // pivot
        let mut p = k;
        let mut max = lu[(k, k)].abs();
        for r in (k + 1)..n {
            let v = lu[(r, k)].abs();
            if v > max {
                max = v;
                p = r;
            }
        }
        if max <= SINGULARITY_EPS * scale {
            return Err(MatrixError::Singular);
        }
        if p != k {
            for c in 0..n {
                let tmp = lu[(k, c)];
                lu[(k, c)] = lu[(p, c)];
                lu[(p, c)] = tmp;
            }
            x.swap(k, p);
        }
        let pivot = lu[(k, k)];
        for r in (k + 1)..n {
            let f = lu[(r, k)] / pivot;
            if f == 0.0 {
                continue;
            }
            lu[(r, k)] = 0.0;
            for c in (k + 1)..n {
                let v = lu[(k, c)];
                lu[(r, c)] -= f * v;
            }
            x[r] -= f * x[k];
        }
    }
    // back substitution
    for k in (0..n).rev() {
        let mut s = x[k];
        for c in (k + 1)..n {
            s -= lu[(k, c)] * x[c];
        }
        x[k] = s / lu[(k, k)];
    }
    Ok(x)
}

/// Cholesky factorization of a symmetric positive-definite matrix: returns
/// lower-triangular `L` with `a = L * Lᵀ`.
///
/// # Errors
///
/// [`MatrixError::ShapeMismatch`] if `a` is not square;
/// [`MatrixError::NotPositiveDefinite`] if a diagonal pivot is non-positive.
///
/// # Examples
///
/// ```
/// use coda_linalg::{cholesky, Matrix};
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let l = cholesky(&a).unwrap();
/// let rebuilt = l.matmul(&l.transpose()).unwrap();
/// assert!((&rebuilt - &a).frobenius_norm() < 1e-12);
/// ```
pub fn cholesky(a: &Matrix) -> Result<Matrix, MatrixError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MatrixError::ShapeMismatch { left: a.shape(), right: a.shape() });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(MatrixError::NotPositiveDefinite);
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `a x = b` for symmetric positive-definite `a` via Cholesky.
///
/// # Errors
///
/// Propagates [`cholesky`] errors, plus [`MatrixError::ShapeMismatch`] for a
/// wrong-length `b`.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    let l = cholesky(a)?;
    let n = l.rows();
    if b.len() != n {
        return Err(MatrixError::ShapeMismatch { left: a.shape(), right: (b.len(), 1) });
    }
    // forward solve L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[(i, k)] * y[k];
        }
        y[i] = s / l[(i, i)];
    }
    // back solve Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * x[k];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

/// Thin QR factorization via modified Gram-Schmidt: `a = Q * R` with
/// `Q` (m x n, orthonormal columns) and `R` (n x n, upper triangular).
///
/// # Errors
///
/// [`MatrixError::Singular`] if a column is (numerically) linearly dependent
/// on earlier columns.
pub fn qr(a: &Matrix) -> Result<(Matrix, Matrix), MatrixError> {
    let (m, n) = a.shape();
    let mut q = a.clone();
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..j {
            let mut dotv = 0.0;
            for k in 0..m {
                dotv += q[(k, i)] * q[(k, j)];
            }
            r[(i, j)] = dotv;
            for k in 0..m {
                let v = q[(k, i)];
                q[(k, j)] -= dotv * v;
            }
        }
        let mut norm = 0.0;
        for k in 0..m {
            norm += q[(k, j)] * q[(k, j)];
        }
        let norm = norm.sqrt();
        if norm <= SINGULARITY_EPS {
            return Err(MatrixError::Singular);
        }
        r[(j, j)] = norm;
        for k in 0..m {
            q[(k, j)] /= norm;
        }
    }
    Ok((q, r))
}

/// Least-squares solve of `a x ≈ b` (m ≥ n) via QR.
///
/// # Errors
///
/// Propagates [`qr`] errors, plus [`MatrixError::ShapeMismatch`] for a
/// wrong-length `b`.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(MatrixError::ShapeMismatch { left: a.shape(), right: (b.len(), 1) });
    }
    let (q, r) = qr(a)?;
    // qtb = Qᵀ b
    let mut qtb = vec![0.0; n];
    for j in 0..n {
        let mut s = 0.0;
        for k in 0..m {
            s += q[(k, j)] * b[k];
        }
        qtb[j] = s;
    }
    // back solve R x = qtb
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = qtb[i];
        for k in (i + 1)..n {
            s -= r[(i, k)] * x[k];
        }
        x[i] = s / r[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_solve_pivoting_needed() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]);
        let x = lu_solve(&a, &[4.0, 3.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lu_rejects_nonsquare() {
        let a = Matrix::zeros(2, 3);
        assert!(lu_solve(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn cholesky_roundtrip() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]]);
        let l = cholesky(&a).unwrap();
        let r = l.matmul(&l.transpose()).unwrap();
        assert!((&r - &a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(cholesky(&a).unwrap_err(), MatrixError::NotPositiveDefinite);
    }

    #[test]
    fn cholesky_solve_matches_lu() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let b = [1.0, 2.0];
        let x1 = cholesky_solve(&a, &b).unwrap();
        let x2 = lu_solve(&a, &b).unwrap();
        assert!((x1[0] - x2[0]).abs() < 1e-12);
        assert!((x1[1] - x2[1]).abs() < 1e-12);
    }

    #[test]
    fn qr_orthonormal_and_reconstructs() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let (q, r) = qr(&a).unwrap();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!((&qtq - &Matrix::identity(2)).frobenius_norm() < 1e-10);
        let back = q.matmul(&r).unwrap();
        assert!((&back - &a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn lstsq_exact_fit() {
        // y = 2x + 1 through augmented design [1, x]
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let b = [1.0, 3.0, 5.0];
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_overdetermined_minimizes() {
        // noisy y = x; residual of solution must be <= residual of slope 0.9/1.1
        let a = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let b = [0.1, 0.9, 2.1, 2.9];
        let x = lstsq(&a, &b).unwrap();
        let resid = |s: f64| -> f64 { (0..4).map(|i| (b[i] - s * a[(i, 0)]).powi(2)).sum() };
        assert!(resid(x[0]) <= resid(0.9) + 1e-12);
        assert!(resid(x[0]) <= resid(1.1) + 1e-12);
    }
}
