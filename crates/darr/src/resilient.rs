//! Graceful degradation when the DARR is unreachable: a [`ResilientClient`]
//! keeps computing locally during a partition, journaling results into a
//! [`WriteBehindJournal`] that is replayed into the repository (keep-newer
//! merge) once the [`DarrLink`] reconnects. Cooperation degrades — claims
//! cannot be checked offline — but no result is ever lost.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use coda_chaos::RetryPolicy;

use crate::coop::{CoopOutcome, CoopSummary, CooperativeClient, RetryReport};
use crate::record::{AnalyticsRecord, ComputationKey};
use crate::repo::Darr;

/// A client's (possibly partitioned) connection to the shared repository.
#[derive(Debug)]
pub struct DarrLink<'a> {
    darr: &'a Darr,
    up: AtomicBool,
}

impl<'a> DarrLink<'a> {
    /// A connected link to `darr`.
    pub fn new(darr: &'a Darr) -> Self {
        DarrLink { darr, up: AtomicBool::new(true) }
    }

    /// True when the repository is reachable.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Partitions (`false`) or heals (`true`) the link.
    pub fn set_up(&self, up: bool) {
        self.up.store(up, Ordering::SeqCst);
    }

    /// The repository, when reachable.
    pub fn darr(&self) -> Option<&'a Darr> {
        if self.is_up() {
            Some(self.darr)
        } else {
            None
        }
    }
}

/// Results computed while partitioned, waiting to be replayed.
#[derive(Debug, Default)]
pub struct WriteBehindJournal {
    pending: Mutex<Vec<AnalyticsRecord>>,
}

impl WriteBehindJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a locally-computed record.
    pub fn journal(&self, record: AnalyticsRecord) {
        self.pending.lock().push(record);
    }

    /// Records waiting for replay.
    pub fn len(&self) -> usize {
        self.pending.lock().len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replays every queued record into `darr` (keep-newer merge), clearing
    /// the journal. Returns how many records the repository applied —
    /// records another client recomputed with a newer timestamp during the
    /// partition are dropped, not duplicated.
    pub fn replay(&self, darr: &Darr) -> usize {
        let drained: Vec<AnalyticsRecord> = std::mem::take(&mut *self.pending.lock());
        drained.into_iter().filter(|r| darr.merge_record(r.clone())).count()
    }
}

/// Counters from a resilient worklist pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilientSummary {
    /// Cooperative counters for the keys processed online.
    pub coop: CoopSummary,
    /// Retry/takeover accounting for the online keys.
    pub retry: RetryReport,
    /// Keys computed locally and journaled during a partition.
    pub journaled: usize,
    /// Journaled records the repository accepted on replay.
    pub replayed: usize,
}

/// A cooperating client that keeps working through DARR partitions.
#[derive(Debug)]
pub struct ResilientClient<'a> {
    link: &'a DarrLink<'a>,
    name: String,
    claim_duration: u64,
    journal: WriteBehindJournal,
    /// Logical timestamp for offline records; bumped per journaled result
    /// so replay ordering is well defined even while the DARR clock is
    /// unreachable.
    local_clock: AtomicU64,
}

impl<'a> ResilientClient<'a> {
    /// Creates a client working over `link`.
    pub fn new<S: Into<String>>(link: &'a DarrLink<'a>, name: S, claim_duration: u64) -> Self {
        ResilientClient {
            link,
            name: name.into(),
            claim_duration,
            journal: WriteBehindJournal::new(),
            local_clock: AtomicU64::new(0),
        }
    }

    /// The client's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Results journaled and not yet replayed.
    pub fn journaled(&self) -> usize {
        self.journal.len()
    }

    /// Replays the journal if the link is up. Returns records applied, or
    /// None while still partitioned.
    pub fn replay_journal(&self) -> Option<usize> {
        self.link.darr().map(|darr| self.journal.replay(darr))
    }

    /// Runs a work list. Online keys go through the cooperative protocol
    /// with `policy`-driven revisits of held claims; while the DARR is
    /// unreachable the client computes locally and journals the result.
    /// Any healed link at the end triggers a journal replay.
    pub fn run_worklist<F>(
        &self,
        keys: &[ComputationKey],
        mut compute: F,
        policy: &RetryPolicy,
    ) -> (ResilientSummary, Vec<CoopOutcome>)
    where
        F: FnMut(&ComputationKey) -> Result<(f64, Vec<f64>, String), String>,
    {
        let mut summary = ResilientSummary::default();
        let mut outcomes = Vec::with_capacity(keys.len());
        let mut online: Vec<usize> = Vec::new();
        for (idx, key) in keys.iter().enumerate() {
            if self.link.is_up() {
                online.push(idx);
                outcomes.push(CoopOutcome::SkippedHeld(String::new())); // placeholder
                continue;
            }
            // partitioned: compute locally, journal for later replay
            match compute(key) {
                Ok((score, folds, explanation)) => {
                    let stored_at = self.local_clock.fetch_add(1, Ordering::SeqCst) + 1;
                    let record = AnalyticsRecord {
                        key: key.clone(),
                        score,
                        fold_scores: folds,
                        explanation,
                        producer: self.name.clone(),
                        stored_at,
                    };
                    self.journal.journal(record.clone());
                    summary.journaled += 1;
                    outcomes.push(CoopOutcome::Computed(record));
                }
                Err(e) => {
                    summary.coop.failed += 1;
                    outcomes.push(CoopOutcome::Failed(e));
                }
            }
        }
        // the online keys run the full cooperative protocol in one batch;
        // a link that dropped since the keys were gathered leaves their
        // SkippedHeld placeholders in place for the next replay
        if !online.is_empty() {
            if let Some(darr) = self.link.darr() {
                let coop = CooperativeClient::new(darr, self.name.clone(), self.claim_duration);
                let online_keys: Vec<ComputationKey> =
                    online.iter().map(|&i| keys[i].clone()).collect();
                let (coop_summary, coop_outcomes, report) =
                    coop.run_worklist_with_retry(&online_keys, &mut compute, policy);
                summary.coop = coop_summary;
                summary.retry = report;
                for (slot, outcome) in online.into_iter().zip(coop_outcomes) {
                    outcomes[slot] = outcome;
                }
            }
        }
        if let Some(applied) = self.replay_journal() {
            summary.replayed = applied;
        }
        (summary, outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<ComputationKey> {
        (0..n)
            .map(|i| ComputationKey::new("ds", 1, &format!("p{i}") as &str, "kfold(3)", "rmse"))
            .collect()
    }

    fn policy() -> RetryPolicy {
        RetryPolicy::fixed(10.0, 3)
    }

    #[test]
    fn online_pass_matches_cooperative_protocol() {
        let darr = Darr::new();
        let link = DarrLink::new(&darr);
        let client = ResilientClient::new(&link, "a", 100);
        let work = keys(4);
        let (summary, outcomes) =
            client.run_worklist(&work, |_| Ok((1.0, vec![], String::new())), &policy());
        assert_eq!(summary.coop.computed, 4);
        assert_eq!(summary.journaled, 0);
        assert_eq!(outcomes.len(), 4);
        assert_eq!(darr.len(), 4);
    }

    #[test]
    fn partition_journals_then_replays_on_heal() {
        let darr = Darr::new();
        let link = DarrLink::new(&darr);
        let client = ResilientClient::new(&link, "a", 100);
        let work = keys(3);
        link.set_up(false);
        let (summary, outcomes) =
            client.run_worklist(&work, |_| Ok((2.0, vec![], String::new())), &policy());
        assert_eq!(summary.journaled, 3);
        assert_eq!(summary.replayed, 0, "still partitioned — nothing replayed");
        assert!(outcomes.iter().all(|o| matches!(o, CoopOutcome::Computed(_))));
        assert_eq!(darr.len(), 0, "repository saw nothing during the partition");
        assert_eq!(client.journaled(), 3);

        link.set_up(true);
        assert_eq!(client.replay_journal(), Some(3));
        assert_eq!(client.journaled(), 0);
        assert_eq!(darr.len(), 3);
        assert_eq!(darr.lookup(&work[0]).unwrap().producer, "a");
    }

    #[test]
    fn replay_defers_to_newer_results_from_other_clients() {
        let darr = Darr::new();
        let link = DarrLink::new(&darr);
        let client = ResilientClient::new(&link, "offline", 100);
        let work = keys(2);
        link.set_up(false);
        client.run_worklist(&work, |_| Ok((1.0, vec![], String::new())), &policy());
        // while partitioned, another client computes one of the keys with a
        // later DARR timestamp
        darr.advance_clock(1000);
        darr.complete(&work[0], "online", 9.0, vec![], "fresher");
        link.set_up(true);
        assert_eq!(client.replay_journal(), Some(1), "only the unseen key applies");
        assert_eq!(darr.lookup(&work[0]).unwrap().producer, "online");
        assert_eq!(darr.lookup(&work[1]).unwrap().producer, "offline");
    }

    #[test]
    fn heal_mid_worklist_replays_at_the_end() {
        let darr = Darr::new();
        let link = DarrLink::new(&darr);
        let client = ResilientClient::new(&link, "a", 100);
        let work = keys(4);
        link.set_up(false);
        let mut seen = 0;
        let (summary, _) = client.run_worklist(
            &work,
            |_| {
                seen += 1;
                if seen == 2 {
                    // the partition heals while we are mid-list
                    link.set_up(true);
                }
                Ok((1.0, vec![], String::new()))
            },
            &policy(),
        );
        assert_eq!(summary.journaled, 2);
        assert_eq!(summary.coop.computed, 2);
        assert_eq!(summary.replayed, 2);
        assert_eq!(darr.len(), 4, "nothing lost across the heal");
    }

    #[test]
    fn offline_compute_failure_is_counted_not_journaled() {
        let darr = Darr::new();
        let link = DarrLink::new(&darr);
        let client = ResilientClient::new(&link, "a", 100);
        link.set_up(false);
        let (summary, outcomes) =
            client.run_worklist(&keys(1), |_| Err("boom".to_string()), &policy());
        assert_eq!(summary.coop.failed, 1);
        assert_eq!(summary.journaled, 0);
        assert!(matches!(outcomes[0], CoopOutcome::Failed(_)));
    }
}
