/root/repo/target/debug/deps/coda-00588cc8be619bdb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcoda-00588cc8be619bdb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
