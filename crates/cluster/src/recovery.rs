//! Deterministic kill-restart driver: two durable home-store nodes and a
//! shared DARR under a [`CrashPlan`], exercising the full crash-stop
//! failure path end to end —
//!
//! 1. the acting home serves puts (WAL-logged, delta-replicated to the
//!    subscribed replica) and works a cooperative DARR item list;
//! 2. a [`CrashSchedule`] kills a node the moment its WAL reaches the
//!    planned operation count;
//! 3. the [`FailureDetector`] accrues suspicion from the silence, and once
//!    it reaches the *dead* verdict **and** the home lease expires,
//!    [`HomeLeaseFailover`] promotes the surviving replica;
//! 4. the new home reaps the dead node's orphaned DARR claims after a
//!    grace period and takes the interrupted work over;
//! 5. at the scheduled restart the node replays its WAL — the recovered
//!    state must be byte-identical to the pre-crash export — rejoins the
//!    heartbeat ring, and demotes/catches up over the existing delta
//!    chains when it lost the home role.
//!
//! Every clock is logical and every decision deterministic, so a run with
//! the same [`CrashRecoveryConfig`] replays bit-identically, and a run
//! crashed at *any* WAL crash point converges to the same final
//! store/DARR digest as the crash-free run — the property the
//! kill-restart acceptance test sweeps exhaustively.

use std::collections::BTreeSet;

use bytes::Bytes;
use coda_chaos::{CrashPlan, CrashSchedule};
use coda_darr::{ClaimOutcome, ComputationKey, Darr};
use coda_obs::Obs;
use coda_store::{
    DeltaCodec, DurableStore, FailoverDecision, FetchReply, HomeLeaseFailover, PushMode,
    UpdateMessage,
};

use crate::failure::{DetectorConfig, FailureDetector, Liveness};

/// Logical milliseconds per driver round (heartbeat interval; the DARR and
/// home-lease clocks tick once per round).
const STEP_MS: f64 = 10.0;
/// Store-clock ticks a replica subscription lasts — effectively forever.
const SUBSCRIPTION_TICKS: u64 = 1_000_000;

/// Configuration of one kill-restart run. Driver times are logical
/// milliseconds; lease/claim/grace times are logical ticks (one per round).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRecoveryConfig {
    /// Seed mixed into every payload (varies content across CI matrix runs).
    pub seed: u64,
    /// Distinct store objects written round-robin.
    pub n_objects: usize,
    /// Puts the workload performs in total.
    pub n_puts: usize,
    /// Cooperative DARR work items.
    pub n_items: usize,
    /// Payload bytes per object version.
    pub payload_len: usize,
    /// Fold the WAL into a snapshot after this many records (0 = never).
    pub snapshot_every: usize,
    /// The crash-stop schedule (empty plan = crash-free baseline).
    pub plan: CrashPlan,
    /// Home-lease duration in ticks (renewed every round by the holder).
    pub home_lease: u64,
    /// DARR claim duration in ticks (long: orphans are cleared by
    /// *reaping*, not expiry).
    pub claim_duration: u64,
    /// Ticks past the detector's dead verdict before orphaned claims reap.
    pub reap_grace: u64,
    /// Safety cap on driver rounds.
    pub max_rounds: usize,
}

impl Default for CrashRecoveryConfig {
    fn default() -> Self {
        CrashRecoveryConfig {
            seed: 7,
            n_objects: 3,
            n_puts: 12,
            n_items: 8,
            payload_len: 512,
            snapshot_every: 8,
            plan: CrashPlan::new(),
            home_lease: 5,
            claim_duration: 10_000,
            reap_grace: 2,
            max_rounds: 400,
        }
    }
}

/// What happened in one kill-restart run — the ground truth the
/// acceptance test compares against the crash-free baseline and across
/// same-seed replays.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRecoveryReport {
    /// Driver rounds executed.
    pub rounds: usize,
    /// Crash events fired by the schedule.
    pub crashes: u64,
    /// Restart events fired by the schedule.
    pub restarts: u64,
    /// Home promotions performed.
    pub failovers: u64,
    /// Detector alive→suspect transitions.
    pub suspicions: u64,
    /// Detector →dead transitions.
    pub deaths: u64,
    /// Orphaned DARR claims reaped from dead owners.
    pub reaped_claims: u64,
    /// WAL records replayed across all recoveries.
    pub wal_replayed_records: u64,
    /// Recoveries whose replayed state matched the pre-crash export
    /// byte for byte.
    pub byte_identical_recoveries: u64,
    /// Recoveries that diverged (must stay zero).
    pub recovery_mismatches: u64,
    /// Interrupted work items re-claimed after a reap.
    pub takeovers: u64,
    /// Work items completed (must reach `n_items`).
    pub completed: usize,
    /// The home at the end of the run.
    pub final_home: String,
    /// WAL operation count at the initial home (`node-0`) when the run
    /// ended — in a crash-free baseline this is the number of crash
    /// points an exhaustive kill-restart sweep must cover.
    pub home_ops: u64,
    /// Canonical digest of the final store contents and DARR outcomes —
    /// producer- and timing-independent, so a crashed run and the
    /// crash-free baseline must produce the *same* digest. In a sharded
    /// run this is the concatenation of the per-shard digests in shard
    /// order.
    pub digest: String,
    /// The per-shard digests (one entry for an unsharded run) — lets a
    /// chaos test assert that killing one shard's home left every *other*
    /// shard's digest untouched.
    pub shard_digests: Vec<String>,
}

impl coda_obs::Publish for CrashRecoveryReport {
    fn publish(&self, registry: &coda_obs::MetricsRegistry) {
        // components attached live (failover, detector, DARR, stores)
        // already emitted their own counters; only driver-level facts here
        registry.count("coda_cluster_recovery_rounds", self.rounds as u64);
        registry.count("coda_cluster_recovery_crashes", self.crashes);
        registry.count("coda_cluster_recovery_restarts", self.restarts);
        registry.count("coda_cluster_recovery_takeovers", self.takeovers);
        registry.count("coda_cluster_recovery_byte_identical", self.byte_identical_recoveries);
        registry.count("coda_cluster_recovery_mismatches", self.recovery_mismatches);
        registry.count("coda_cluster_recovery_completed", self.completed as u64);
    }
}

/// Deterministic payload for the `j`-th put: a seed-keyed base pattern
/// with a small `j`-dependent splice, so consecutive versions of an object
/// differ by a few bytes and the delta replication path actually carries
/// deltas.
fn payload(seed: u64, j: usize, len: usize) -> Bytes {
    let mut data: Vec<u8> =
        (0..len).map(|i| ((i as u64).wrapping_mul(13).wrapping_add(seed) % 251) as u8).collect();
    if len >= 8 {
        let at = (j * 7) % (len - 7);
        for (k, b) in data[at..at + 8].iter_mut().enumerate() {
            *b = ((j as u64).wrapping_mul(31).wrapping_add(k as u64) % 251) as u8;
        }
    }
    Bytes::from(data)
}

/// Deterministic score for work item `idx` — identical no matter which
/// node ends up computing it.
fn score_for(idx: usize) -> f64 {
    0.05 * (idx as f64 + 1.0)
}

/// Applies one replication push to the replica's durable store: full
/// values install directly; deltas apply over the replica's current bytes
/// (falling back to nothing on a broken chain — versions never regress,
/// catch-up will close the gap).
fn apply_push(replica: &mut DurableStore, msg: &UpdateMessage) {
    match msg {
        UpdateMessage::Full { object, version, data, .. } => {
            replica.install_version(object, *version, data.clone());
        }
        UpdateMessage::Delta { object, delta, .. } => {
            let base = match replica.fetch(object, None) {
                Ok(Some(FetchReply::Full { data, .. })) => data,
                _ => return,
            };
            if let Ok(next) = DeltaCodec::apply(&base, delta) {
                replica.install_version(object, delta.target_version, next);
            }
        }
        UpdateMessage::Notify { .. } => {}
    }
}

/// Brings a (re)joining replica current from the acting home over the
/// existing delta chains: fetch with the replica's own version, apply the
/// delta (or install the full value when the chain has been folded away).
/// Returns the number of objects that moved.
fn catch_up(home: &mut DurableStore, replica: &mut DurableStore, objects: &[String]) -> usize {
    let mut moved = 0;
    for id in objects {
        let mine = replica.current_version(id);
        let Ok(Some(reply)) = home.fetch(id, mine) else { continue };
        match reply {
            FetchReply::UpToDate { .. } => {}
            FetchReply::Full { version, data } => {
                if replica.install_version(id, version, data) {
                    moved += 1;
                }
            }
            FetchReply::Delta(delta) => {
                let base = match replica.fetch(id, None) {
                    Ok(Some(FetchReply::Full { data, .. })) => data,
                    _ => continue,
                };
                if let Ok(next) = DeltaCodec::apply(&base, &delta) {
                    if replica.install_version(id, delta.target_version, next) {
                        moved += 1;
                    }
                }
            }
        }
    }
    moved
}

/// Runs one kill-restart scenario to completion (or the round cap).
pub fn run_crash_recovery(cfg: &CrashRecoveryConfig) -> CrashRecoveryReport {
    run_crash_recovery_obs(cfg, None)
}

/// Like [`run_crash_recovery`], but with optional observability: the run
/// gets a `recovery.run` root span with crash / promotion / reap /
/// rejoin point events, WAL replays run in `store.wal_replay` child
/// spans, and the detector, failover gate, DARR and stores all count live
/// into the attached registry (`coda_cluster_failovers_total`,
/// `coda_darr_claims_reaped_total`, `coda_store_wal_replays`, …). A
/// manual observer clock is kept in lockstep with driver time, so two
/// same-seed runs emit byte-identical trace logs and metrics.
pub fn run_crash_recovery_obs(cfg: &CrashRecoveryConfig, obs: Option<&Obs>) -> CrashRecoveryReport {
    run_crash_recovery_sharded(cfg, 1, obs)
}

/// The sharded generalization of [`run_crash_recovery_obs`]: the workload
/// partitions into `n_shards` independent home/replica *lanes* by the
/// tier-wide stable routing hash ([`coda_store::shard_of`]) — objects by
/// id, work items by their `dataset|pipeline` key — and each lane runs
/// the full kill-restart driver over its slice. Lane `k`'s nodes are
/// named `s{k}-node-0` / `s{k}-node-1`, so a [`CrashPlan`] can target one
/// shard's home without touching the rest; points addressed to other
/// lanes simply never fire in this one. With `n_shards == 1` the node
/// names stay `node-0`/`node-1` and the run is byte-for-byte the
/// historical unsharded driver.
///
/// The aggregated report sums counters across lanes, takes the maximum
/// round count, joins the per-lane homes with `,` into `final_home`, and
/// concatenates the per-lane digests (also kept individually in
/// `shard_digests`).
pub fn run_crash_recovery_sharded(
    cfg: &CrashRecoveryConfig,
    n_shards: usize,
    obs: Option<&Obs>,
) -> CrashRecoveryReport {
    assert!(n_shards >= 1, "need at least one shard lane");
    if n_shards == 1 {
        let lane = LaneSpec {
            prefix: String::new(),
            objects: (0..cfg.n_objects).map(|j| format!("obj-{j}")).collect(),
            puts: (0..cfg.n_puts).collect(),
            items: (0..cfg.n_items).collect(),
        };
        return run_lane(cfg, obs, &lane);
    }
    let reports: Vec<CrashRecoveryReport> = (0..n_shards)
        .map(|k| {
            let lane = LaneSpec {
                prefix: format!("s{k}-"),
                objects: (0..cfg.n_objects)
                    .map(|j| format!("obj-{j}"))
                    .filter(|id| coda_store::shard_of(id, n_shards) == k)
                    .collect(),
                puts: (0..cfg.n_puts)
                    .filter(|j| {
                        coda_store::shard_of(&format!("obj-{}", j % cfg.n_objects), n_shards) == k
                    })
                    .collect(),
                items: (0..cfg.n_items)
                    .filter(|i| coda_store::shard_of(&format!("recovery-ds|p{i}"), n_shards) == k)
                    .collect(),
            };
            run_lane(cfg, obs, &lane)
        })
        .collect();

    let mut agg = CrashRecoveryReport {
        rounds: 0,
        crashes: 0,
        restarts: 0,
        failovers: 0,
        suspicions: 0,
        deaths: 0,
        reaped_claims: 0,
        wal_replayed_records: 0,
        byte_identical_recoveries: 0,
        recovery_mismatches: 0,
        takeovers: 0,
        completed: 0,
        final_home: String::new(),
        home_ops: 0,
        digest: String::new(),
        shard_digests: Vec::new(),
    };
    let mut homes = Vec::with_capacity(reports.len());
    for r in reports {
        agg.rounds = agg.rounds.max(r.rounds);
        agg.crashes += r.crashes;
        agg.restarts += r.restarts;
        agg.failovers += r.failovers;
        agg.suspicions += r.suspicions;
        agg.deaths += r.deaths;
        agg.reaped_claims += r.reaped_claims;
        agg.wal_replayed_records += r.wal_replayed_records;
        agg.byte_identical_recoveries += r.byte_identical_recoveries;
        agg.recovery_mismatches += r.recovery_mismatches;
        agg.takeovers += r.takeovers;
        agg.completed += r.completed;
        agg.home_ops += r.home_ops;
        agg.digest.push_str(&r.digest);
        homes.push(r.final_home);
        agg.shard_digests.push(r.digest);
    }
    agg.final_home = homes.join(",");
    agg
}

/// One lane's slice of the sharded workload: the node-name prefix and the
/// global object ids / put indices / item indices this lane owns. Global
/// indices ride along so payloads, scores and digest lines match what the
/// unsharded driver produces for the same work.
struct LaneSpec {
    prefix: String,
    objects: Vec<String>,
    puts: Vec<usize>,
    items: Vec<usize>,
}

/// The kill-restart driver over one lane's slice — the whole historical
/// unsharded driver, parameterized only by node naming and work subset.
fn run_lane(cfg: &CrashRecoveryConfig, obs: Option<&Obs>, lane: &LaneSpec) -> CrashRecoveryReport {
    assert!(cfg.n_objects >= 1 && cfg.n_puts >= 1 && cfg.n_items >= 1, "need a workload");
    let names = [format!("{}node-0", lane.prefix), format!("{}node-1", lane.prefix)];
    let objects: Vec<String> = lane.objects.clone();
    let keys: Vec<ComputationKey> = lane
        .items
        .iter()
        .map(|i| {
            ComputationKey::new("recovery-ds", 1, &format!("p{i}") as &str, "kfold(3)", "rmse")
        })
        .collect();

    let root = obs.map(|o| {
        o.sync_manual_ms(0.0);
        o.tracer().begin_span("recovery.run", None, &[("seed", &cfg.seed.to_string())])
    });
    let event = |name: &str, attrs: &[(&str, &str)]| {
        if let (Some(o), Some(r)) = (obs, root) {
            o.tracer().event_in(r, name, attrs);
        }
    };

    let mut stores: Vec<Option<DurableStore>> = names
        .iter()
        .map(|n| {
            let mut s = DurableStore::new(n.clone(), 4, cfg.snapshot_every);
            if let Some(o) = obs {
                s.attach_obs(o.clone());
            }
            Some(s)
        })
        .collect();
    let mut images = [None, None];
    let mut saved_exports: Vec<Option<String>> = vec![None, None];

    let mut schedule = CrashSchedule::new(cfg.plan.clone());
    let mut detector = FailureDetector::new(DetectorConfig {
        window: 8,
        initial_interval_ms: STEP_MS,
        suspect_phi: 1.0,
        dead_phi: 4.0,
    });
    let mut failover = HomeLeaseFailover::new(names[0].clone(), cfg.home_lease, 0);
    let darr = Darr::new();
    if let Some(o) = obs {
        detector.attach_obs(o.clone());
        failover.attach_obs(o.clone());
        darr.attach_obs(o.clone());
    }
    for n in &names {
        detector.register(n, 0.0);
    }
    // the initial home subscribes its replica to every object (WAL-logged)
    if let Some(home) = stores[0].as_mut() {
        for id in &objects {
            home.subscribe(&names[1], id, PushMode::Delta, SUBSCRIPTION_TICKS);
        }
    }

    let idx_of = |name: &str| names.iter().position(|n| n == name).unwrap_or(0);
    let mut report = CrashRecoveryReport {
        rounds: 0,
        crashes: 0,
        restarts: 0,
        failovers: 0,
        suspicions: 0,
        deaths: 0,
        reaped_claims: 0,
        wal_replayed_records: 0,
        byte_identical_recoveries: 0,
        recovery_mismatches: 0,
        takeovers: 0,
        completed: 0,
        final_home: String::new(),
        home_ops: 0,
        digest: String::new(),
        shard_digests: Vec::new(),
    };
    let mut completed: BTreeSet<usize> = BTreeSet::new();
    let mut orphaned: BTreeSet<usize> = BTreeSet::new();
    let mut in_flight: Option<(usize, String)> = None;
    let mut puts_done = 0usize;

    for round in 0..cfg.max_rounds {
        report.rounds = round + 1;
        let tick = round as u64;
        let now_ms = round as f64 * STEP_MS;
        if let Some(o) = obs {
            o.sync_manual_ms(now_ms);
        }

        // 1. scheduled restarts: replay the WAL, prove byte-identical
        // recovery, rejoin the heartbeat ring, demote + catch up if the
        // home role moved while the node was down
        for node in schedule.due_restarts(now_ms) {
            let i = idx_of(&node);
            let Some(image) = images[i].take() else { continue };
            let (recovered, replayed) = DurableStore::recover_in(image, obs, root);
            report.wal_replayed_records += replayed as u64;
            match saved_exports[i].take() {
                Some(expected) if recovered.export_state() == expected => {
                    report.byte_identical_recoveries += 1;
                }
                _ => report.recovery_mismatches += 1,
            }
            stores[i] = Some(recovered);
            detector.heartbeat(&node, now_ms);
            event("recovery.rejoin", &[("node", &node)]);
            if failover.holder() != node {
                // demoted: catch up from the new home over delta chains
                let holder_idx = idx_of(failover.holder());
                let (a, b) = if holder_idx < i {
                    let (lo, hi) = stores.split_at_mut(i);
                    (lo[holder_idx].as_mut(), hi[0].as_mut())
                } else {
                    let (lo, hi) = stores.split_at_mut(holder_idx);
                    (hi[0].as_mut(), lo[i].as_mut())
                };
                if let (Some(home), Some(me)) = (a, b) {
                    catch_up(home, me, &objects);
                    for id in &objects {
                        home.subscribe(&node, id, PushMode::Delta, SUBSCRIPTION_TICKS);
                    }
                }
            }
        }

        // 2. heartbeats + home lease renewal
        for (i, name) in names.iter().enumerate() {
            if stores[i].is_some() {
                detector.heartbeat(name, now_ms);
            }
        }
        let holder = failover.holder().to_string();
        if stores[idx_of(&holder)].is_some() {
            failover.renew(&holder, tick);
        }

        // 3. failure evaluation and the lease-gated failover decision
        let mut verdicts = [Liveness::Alive, Liveness::Alive];
        for (i, name) in names.iter().enumerate() {
            verdicts[i] = detector.evaluate(name, now_ms);
        }
        let holder_idx = idx_of(&holder);
        let other_idx = 1 - holder_idx;
        let candidate =
            if stores[other_idx].is_some() { Some(names[other_idx].as_str()) } else { None };
        if let FailoverDecision::Promoted { from, to } =
            failover.evaluate(verdicts[holder_idx] == Liveness::Dead, candidate, tick)
        {
            event("recovery.promote", &[("from", &from), ("to", &to)]);
        }

        // 4. reap a dead node's orphaned claims once the grace elapses
        let holder = failover.holder().to_string();
        let holder_alive = stores[idx_of(&holder)].is_some();
        if holder_alive {
            for (i, name) in names.iter().enumerate() {
                if *name == holder || verdicts[i] != Liveness::Dead {
                    continue;
                }
                if let Some(dead_ms) = detector.dead_since(name) {
                    let dead_tick = (dead_ms / STEP_MS) as u64;
                    let reaped = darr.reap_claims(name, dead_tick, cfg.reap_grace);
                    if reaped > 0 {
                        report.reaped_claims += reaped as u64;
                        event("recovery.reap", &[("owner", name), ("claims", &reaped.to_string())]);
                    }
                }
            }
        }

        // 5. complete last round's claim (a crashed owner's claim dangles
        // in the DARR until reaped)
        if let Some((idx, owner)) = in_flight.take() {
            if stores[idx_of(&owner)].is_some() && owner == holder {
                darr.complete(&keys[idx], &owner, score_for(lane.items[idx]), vec![], "recovery");
                completed.insert(idx);
            } else {
                orphaned.insert(idx);
            }
        }

        // 6. the acting home claims the next outstanding work item
        if holder_alive && in_flight.is_none() {
            if let Some(idx) = (0..keys.len()).find(|i| !completed.contains(i)) {
                match darr.try_claim(&keys[idx], &holder, cfg.claim_duration) {
                    ClaimOutcome::Claimed => {
                        if orphaned.remove(&idx) {
                            report.takeovers += 1;
                            event("recovery.takeover", &[("item", &keys[idx].pipeline)]);
                        }
                        in_flight = Some((idx, holder.clone()));
                    }
                    ClaimOutcome::AlreadyComputed(_) => {
                        completed.insert(idx);
                    }
                    ClaimOutcome::HeldBy(_) => {} // wait for the reaper
                }
            }
        }

        // 7. the put workload: next deterministic put, delta-replicated to
        // the live replica
        if holder_alive && puts_done < lane.puts.len() {
            // global put index: the payload and target object must match
            // what the unsharded driver produces for the same put
            let j = lane.puts[puts_done];
            let id = format!("obj-{}", j % cfg.n_objects);
            let data = payload(cfg.seed, j, cfg.payload_len);
            let holder_idx = idx_of(&holder);
            let other_idx = 1 - holder_idx;
            let messages = match stores[holder_idx].as_mut() {
                Some(home) => home.put(&id, data).1,
                None => Vec::new(),
            };
            if let Some(replica) = stores[other_idx].as_mut() {
                for msg in messages.iter().filter(|m| m.client() == names[other_idx]) {
                    apply_push(replica, msg);
                }
            }
            puts_done += 1;
        }

        darr.advance_clock(1);

        // 8. crash points: after the round's operations, each live node
        // consults the schedule with its WAL operation count
        for (i, name) in names.iter().enumerate() {
            let ops = match stores[i].as_ref() {
                Some(s) => s.ops(),
                None => continue,
            };
            if schedule.should_crash(name, ops, now_ms) {
                let Some(store) = stores[i].take() else { continue };
                saved_exports[i] = Some(store.export_state());
                images[i] = Some(store.crash());
                if let Some((idx, owner)) = in_flight.take() {
                    if owner == *name {
                        orphaned.insert(idx);
                    } else {
                        in_flight = Some((idx, owner));
                    }
                }
                event("recovery.crash", &[("node", name), ("at_op", &ops.to_string())]);
            }
        }

        // 9. converged?
        if puts_done == lane.puts.len()
            && completed.len() == keys.len()
            && in_flight.is_none()
            && schedule.pending_restarts() == 0
        {
            break;
        }
    }

    report.crashes = schedule.crashes();
    report.restarts = schedule.restarts();
    report.failovers = failover.failovers();
    report.suspicions = detector.suspicions();
    report.deaths = detector.deaths();
    report.completed = completed.len();
    report.final_home = failover.holder().to_string();
    report.home_ops = stores[0].as_ref().map(DurableStore::ops).unwrap_or(0);

    // digest of the *logical* outcome: final object contents/versions from
    // the acting home (falling back to any live store) plus every DARR
    // result's deterministic score — producer- and timing-free, so it must
    // match between a crashed run and the crash-free baseline
    let digest_idx = if stores[idx_of(failover.holder())].is_some() {
        Some(idx_of(failover.holder()))
    } else {
        stores.iter().position(Option::is_some)
    };
    let mut digest = String::new();
    if let Some(i) = digest_idx {
        if let Some(store) = stores[i].as_mut() {
            for id in &objects {
                if let Ok(Some(FetchReply::Full { version, data })) = store.fetch(id, None) {
                    digest.push_str(&format!(
                        "object {id} v{version} hash={:016x}\n",
                        coda_store::content_hash(&data)
                    ));
                }
            }
        }
    }
    for (idx, key) in keys.iter().enumerate() {
        if let Some(r) = darr.lookup(key) {
            digest.push_str(&format!("item p{} score={:.3}\n", lane.items[idx], r.score));
        }
    }
    digest.push_str(&format!("completed={}\n", report.completed));
    report.digest = digest.clone();
    report.shard_digests = vec![digest];

    if let (Some(o), Some(r)) = (obs, root) {
        o.tracer().end_span(r, &[("home", &report.final_home)]);
        o.publish(&report);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_free_baseline_converges_without_failovers() {
        let cfg = CrashRecoveryConfig::default();
        let report = run_crash_recovery(&cfg);
        assert_eq!(report.completed, cfg.n_items);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.failovers, 0, "no crash = no failover, ever");
        assert_eq!(report.deaths, 0);
        assert_eq!(report.reaped_claims, 0);
        assert_eq!(report.final_home, "node-0");
        assert!(report.digest.contains("completed=8"));
        assert!(report.rounds < cfg.max_rounds);
    }

    #[test]
    fn home_crash_fails_over_reaps_and_matches_the_baseline_digest() {
        let baseline = run_crash_recovery(&CrashRecoveryConfig::default());
        let cfg = CrashRecoveryConfig {
            plan: CrashPlan::new().with_crash_at("node-0", 10, None),
            ..CrashRecoveryConfig::default()
        };
        let report = run_crash_recovery(&cfg);
        assert_eq!(report.crashes, 1);
        assert_eq!(report.failovers, 1, "the replica must be promoted");
        assert_eq!(report.final_home, "node-1");
        assert!(report.deaths >= 1);
        assert!(report.suspicions >= 1, "suspicion precedes the dead verdict");
        assert!(report.reaped_claims >= 1, "the orphaned claim must be reaped");
        assert!(report.takeovers >= 1, "the interrupted item must be retaken");
        assert_eq!(report.completed, cfg.n_items);
        assert_eq!(report.digest, baseline.digest, "the outcome must converge");
    }

    #[test]
    fn restarted_home_replays_byte_identically_and_rejoins() {
        let baseline = run_crash_recovery(&CrashRecoveryConfig::default());
        let cfg = CrashRecoveryConfig {
            plan: CrashPlan::new().with_crash_at("node-0", 10, Some(600.0)),
            ..CrashRecoveryConfig::default()
        };
        let report = run_crash_recovery(&cfg);
        assert_eq!(report.crashes, 1);
        assert_eq!(report.restarts, 1);
        assert_eq!(report.byte_identical_recoveries, 1, "WAL replay must be exact");
        assert_eq!(report.recovery_mismatches, 0);
        assert_eq!(report.failovers, 1);
        assert_eq!(report.final_home, "node-1", "the restarted node demotes");
        assert_eq!(report.digest, baseline.digest);
    }

    #[test]
    fn replica_crash_never_moves_the_home_role() {
        let baseline = run_crash_recovery(&CrashRecoveryConfig::default());
        let cfg = CrashRecoveryConfig {
            plan: CrashPlan::new().with_crash_at("node-1", 5, Some(400.0)),
            ..CrashRecoveryConfig::default()
        };
        let report = run_crash_recovery(&cfg);
        assert_eq!(report.crashes, 1);
        assert_eq!(report.restarts, 1);
        assert_eq!(report.failovers, 0, "the home never crashed");
        assert_eq!(report.final_home, "node-0");
        assert_eq!(report.byte_identical_recoveries, 1);
        assert_eq!(report.digest, baseline.digest, "catch-up must close the gap");
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = CrashRecoveryConfig {
            plan: CrashPlan::new().with_crash_at("node-0", 14, Some(500.0)),
            ..CrashRecoveryConfig::default()
        };
        let a = run_crash_recovery(&cfg);
        let b = run_crash_recovery(&cfg);
        assert_eq!(a, b, "identical configs must replay bit-identically");
    }

    #[test]
    fn early_crash_without_restart_still_converges() {
        let baseline = run_crash_recovery(&CrashRecoveryConfig::default());
        for at_op in [1u64, 2, 3] {
            let cfg = CrashRecoveryConfig {
                plan: CrashPlan::new().with_crash_at("node-0", at_op, None),
                ..CrashRecoveryConfig::default()
            };
            let report = run_crash_recovery(&cfg);
            assert_eq!(report.completed, cfg.n_items, "crash at op {at_op}");
            assert_eq!(report.digest, baseline.digest, "crash at op {at_op}");
        }
    }
}
