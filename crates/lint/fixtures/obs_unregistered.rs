//! Planted violation: a snapshot consumer reads a counter that nothing in
//! the workspace ever registers or observes — a stringly-typed metric name
//! that silently reads zero forever.

pub fn report(o: &Obs, snap: &Snapshot) -> u64 {
    o.registry().count("coda_fixture_ops", 1);
    snap.counter("coda_fixture_ghost")
}
