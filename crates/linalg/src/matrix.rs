//! Row-major dense matrix.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Error produced by fallible matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Shape of the left/first operand.
        left: (usize, usize),
        /// Shape of the right/second operand.
        right: (usize, usize),
    },
    /// The matrix is singular (or numerically so) and cannot be solved/inverted.
    Singular,
    /// The matrix is not positive definite (Cholesky).
    NotPositiveDefinite,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {}x{} vs {}x{}", left.0, left.1, right.0, right.1)
            }
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense, row-major `f64` matrix.
///
/// # Examples
///
/// ```
/// use coda_linalg::Matrix;
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Builds a column vector (n x 1 matrix) from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1))
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != other.rows {
            return Err(MatrixError::ShapeMismatch { left: self.shape(), right: other.shape() });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::ShapeMismatch`] if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if v.len() != self.cols {
            return Err(MatrixError::ShapeMismatch { left: self.shape(), right: (v.len(), 1) });
        }
        Ok(self.iter_rows().map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum()).collect())
    }

    /// Scales every entry by `s`, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns `self * s` as a new matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Gram matrix `selfᵀ * self` (always square `cols x cols`).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for row in self.iter_rows() {
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Solves `self * x = b` for square `self` via partial-pivot LU.
    ///
    /// # Errors
    ///
    /// [`MatrixError::ShapeMismatch`] if `self` is not square or `b` has the
    /// wrong length; [`MatrixError::Singular`] if the system is singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        crate::decomp::lu_solve(self, b)
    }

    /// The inverse of a square matrix.
    ///
    /// # Errors
    ///
    /// [`MatrixError::ShapeMismatch`] if not square; [`MatrixError::Singular`]
    /// if singular.
    pub fn inverse(&self) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::ShapeMismatch { left: self.shape(), right: self.shape() });
        }
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e.iter_mut().for_each(|x| *x = 0.0);
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        Ok(inv)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Extracts the sub-matrix of the given rows (by index) and all columns.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Extracts the sub-matrix of the given columns (by index) and all rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out[(r, j)] = self[(r, c)];
            }
        }
        out
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// [`MatrixError::ShapeMismatch`] if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != other.cols {
            return Err(MatrixError::ShapeMismatch { left: self.shape(), right: other.shape() });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix { rows: self.rows + other.rows, cols: self.cols, data })
    }

    /// Concatenates `self` and `other` side by side.
    ///
    /// # Errors
    ///
    /// [`MatrixError::ShapeMismatch`] if row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.rows != other.rows {
            return Err(MatrixError::ShapeMismatch { left: self.shape(), right: other.shape() });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Per-column means.
    pub fn column_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        let n = self.rows as f64;
        means.iter_mut().for_each(|m| *m /= n);
        means
    }

    /// Sample covariance matrix of the columns (divides by `n-1`).
    pub fn covariance(&self) -> Matrix {
        let means = self.column_means();
        let mut cov = Matrix::zeros(self.cols, self.cols);
        if self.rows < 2 {
            return cov;
        }
        for row in self.iter_rows() {
            for i in 0..self.cols {
                let di = row[i] - means[i];
                for j in i..self.cols {
                    cov[(i, j)] += di * (row[j] - means[j]);
                }
            }
        }
        let denom = (self.rows - 1) as f64;
        for i in 0..self.cols {
            for j in i..self.cols {
                cov[(i, j)] /= denom;
                cov[(j, i)] = cov[(i, j)];
            }
        }
        cov
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in add");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch in sub");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("shape mismatch in mul")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for row in self.iter_rows() {
            let cells: Vec<String> = row.iter().map(|x| format!("{x:>10.4}")).collect();
            writeln!(f, "[{}]", cells.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(MatrixError::ShapeMismatch { .. })));
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn solve_and_inverse() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let x = a.solve(&[10.0, 12.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!((&prod - &Matrix::identity(2)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn singular_solve_fails() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]).unwrap_err(), MatrixError::Singular);
    }

    #[test]
    fn gram_equals_xtx() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = x.gram();
        let xtx = x.transpose().matmul(&x).unwrap();
        assert!((&g - &xtx).frobenius_norm() < 1e-12);
    }

    #[test]
    fn covariance_known() {
        // Columns perfectly correlated: cov = var on every entry.
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0], &[3.0, 4.0]]);
        let c = x.covariance();
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 1.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stack_and_select() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0]]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 4));
        let s = v.select_rows(&[0, 2]);
        assert_eq!(s.row(1), &[5.0, 6.0]);
        let c = v.select_cols(&[1]);
        assert_eq!(c.col(0), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn column_means() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 20.0]]);
        assert_eq!(x.column_means(), vec![2.0, 15.0]);
    }

    #[test]
    fn display_nonempty() {
        let x = Matrix::identity(2);
        assert!(!format!("{x}").is_empty());
    }
}
