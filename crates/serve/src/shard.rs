//! One shard's single-writer state: a [`DurableStore`] (WAL + snapshot
//! durability), a [`Darr`] partition, and the per-object
//! [`ChangeMonitor`]s that decide when analytics must recompute. Exactly
//! one worker thread owns a [`ShardCore`]; `apply` is plain synchronous
//! code with no locks, because the mailbox in front of the worker already
//! serializes every request to this shard.
//!
//! The canonical-export machinery at the bottom is what the
//! shard-equivalence harness runs on: each shard dumps a sectioned raw
//! export, and [`merge_canonical_exports`] folds any number of them into
//! one canonical form in which shard count, mailbox interleaving and
//! store naming are invisible — N-shard state and the unsharded baseline
//! must render byte-identically.

use std::collections::BTreeMap;

use coda_darr::Darr;
use coda_obs::Obs;
use coda_store::{ChangeMonitor, DurableStore, RecomputeTrigger};

use crate::request::{ServeRequest, ServeResponse};

/// When an object's recompute trigger fires. `Copy`, unlike
/// [`RecomputeTrigger`], so a tier config can stamp one monitor per object
/// per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerPolicy {
    /// No trigger monitoring.
    Off,
    /// Fire every `n` updates to an object.
    Count(u64),
    /// Fire once `n` bytes of updates accumulate on an object.
    Bytes(u64),
}

impl TriggerPolicy {
    fn monitor(&self) -> Option<ChangeMonitor> {
        match self {
            TriggerPolicy::Off => None,
            TriggerPolicy::Count(n) => Some(ChangeMonitor::new(RecomputeTrigger::UpdateCount(*n))),
            TriggerPolicy::Bytes(n) => Some(ChangeMonitor::new(RecomputeTrigger::UpdateBytes(*n))),
        }
    }
}

/// The state one worker thread owns outright.
#[derive(Debug)]
pub struct ShardCore {
    name: String,
    store: DurableStore,
    darr: Darr,
    policy: TriggerPolicy,
    /// object id → (its monitor, updates ever recorded). Tier-level
    /// derived state: it deliberately lives *outside* the durable store,
    /// so a store crash/replay leaves trigger accounting intact.
    monitors: BTreeMap<String, (ChangeMonitor, u64)>,
}

impl ShardCore {
    /// A fresh shard named `name` (by convention `shard-{i}`).
    pub fn new(
        name: &str,
        history_depth: usize,
        snapshot_every: usize,
        policy: TriggerPolicy,
    ) -> Self {
        ShardCore {
            name: name.to_string(),
            store: DurableStore::new(name.to_string(), history_depth, snapshot_every),
            darr: Darr::new(),
            policy,
            monitors: BTreeMap::new(),
        }
    }

    /// Attaches observability to the store and DARR partition.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.store.attach_obs(obs.clone());
        self.darr.attach_obs(obs);
    }

    /// The shard's node name (what a [`coda_chaos::CrashPlan`] targets).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The store's WAL operation count — the crash-point counter.
    pub fn ops(&self) -> u64 {
        self.store.ops()
    }

    /// Total trigger firings across this shard's objects.
    pub fn trigger_firings(&self) -> u64 {
        self.monitors.values().map(|(m, _)| m.recomputations).sum()
    }

    /// Applies one request synchronously. Single-writer: the caller (the
    /// shard's worker thread) is the only mutator.
    pub fn apply(&mut self, req: ServeRequest) -> ServeResponse {
        match req {
            ServeRequest::Put { id, data } => {
                let bytes = data.len() as u64;
                let (version, pushes) = self.store.put(&id, data);
                let trigger_fired = match self.policy.monitor() {
                    None => false,
                    Some(fresh) => {
                        let (monitor, updates) =
                            self.monitors.entry(id).or_insert_with(|| (fresh, 0));
                        *updates += 1;
                        monitor.record_update(bytes, 0.0)
                    }
                };
                ServeResponse::Put { version, pushes: pushes.len(), trigger_fired }
            }
            ServeRequest::Pull { id, client_version } => {
                let Ok(reply) = self.store.fetch(&id, client_version);
                ServeResponse::Pull(reply)
            }
            ServeRequest::Subscribe { client, id, mode, duration } => {
                self.store.subscribe(&client, &id, mode, duration);
                ServeResponse::Lease(true)
            }
            ServeRequest::Cancel { client, id } => {
                ServeResponse::Lease(self.store.cancel(&client, &id))
            }
            ServeRequest::Claim { key, client, duration } => {
                ServeResponse::Claim(self.darr.try_claim(&key, &client, duration))
            }
            ServeRequest::Complete { key, client, score, fold_scores, explanation } => {
                ServeResponse::Complete(self.darr.complete(
                    &key,
                    &client,
                    score,
                    fold_scores,
                    &explanation,
                ))
            }
            ServeRequest::Lookup { key } => ServeResponse::Lookup(self.darr.lookup(&key)),
        }
    }

    /// Advances the shard's logical clocks (store leases + DARR claims).
    /// Control-plane: the tier broadcasts this to every shard so all
    /// clocks stay equal.
    pub fn advance_clock(&mut self, ticks: u64) {
        self.store.advance_clock(ticks);
        self.darr.advance_clock(ticks);
    }

    /// Crash-stop + recovery in place: export the pre-crash state, drop
    /// the in-memory store keeping only the durable image, replay the WAL,
    /// and report `(records_replayed, byte_identical)`. The DARR partition
    /// and trigger monitors are tier-level state and ride through — this
    /// models the shard's *store node* halting, exactly like the PR-6
    /// recovery driver's kill-restart, inlined so the other shards keep
    /// serving meanwhile.
    pub fn crash_recover(&mut self, obs: Option<&Obs>) -> (usize, bool) {
        let expected = self.store.export_state();
        let store = std::mem::replace(&mut self.store, DurableStore::new("swapped-out", 1, 0));
        let image = store.crash();
        let (recovered, replayed) = DurableStore::recover_in(image, obs, None);
        let byte_identical = recovered.export_state() == expected;
        self.store = recovered;
        (replayed, byte_identical)
    }

    /// Sectioned raw export of everything this shard owns — input to
    /// [`merge_canonical_exports`].
    pub fn export_raw(&self) -> String {
        export_parts(&self.store, &self.darr, &self.monitors)
    }
}

/// Renders the sectioned raw export for any (store, DARR, monitors)
/// triple — [`ShardCore::export_raw`] uses it, and equivalence tests call
/// it directly on a hand-driven unsharded `DurableStore`/`Darr` baseline.
pub fn export_parts(
    store: &DurableStore,
    darr: &Darr,
    monitors: &BTreeMap<String, (ChangeMonitor, u64)>,
) -> String {
    let mut out = store.export_state();
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("#darr\n");
    let records = darr.export_records();
    if !records.is_empty() {
        out.push_str(&records);
        out.push('\n');
    }
    out.push_str("#triggers\n");
    for (id, (monitor, updates)) in monitors {
        out.push_str(&format!(
            "trigger object={id} updates={updates} firings={}\n",
            monitor.recomputations
        ));
    }
    out
}

/// Folds any number of sectioned raw exports into one canonical form in
/// which sharding is invisible:
///
/// - the per-store `store name=…` header collapses to `state depth=… clock=…`
///   (clocks are broadcast, so they must agree; disagreement renders as
///   `clock=mixed(…)` and fails any byte comparison — by design);
/// - object blocks (with their history/delta sublines) sort by object id —
///   each store's `BTreeMap` already yields sorted blocks, so merging
///   shards' blocks re-sorts the same ordering the baseline has natively;
/// - lease, DARR-record and trigger lines sort lexicographically, erasing
///   insertion-order differences between one mailbox and many.
pub fn merge_canonical_exports(raws: &[String]) -> String {
    let mut depth = String::new();
    let mut clocks: Vec<String> = Vec::new();
    let mut blocks: Vec<(String, String)> = Vec::new(); // (object id, block text)
    let mut leases: Vec<String> = Vec::new();
    let mut records: Vec<String> = Vec::new();
    let mut triggers: Vec<String> = Vec::new();

    for raw in raws {
        let mut section = 0; // 0 = store, 1 = darr, 2 = triggers
        for line in raw.lines() {
            match line {
                "#darr" => {
                    section = 1;
                    continue;
                }
                "#triggers" => {
                    section = 2;
                    continue;
                }
                _ => {}
            }
            match section {
                0 => {
                    if let Some(rest) = line.strip_prefix("store name=") {
                        for field in rest.split_whitespace() {
                            if let Some(d) = field.strip_prefix("depth=") {
                                depth = d.to_string();
                            } else if let Some(c) = field.strip_prefix("clock=") {
                                clocks.push(c.to_string());
                            }
                        }
                    } else if let Some(rest) = line.strip_prefix("object ") {
                        let id = rest.split_whitespace().next().unwrap_or("").to_string();
                        blocks.push((id, format!("{line}\n")));
                    } else if line.starts_with("  ") {
                        if let Some((_, block)) = blocks.last_mut() {
                            block.push_str(line);
                            block.push('\n');
                        }
                    } else if line.starts_with("lease ") {
                        leases.push(line.to_string());
                    }
                }
                1 => records.push(line.to_string()),
                _ => triggers.push(line.to_string()),
            }
        }
    }

    clocks.sort();
    clocks.dedup();
    let clock = match clocks.as_slice() {
        [one] => one.clone(),
        many => format!("mixed({})", many.join(",")),
    };
    blocks.sort_by(|a, b| a.0.cmp(&b.0));
    leases.sort();
    records.sort();
    triggers.sort();

    let mut out = format!("state depth={depth} clock={clock}\n");
    for (_, block) in &blocks {
        out.push_str(block);
    }
    for line in &leases {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("#darr\n");
    for line in &records {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("#triggers\n");
    for line in &triggers {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use coda_darr::{ClaimOutcome, ComputationKey};

    fn put(id: &str, n: usize, fill: u8) -> ServeRequest {
        ServeRequest::Put { id: id.to_string(), data: Bytes::from(vec![fill; n]) }
    }

    #[test]
    fn apply_covers_the_whole_request_surface() {
        let mut core = ShardCore::new("shard-0", 4, 0, TriggerPolicy::Count(2));
        let ServeResponse::Put { version, trigger_fired, .. } = core.apply(put("o1", 64, 1)) else {
            panic!("put answers Put")
        };
        assert_eq!(version, 1);
        assert!(!trigger_fired);
        let ServeResponse::Put { version, trigger_fired, .. } = core.apply(put("o1", 64, 2)) else {
            panic!("put answers Put")
        };
        assert_eq!(version, 2);
        assert!(trigger_fired, "count-2 trigger fires on the second put");
        assert_eq!(core.trigger_firings(), 1);

        let ServeResponse::Pull(Some(reply)) =
            core.apply(ServeRequest::Pull { id: "o1".into(), client_version: None })
        else {
            panic!("pull answers")
        };
        assert_eq!(reply.version(), 2);

        let key = ComputationKey::new("ds", 1, "p0", "kfold(3)", "rmse");
        let ServeResponse::Claim(ClaimOutcome::Claimed) =
            core.apply(ServeRequest::Claim { key: key.clone(), client: "c".into(), duration: 10 })
        else {
            panic!("first claim wins")
        };
        core.apply(ServeRequest::Complete {
            key: key.clone(),
            client: "c".into(),
            score: 0.5,
            fold_scores: vec![],
            explanation: "t".into(),
        });
        let ServeResponse::Lookup(Some(rec)) = core.apply(ServeRequest::Lookup { key }) else {
            panic!("completed result is stored")
        };
        assert_eq!(rec.score, 0.5);
        assert_eq!(core.ops(), 2, "two WAL-logged puts");
    }

    #[test]
    fn crash_recover_replays_byte_identically_and_keeps_triggers() {
        let mut core = ShardCore::new("shard-0", 4, 3, TriggerPolicy::Count(2));
        for i in 0..7 {
            core.apply(put(&format!("o{}", i % 2), 128, i as u8));
        }
        let firings = core.trigger_firings();
        assert!(firings > 0);
        let before = core.export_raw();
        let (replayed, byte_identical) = core.crash_recover(None);
        assert!(byte_identical, "WAL replay must reproduce the pre-crash store");
        assert!(replayed > 0 || core.ops() > 0);
        assert_eq!(core.export_raw(), before, "the whole shard state survives");
        assert_eq!(core.trigger_firings(), firings);
    }

    #[test]
    fn merged_export_is_invisible_to_sharding() {
        // the same ops applied to 1 core vs spread over 2 cores by routing
        let reqs: Vec<ServeRequest> =
            (0..10).map(|i| put(&format!("obj-{i}"), 64, i as u8)).collect();
        let mut single = ShardCore::new("shard-0", 4, 0, TriggerPolicy::Count(3));
        for r in &reqs {
            single.apply(r.clone());
        }
        let router = crate::ShardRouter::new(2);
        let mut pair = [
            ShardCore::new("shard-0", 4, 0, TriggerPolicy::Count(3)),
            ShardCore::new("shard-1", 4, 0, TriggerPolicy::Count(3)),
        ];
        for r in &reqs {
            pair[router.route(r)].apply(r.clone());
        }
        let merged_one = merge_canonical_exports(&[single.export_raw()]);
        let merged_two = merge_canonical_exports(&[pair[0].export_raw(), pair[1].export_raw()]);
        assert_eq!(merged_one, merged_two, "sharding must be invisible in canonical state");
    }

    #[test]
    fn mixed_clocks_refuse_to_canonicalize_silently() {
        let mut a = ShardCore::new("shard-0", 4, 0, TriggerPolicy::Off);
        let mut b = ShardCore::new("shard-1", 4, 0, TriggerPolicy::Off);
        a.advance_clock(5);
        b.advance_clock(7);
        let merged = merge_canonical_exports(&[a.export_raw(), b.export_raw()]);
        assert!(merged.contains("clock=mixed("), "clock skew must be visible: {merged}");
    }
}
