//! Failure-Time Analysis: the survival-analysis companion to Failure
//! Prediction — when failure labels are *censored* (assets still healthy at
//! the end of the observation window, §II), naive averaging of observed
//! failure times is biased; Kaplan-Meier estimation is not.

use coda_data::survival::{log_rank_test, SurvivalData, SurvivalError};

use crate::TemplateError;

/// Result of a failure-time run.
#[derive(Debug, Clone)]
pub struct LifetimeReport {
    /// The Kaplan-Meier curve: `(time, survival probability)`.
    pub survival_curve: Vec<(f64, f64)>,
    /// Median time to failure, when estimable.
    pub median_time_to_failure: Option<f64>,
    /// Observed failures / total assets.
    pub event_fraction: f64,
    /// The *naive* mean of observed failure times — reported alongside so
    /// users see the censoring bias the KM estimate avoids.
    pub naive_mean_failure_time: f64,
}

/// The Failure-Time Analysis template.
#[derive(Debug, Clone, Default)]
pub struct FailureTimeAnalysis;

impl FailureTimeAnalysis {
    /// Creates the template.
    pub fn new() -> Self {
        FailureTimeAnalysis
    }

    /// Runs the analysis on per-asset durations and censoring flags.
    ///
    /// # Errors
    ///
    /// [`TemplateError::InvalidData`] for malformed survival data.
    pub fn run(
        &self,
        durations: Vec<f64>,
        observed: Vec<bool>,
    ) -> Result<LifetimeReport, TemplateError> {
        let naive_mean = {
            let failures: Vec<f64> =
                durations.iter().zip(&observed).filter(|(_, &o)| o).map(|(&d, _)| d).collect();
            coda_linalg::mean(&failures)
        };
        let data = SurvivalData::new(durations, observed)
            .map_err(|e: SurvivalError| TemplateError::InvalidData(e.to_string()))?;
        Ok(LifetimeReport {
            survival_curve: data.kaplan_meier(),
            median_time_to_failure: data.median_survival(),
            event_fraction: data.n_events() as f64 / data.len() as f64,
            naive_mean_failure_time: naive_mean,
        })
    }

    /// Compares two asset cohorts' failure behaviour with the log-rank test.
    /// Returns `(chi-squared, differs at the 0.05 level)`.
    ///
    /// # Errors
    ///
    /// [`TemplateError::InvalidData`] for malformed inputs.
    #[allow(clippy::type_complexity)]
    pub fn compare_cohorts(
        &self,
        a: (Vec<f64>, Vec<bool>),
        b: (Vec<f64>, Vec<bool>),
    ) -> Result<(f64, bool), TemplateError> {
        let sa =
            SurvivalData::new(a.0, a.1).map_err(|e| TemplateError::InvalidData(e.to_string()))?;
        let sb =
            SurvivalData::new(b.0, b.1).map_err(|e| TemplateError::InvalidData(e.to_string()))?;
        log_rank_test(&sa, &sb).map_err(|e| TemplateError::InvalidData(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::synth;

    #[test]
    fn km_corrects_the_censoring_bias() {
        // true mean lifetime 50, observation cut at 40: naive mean of the
        // observed failures is badly biased low; KM's median tracks the
        // true median (50 * ln 2 ~ 34.7)
        let (durations, observed) = synth::failure_times(2000, 50.0, 40.0, 71);
        let report = FailureTimeAnalysis::new().run(durations, observed).unwrap();
        let true_median = 50.0 * std::f64::consts::LN_2;
        let km_median = report.median_time_to_failure.expect("estimable");
        assert!(
            (km_median - true_median).abs() / true_median < 0.1,
            "km median {km_median:.1} vs true {true_median:.1}"
        );
        // the naive mean is pulled well below the true mean (50)
        assert!(
            report.naive_mean_failure_time < 0.5 * 50.0,
            "naive mean {:.1} should be badly biased",
            report.naive_mean_failure_time
        );
        assert!(report.event_fraction > 0.4 && report.event_fraction < 0.9);
        assert!(!report.survival_curve.is_empty());
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let (durations, observed) = synth::failure_times(300, 30.0, 50.0, 72);
        let report = FailureTimeAnalysis::new().run(durations, observed).unwrap();
        for w in report.survival_curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn cohort_comparison_detects_different_lifetimes() {
        let fta = FailureTimeAnalysis::new();
        let short = synth::failure_times(300, 20.0, 60.0, 73);
        let long = synth::failure_times(300, 60.0, 60.0, 74);
        let (chi2, differs) = fta.compare_cohorts(short.clone(), long).unwrap();
        assert!(differs, "chi2 = {chi2}");
        let (_, same) = fta.compare_cohorts(short.clone(), short).unwrap();
        assert!(!same);
    }

    #[test]
    fn invalid_data_rejected() {
        let fta = FailureTimeAnalysis::new();
        assert!(fta.run(vec![], vec![]).is_err());
        assert!(fta.run(vec![-1.0], vec![true]).is_err());
    }
}
