//! Fixture: every determinism pattern the lint must catch. This file is
//! never compiled — the lint walks it as text (and the workspace walker
//! skips `fixtures/` so these planted violations stay out of the gate).

use std::time::{Instant, SystemTime};

fn wall_clock_instant() -> Instant {
    Instant::now() // finding: Instant::now
}

fn wall_clock_system() -> u64 {
    let t = SystemTime::now(); // finding: SystemTime::now
    0
}

fn ambient_rng() -> f64 {
    let mut rng = rand::thread_rng(); // finding: thread_rng
    rand::random() // finding: rand::random
}

fn elapsed_timing(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() // finding: .elapsed()
}
