//! `coda` — Cooperative Data Analytics with Transformer-Estimator Graphs.
//!
//! Umbrella crate re-exporting the full workspace. See the individual crates
//! for detail:
//! - [`linalg`]: dense linear algebra kernels
//! - [`data`]: datasets, traits, metrics, cross-validation, synthetic data
//! - [`ml`]: classical transformers and estimators
//! - [`nn`]: neural-network substrate
//! - [`graph`]: the Transformer-Estimator Graph (paper Section IV)
//! - [`timeseries`]: time-series AI functions and prediction pipeline
//! - [`store`]: versioned data tier with delta encoding and leases
//! - [`darr`]: the Data Analytics Results Repository
//! - [`cluster`]: the simulated distributed system of Fig. 1
//! - [`templates`]: domain solution templates (Section IV-E)
//! - [`chaos`]: deterministic fault injection and retry/backoff policies
//! - [`obs`]: unified tracing + metrics (counters, histograms, spans)
//! - [`serve`]: sharded multi-tenant serving tier over store + DARR

pub use coda_chaos as chaos;
pub use coda_cluster as cluster;
pub use coda_core as graph;
pub use coda_darr as darr;
pub use coda_data as data;
pub use coda_linalg as linalg;
pub use coda_ml as ml;
pub use coda_nn as nn;
pub use coda_obs as obs;
pub use coda_serve as serve;
pub use coda_store as store;
pub use coda_templates as templates;
pub use coda_timeseries as timeseries;
