/root/repo/target/debug/deps/coda-d7d96ad1fa737f0f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcoda-d7d96ad1fa737f0f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
