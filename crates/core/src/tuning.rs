//! Nested K-fold cross-validation (§IV-B lists "Nested K-fold" among the
//! CV strategies): hyper-parameter tuning on inner folds, unbiased
//! performance estimation on outer folds.
//!
//! Plain K-fold grid search reports the score of the *winning* parameter
//! setting on the same folds it was selected with — an optimistic estimate.
//! Nested CV selects parameters per outer fold using only that fold's
//! training data, then scores once on the held-out outer fold.

use coda_data::{CvStrategy, Dataset, Params};

use crate::eval::{EvalError, Evaluator};
use crate::grid::ParamGrid;
use crate::pipeline::Pipeline;

/// Result of one outer fold: the parameters the inner search chose, their
/// inner-CV score, and the outer validation score.
#[derive(Debug, Clone)]
pub struct OuterFoldResult {
    /// Parameters chosen by the inner search on this fold's training data.
    pub chosen_params: Params,
    /// Inner cross-validated score of the winner (optimistic).
    pub inner_score: f64,
    /// Score on the untouched outer validation fold (unbiased).
    pub outer_score: f64,
}

/// Full nested cross-validation outcome.
#[derive(Debug, Clone)]
pub struct NestedCvResult {
    /// One entry per outer fold.
    pub folds: Vec<OuterFoldResult>,
}

impl NestedCvResult {
    /// Mean outer score — the unbiased performance estimate.
    pub fn outer_mean(&self) -> f64 {
        self.folds.iter().map(|f| f.outer_score).sum::<f64>() / self.folds.len().max(1) as f64
    }

    /// Mean inner (selection) score — typically optimistic relative to
    /// [`NestedCvResult::outer_mean`] for loss-like metrics.
    pub fn inner_mean(&self) -> f64 {
        self.folds.iter().map(|f| f.inner_score).sum::<f64>() / self.folds.len().max(1) as f64
    }

    /// The most frequently chosen parameter assignment across outer folds
    /// (ties broken by first occurrence) — a reasonable final deployment
    /// choice.
    pub fn consensus_params(&self) -> Option<&Params> {
        let mut best: Option<(&Params, usize)> = None;
        for f in &self.folds {
            let count = self.folds.iter().filter(|g| g.chosen_params == f.chosen_params).count();
            if best.is_none_or(|(_, c)| count > c) {
                best = Some((&f.chosen_params, count));
            }
        }
        best.map(|(p, _)| p)
    }
}

impl Evaluator {
    /// Nested cross-validation of one pipeline over a parameter grid:
    /// `outer` folds from this evaluator's CV strategy, `inner_cv` folds for
    /// the grid search inside each outer training set.
    ///
    /// # Errors
    ///
    /// Any [`EvalError`]; an outer fold where *no* grid point evaluates is
    /// fatal (the caller cannot compare folds otherwise).
    pub fn nested_evaluate(
        &self,
        pipeline: &Pipeline,
        data: &Dataset,
        grid: &ParamGrid,
        inner_cv: CvStrategy,
    ) -> Result<NestedCvResult, EvalError> {
        let outer_splits = self.cv().splits_for(data)?;
        let metric = self.metric();
        let inner_eval = Evaluator::new(inner_cv, metric);
        let assignments = grid.expand();
        let mut folds = Vec::with_capacity(outer_splits.len());
        for split in &outer_splits {
            let outer_train = data.select(&split.train);
            let outer_val = data.select(&split.validation);
            // inner search over the grid on outer-train only
            let mut best: Option<(Params, f64)> = None;
            for params in &assignments {
                let mut candidate = pipeline.fresh_clone();
                if candidate.apply_matching_params(params).is_err() {
                    continue;
                }
                match inner_eval.score_pipeline(&candidate, &outer_train) {
                    Ok(score) => {
                        if best.as_ref().is_none_or(|(_, b)| metric.is_better(score, *b)) {
                            best = Some((params.clone(), score));
                        }
                    }
                    Err(_) => continue,
                }
            }
            let (chosen_params, inner_score) = best.ok_or(EvalError::NothingEvaluated)?;
            // refit on the full outer training set with the winner
            let mut winner = pipeline.fresh_clone();
            winner.apply_matching_params(&chosen_params)?;
            winner.fit(&outer_train)?;
            let pred = winner.predict(&outer_val)?;
            let truth = outer_val.target_required().map_err(coda_data::ComponentError::from)?;
            let outer_score = metric.compute(truth, &pred)?;
            folds.push(OuterFoldResult { chosen_params, inner_score, outer_score });
        }
        Ok(NestedCvResult { folds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Node;
    use coda_data::{synth, BoxedEstimator, Metric, ParamValue};
    use coda_ml::KnnRegressor;

    fn knn_pipeline() -> Pipeline {
        Pipeline::from_nodes(vec![Node::auto(
            (Box::new(KnnRegressor::new(1)) as BoxedEstimator).into(),
        )])
    }

    fn k_grid() -> ParamGrid {
        let mut grid = ParamGrid::new();
        grid.add("knn_regressor__k", vec![1usize.into(), 5usize.into(), 15usize.into()]);
        grid
    }

    #[test]
    fn produces_one_result_per_outer_fold() {
        let ds = synth::friedman1(250, 5, 0.8, 31);
        let eval = Evaluator::new(CvStrategy::kfold(4), Metric::Rmse);
        let nested =
            eval.nested_evaluate(&knn_pipeline(), &ds, &k_grid(), CvStrategy::kfold(3)).unwrap();
        assert_eq!(nested.folds.len(), 4);
        for f in &nested.folds {
            assert!(f.chosen_params.contains_key("knn_regressor__k"));
            assert!(f.outer_score.is_finite());
        }
        assert!(nested.consensus_params().is_some());
    }

    #[test]
    fn selection_avoids_overfit_k1_on_noisy_data() {
        // noisy data: k=1 memorizes; inner CV must pick a larger k
        let ds = synth::friedman1(300, 5, 2.0, 32);
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
        let nested =
            eval.nested_evaluate(&knn_pipeline(), &ds, &k_grid(), CvStrategy::kfold(3)).unwrap();
        for f in &nested.folds {
            let k = f.chosen_params["knn_regressor__k"].clone();
            assert_ne!(k, ParamValue::from(1usize), "inner CV must reject k=1 under noise");
        }
    }

    #[test]
    fn outer_estimate_close_to_fresh_data_performance() {
        // nested CV's outer mean must track true held-out performance
        let ds = synth::friedman1(400, 5, 1.0, 33);
        let fresh = synth::friedman1(400, 5, 1.0, 34);
        let eval = Evaluator::new(CvStrategy::kfold(4), Metric::Rmse);
        let nested =
            eval.nested_evaluate(&knn_pipeline(), &ds, &k_grid(), CvStrategy::kfold(3)).unwrap();
        // deploy the consensus model on all of ds, score on fresh data
        let params = nested.consensus_params().unwrap().clone();
        let mut deployed = knn_pipeline();
        deployed.apply_matching_params(&params).unwrap();
        deployed.fit(&ds).unwrap();
        let pred = deployed.predict(&fresh).unwrap();
        let true_rmse = coda_data::metrics::rmse(fresh.target().unwrap(), &pred).unwrap();
        let gap = (nested.outer_mean() - true_rmse).abs() / true_rmse;
        assert!(gap < 0.25, "outer estimate {:.3} vs true {true_rmse:.3}", nested.outer_mean());
    }

    #[test]
    fn empty_grid_still_runs_with_defaults() {
        let ds = synth::friedman1(150, 5, 0.5, 35);
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
        let nested = eval
            .nested_evaluate(&knn_pipeline(), &ds, &ParamGrid::new(), CvStrategy::kfold(3))
            .unwrap();
        assert_eq!(nested.folds.len(), 3);
        assert!(nested.folds[0].chosen_params.is_empty());
    }

    #[test]
    fn cv_error_propagates() {
        let ds = synth::friedman1(10, 5, 0.5, 36);
        let eval = Evaluator::new(CvStrategy::kfold(20), Metric::Rmse);
        assert!(eval
            .nested_evaluate(&knn_pipeline(), &ds, &k_grid(), CvStrategy::kfold(3))
            .is_err());
    }
}
