//! Property-based tests over the system's core invariants (proptest).

use bytes::Bytes;
use coda::data::cv::CvStrategy;
use coda::data::{synth, Dataset, Transformer};
use coda::graph::{ParamGrid, PipelineSpec};
use coda::ml::StandardScaler;
use coda::store::{DeltaCodec, HomeDataStore};
use coda::timeseries::{CascadedWindows, FlatWindowing, SeriesData, TsAsIid, WindowConfig};
use coda_linalg::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Delta encode/apply is the identity on arbitrary byte strings.
    #[test]
    fn delta_roundtrip(base in proptest::collection::vec(any::<u8>(), 0..2048),
                       target in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let delta = DeltaCodec::encode(&base, &target, 1, 2);
        let rebuilt = DeltaCodec::apply(&base, &delta).unwrap();
        prop_assert_eq!(&rebuilt[..], &target[..]);
    }

    /// A delta from a version to itself never exceeds a small header bound
    /// when the data is block-aligned-compressible.
    #[test]
    fn delta_self_is_small(data in proptest::collection::vec(any::<u8>(), 128..1024)) {
        let delta = DeltaCodec::encode(&data, &data, 1, 2);
        // tail shorter than one block stays literal; everything else copies
        prop_assert!(delta.literal_bytes() < 64);
    }

    /// Sequential store versions always reconstruct through pulls,
    /// whatever the update pattern.
    #[test]
    fn store_pull_always_converges(updates in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..512), 1..6)) {
        let mut store = HomeDataStore::new("h", 3);
        let mut client = coda::store::CachingClient::new("c");
        let mut last = Vec::new();
        for u in &updates {
            store.put("o", Bytes::from(u.clone()));
            last = u.clone();
        }
        client.pull(&mut store, "o").unwrap();
        prop_assert_eq!(&client.held_data("o").unwrap()[..], &last[..]);
    }

    /// K-fold splits partition the sample index range exactly.
    #[test]
    fn kfold_partitions(n in 4usize..200, k in 2usize..8, shuffle in any::<bool>(), seed in any::<u64>()) {
        prop_assume!(n >= k);
        let splits = CvStrategy::KFold { k, shuffle, seed }.splits(n).unwrap();
        prop_assert_eq!(splits.len(), k);
        let mut seen = vec![false; n];
        for s in &splits {
            prop_assert_eq!(s.train.len() + s.validation.len(), n);
            for &i in &s.validation {
                prop_assert!(!seen[i], "validation index {} repeated", i);
                seen[i] = true;
            }
            for &i in &s.train {
                prop_assert!(!s.validation.contains(&i));
            }
        }
        prop_assert!(seen.iter().all(|&v| v));
    }

    /// Sliding splits never leak: every validation index is strictly after
    /// every train index plus the buffer.
    #[test]
    fn sliding_split_no_leakage(train in 2usize..40, buffer in 0usize..10,
                                val in 1usize..20, k in 1usize..6, extra in 0usize..50) {
        let n = train + buffer + val + extra;
        let splits = CvStrategy::TimeSeriesSlidingSplit {
            train_size: train, buffer, validation_size: val, k,
        }.splits(n).unwrap();
        prop_assert_eq!(splits.len(), k);
        for s in &splits {
            let max_train = *s.train.iter().max().unwrap();
            let min_val = *s.validation.iter().min().unwrap();
            prop_assert_eq!(min_val, max_train + buffer + 1);
            prop_assert_eq!(s.train.len(), train);
            prop_assert_eq!(s.validation.len(), val);
        }
    }

    /// Windowing shape laws of Figs. 7-9 hold for all shapes.
    #[test]
    fn windowing_shape_laws(l in 4usize..60, v in 1usize..5, p in 1usize..10, h in 1usize..4) {
        prop_assume!(l >= p + h);
        let m = synth::multivariate_sensors(l, v, 1);
        let ds = SeriesData::new(m, 0).to_dataset();
        let cfg = WindowConfig::new(p, h);
        let cascaded = CascadedWindows::new(cfg).fit_transform(&ds).unwrap();
        prop_assert_eq!(cascaded.n_samples(), l - p - h + 1);
        prop_assert_eq!(cascaded.n_features(), p * v);
        let flat = FlatWindowing::new(cfg).fit_transform(&ds).unwrap();
        prop_assert_eq!(&flat, &cascaded);
        let iid = TsAsIid::new(cfg).fit_transform(&ds).unwrap();
        prop_assert_eq!(iid.n_samples(), l - h);
        prop_assert_eq!(iid.n_features(), v);
    }

    /// Standard scaling is invertible on arbitrary data with non-constant
    /// columns.
    #[test]
    fn scaler_roundtrip(rows in 2usize..30, cols in 1usize..6, seed in any::<u64>()) {
        let ds = synth::linear_regression(rows, cols, 0.5, seed);
        let mut scaler = StandardScaler::new();
        let scaled = scaler.fit_transform(&ds).unwrap();
        let back = scaler.inverse_transform(&scaled).unwrap();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!((back.features()[(r, c)] - ds.features()[(r, c)]).abs() < 1e-8);
            }
        }
    }

    /// Grid expansion size equals the product of value-list lengths, and
    /// every assignment is distinct.
    #[test]
    fn grid_cartesian(sizes in proptest::collection::vec(1usize..5, 0..4)) {
        let mut grid = ParamGrid::new();
        for (i, n) in sizes.iter().enumerate() {
            grid.add(format!("n{i}__p"), (0..*n).map(|v| (v as i64).into()).collect());
        }
        let expected: usize = sizes.iter().product();
        let expanded = grid.expand();
        prop_assert_eq!(expanded.len(), expected.max(1));
        let mut keys: Vec<String> = expanded.iter()
            .map(|p| PipelineSpec::new(vec!["x"]).with_params(p).key())
            .collect();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), expanded.len());
    }

    /// Metric bounds: accuracy/F1 in [0,1], RMSE >= 0, and R² <= 1.
    #[test]
    fn metric_bounds(n in 2usize..50, seed in any::<u64>()) {
        let ds = synth::classification_blobs(n.max(4), 2, 2, 1.0, seed);
        let y = ds.target().unwrap();
        let yhat: Vec<f64> = y.iter().rev().cloned().collect();
        let acc = coda::data::metrics::accuracy(y, &yhat).unwrap();
        prop_assert!((0.0..=1.0).contains(&acc));
        let f1 = coda::data::metrics::f1_score(y, &yhat, 1.0).unwrap();
        prop_assert!((0.0..=1.0).contains(&f1));
        let reg = synth::linear_regression(n.max(3), 2, 1.0, seed);
        let t = reg.target().unwrap();
        let pred: Vec<f64> = t.iter().map(|v| v + 1.0).collect();
        prop_assert!(coda::data::metrics::rmse(t, &pred).unwrap() >= 0.0);
        if let Ok(r2) = coda::data::metrics::r2(t, &pred) {
            prop_assert!(r2 <= 1.0 + 1e-12);
        }
    }

    /// Matrix algebra laws: associativity of multiplication and the
    /// transpose product rule, on arbitrary small matrices.
    #[test]
    fn matrix_algebra_laws(m in 1usize..6, k in 1usize..6, n in 1usize..6, p in 1usize..6,
                           seed in any::<u32>()) {
        let fill = |rows: usize, cols: usize, salt: u64| {
            let mut mx = Matrix::zeros(rows, cols);
            for (i, v) in mx.as_mut_slice().iter_mut().enumerate() {
                *v = (((i as u64 + salt).wrapping_mul(seed as u64 + 1) % 1000) as f64) / 100.0 - 5.0;
            }
            mx
        };
        let a = fill(m, k, 1);
        let b = fill(k, n, 2);
        let c = fill(n, p, 3);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!((&left - &right).frobenius_norm() < 1e-6 * (1.0 + left.frobenius_norm()));
        // (AB)ᵀ = Bᵀ Aᵀ
        let t1 = a.matmul(&b).unwrap().transpose();
        let t2 = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!((&t1 - &t2).frobenius_norm() < 1e-9 * (1.0 + t1.frobenius_norm()));
    }

    /// Solving a well-conditioned diagonal-dominant system reproduces the
    /// planted solution.
    #[test]
    fn lu_solve_recovers_planted_solution(n in 1usize..8, seed in any::<u32>()) {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = (((i * 7 + j * 13 + seed as usize) % 19) as f64) / 19.0 - 0.5;
                a[(i, j)] = if i == j { v + n as f64 } else { v };
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-8);
        }
    }

    /// AUC is invariant under strictly monotone transforms of the scores.
    #[test]
    fn auc_monotone_invariance(n in 4usize..60, seed in any::<u64>()) {
        let ds = synth::imbalanced_binary(n.max(10), 1, 0.4, seed);
        let y = ds.target().unwrap();
        prop_assume!(y.contains(&1.0) && y.contains(&0.0));
        let scores: Vec<f64> = ds.features().col(0);
        let transformed: Vec<f64> = scores.iter().map(|s| (s * 0.3).exp() + 7.0).collect();
        let a1 = coda::data::metrics::auc(y, &scores).unwrap();
        let a2 = coda::data::metrics::auc(y, &transformed).unwrap();
        prop_assert!((a1 - a2).abs() < 1e-12);
    }

    /// TEG path count equals the product of stage widths for staged graphs.
    #[test]
    fn teg_path_count_is_width_product(widths in proptest::collection::vec(1usize..4, 1..4)) {
        use coda::graph::TegBuilder;
        use coda::data::NoOp;
        let mut builder = TegBuilder::new();
        for w in &widths {
            let stage: Vec<coda::data::BoxedTransformer> =
                (0..*w).map(|_| Box::new(NoOp::new()) as coda::data::BoxedTransformer).collect();
            builder = builder.add_transformers(stage);
        }
        let builder = builder.add_models(vec![
            Box::new(coda::ml::LinearRegression::new()),
            Box::new(coda::ml::KnnRegressor::new(3)),
        ]);
        let graph = builder.create_graph().unwrap();
        let expected: usize = widths.iter().product::<usize>() * 2;
        prop_assert_eq!(graph.enumerate_paths().len(), expected);
    }

    /// Dataset binary serialization round-trips for arbitrary shapes,
    /// including NaN (missing) cells.
    #[test]
    fn dataset_bytes_roundtrip(rows in 1usize..20, cols in 1usize..6,
                               with_target in any::<bool>(), nan_every in 2usize..10) {
        let mut m = Matrix::zeros(rows, cols);
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = if i % nan_every == 0 { f64::NAN } else { i as f64 * 0.37 - 3.0 };
        }
        let ds = if with_target {
            Dataset::new(m).with_target((0..rows).map(|r| r as f64).collect()).unwrap()
        } else {
            Dataset::new(m)
        };
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        prop_assert_eq!(back.n_samples(), ds.n_samples());
        prop_assert_eq!(back.n_features(), ds.n_features());
        prop_assert_eq!(back.target().is_some(), with_target);
        for (a, b) in back.features().as_slice().iter().zip(ds.features().as_slice()) {
            prop_assert!(a == b || (a.is_nan() && b.is_nan()));
        }
    }

    /// Corruption never round-trips: flipping any bit of a delta's literal
    /// payload in flight is caught by the end-to-end checksum — apply
    /// errors instead of silently rebuilding wrong data.
    #[test]
    fn corrupted_delta_never_roundtrips(
        base in proptest::collection::vec(any::<u8>(), 0..1024),
        target in proptest::collection::vec(any::<u8>(), 1..1024),
        pick in any::<usize>(), bit in 0u8..8) {
        let mut delta = DeltaCodec::encode(&base, &target, 1, 2);
        let literal_bytes = delta.literal_bytes();
        prop_assume!(literal_bytes > 0);
        // flip one bit of the pick-th literal byte across all Insert ops
        let mut remaining = pick % literal_bytes;
        for op in &mut delta.ops {
            if let coda::store::DeltaOp::Insert(data) = op {
                if remaining < data.len() {
                    let mut raw = data.to_vec();
                    raw[remaining] ^= 1 << bit;
                    *data = Bytes::from(raw);
                    break;
                }
                remaining -= data.len();
            }
        }
        match DeltaCodec::apply(&base, &delta) {
            Err(coda::store::DeltaError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(false, "corruption must be caught, got {:?}", other),
        }
    }

    /// Corruption never round-trips on the push path either: a full-copy
    /// push whose payload was damaged in flight is rejected by the client
    /// and leaves its cache untouched.
    #[test]
    fn corrupted_full_push_is_rejected(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        pos in any::<usize>(), bit in 0u8..8) {
        let mut corrupted = data.clone();
        corrupted[pos % data.len()] ^= 1 << bit;
        let push = coda::store::UpdateMessage::Full {
            client: "c".to_string(),
            object: "o".to_string(),
            version: 2,
            data: Bytes::from(corrupted),
            checksum: coda::store::content_hash(&data),
            ctx: None,
        };
        let mut client = coda::store::CachingClient::new("c");
        match client.apply_push(&push) {
            Err(coda::store::ClientError::ChecksumMismatch { .. }) => {}
            other => prop_assert!(false, "corruption must be caught, got {:?}", other),
        }
        prop_assert_eq!(client.held_version("o"), None);
    }

    /// Train/test split partitions and respects the requested fraction.
    #[test]
    fn train_test_split_partitions(n in 4usize..200, frac in 0.05f64..0.95, seed in any::<u64>()) {
        let ds = Dataset::new(Matrix::zeros(n, 1)).with_target(vec![0.0; n]).unwrap();
        let (train, test) = ds.train_test_split(frac, seed);
        prop_assert_eq!(train.n_samples() + test.n_samples(), n);
        prop_assert!(test.n_samples() >= 1);
        prop_assert!(train.n_samples() >= 1);
    }
}
