//! Residual wrapper: `y = x + f(x)` for a stack of inner layers — the
//! skip-connection building block of the SeriesNet architecture (§IV-C2).

use coda_linalg::Matrix;

use crate::layer::Layer;

/// Wraps inner layers with an identity skip connection. The inner stack must
/// preserve width (`f: R^d -> R^d`).
pub struct Residual {
    inner: Vec<Box<dyn Layer>>,
}

impl Residual {
    /// Creates a residual block from inner layers.
    pub fn new(inner: Vec<Box<dyn Layer>>) -> Self {
        Residual { inner }
    }
}

impl Clone for Residual {
    fn clone(&self) -> Self {
        Residual { inner: self.inner.iter().map(|l| l.clone_box()).collect() }
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Residual[{} inner layers]", self.inner.len())
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        let mut cur = input.clone();
        for layer in &mut self.inner {
            cur = layer.forward(&cur, training);
        }
        assert_eq!(cur.shape(), input.shape(), "residual inner stack must preserve shape");
        &cur + input
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad = grad_output.clone();
        for layer in self.inner.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        &grad + grad_output
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        self.inner.iter_mut().flat_map(|l| l.params_and_grads()).collect()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::Conv1d;
    use crate::layer::{Activation, Dense};

    #[test]
    fn identity_inner_doubles_input() {
        let mut r = Residual::new(vec![Box::new(Activation::linear())]);
        let x = Matrix::from_rows(&[&[1.0, -2.0]]);
        let out = r.forward(&x, false);
        assert_eq!(out.as_slice(), &[2.0, -4.0]);
    }

    #[test]
    fn backward_adds_skip_gradient() {
        // inner = zero map (relu of very negative dense) -> grad = skip only
        let mut dense = Dense::new(2, 2, 1);
        for v in dense.params_and_grads()[0].0.as_mut_slice() {
            *v = 0.0;
        }
        let mut r = Residual::new(vec![Box::new(dense)]);
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        r.forward(&x, true);
        let g = r.backward(&Matrix::filled(1, 2, 1.0));
        // zero weights: inner backward contributes 0, skip contributes 1
        assert_eq!(g.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn gradient_matches_finite_difference_through_conv_block() {
        let mut block = Residual::new(vec![
            Box::new(Conv1d::new(5, 2, 2, 2, 1, true, 3)),
            Box::new(Activation::tanh()),
        ]);
        let mut x = Matrix::zeros(1, 10);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f64 * 0.31).sin();
        }
        block.zero_grads();
        let out = block.forward(&x, true);
        block.backward(&Matrix::filled(out.rows(), out.cols(), 1.0));
        let pairs = block.params_and_grads();
        let analytic = pairs[0].1[(0, 0)];
        drop(pairs);
        let eps = 1e-6;
        let orig = block.params_and_grads()[0].0[(0, 0)];
        block.params_and_grads()[0].0[(0, 0)] = orig + eps;
        let plus: f64 = block.forward(&x, false).as_slice().iter().sum();
        block.params_and_grads()[0].0[(0, 0)] = orig - eps;
        let minus: f64 = block.forward(&x, false).as_slice().iter().sum();
        block.params_and_grads()[0].0[(0, 0)] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-4, "analytic {analytic} numeric {numeric}");
    }

    #[test]
    #[should_panic(expected = "preserve shape")]
    fn shape_changing_inner_panics() {
        let mut r = Residual::new(vec![Box::new(Dense::new(2, 3, 1))]);
        let x = Matrix::zeros(1, 2);
        r.forward(&x, false);
    }
}
