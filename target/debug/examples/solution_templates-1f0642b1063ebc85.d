/root/repo/target/debug/examples/solution_templates-1f0642b1063ebc85.d: examples/solution_templates.rs

/root/repo/target/debug/examples/solution_templates-1f0642b1063ebc85: examples/solution_templates.rs

examples/solution_templates.rs:
