//! Exemplars and per-operator cost profiles: the bridge from raw
//! telemetry to the cost-based TEG planner (ROADMAP item 2).
//!
//! An [`ExemplarStore`] keeps, per metric, the top-k most extreme
//! observations *with the span context that produced them* — so a fat
//! p99 in a histogram is one hop from the exact trace that caused it
//! (the Prometheus exemplar idea). Offering is a single atomic load on
//! the fast path while disabled, so production instrumentation can leave
//! the call sites in place unconditionally.
//!
//! A [`CostProfile`] rolls a [`TraceForest`]'s per-span self-times into
//! per-operator aggregates (`COST_PROFILE.json`): how many times each
//! operator ran and what it cost excluding its children — exactly the
//! training surface a KeystoneML-style per-operator cost model needs.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::impl_serde_struct;

use crate::analyze::TraceForest;
use crate::trace::SpanContext;

/// One extreme observation and the span that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// The observed value (e.g. milliseconds).
    pub value: f64,
    /// The producing span, when the observation happened inside one.
    pub ctx: Option<SpanContext>,
    /// Clock reading at the observation.
    pub at_ms: f64,
}

#[derive(Debug)]
struct ExemplarInner {
    per_metric: usize,
    by_metric: BTreeMap<String, Vec<Exemplar>>,
}

/// Top-k extreme observations per metric, with span attribution.
///
/// Starts disabled (threshold `+inf`): every [`ExemplarStore::offer`]
/// returns after one atomic comparison. [`ExemplarStore::enable`] arms it
/// with a threshold and a per-metric capacity.
#[derive(Debug)]
pub struct ExemplarStore {
    /// Observation threshold as `f64` bits — read lock-free on offer.
    threshold_bits: std::sync::atomic::AtomicU64,
    inner: Mutex<ExemplarInner>,
}

impl Default for ExemplarStore {
    fn default() -> Self {
        Self::disabled()
    }
}

impl ExemplarStore {
    /// A disarmed store: offers are near-free, nothing is retained.
    pub fn disabled() -> Self {
        ExemplarStore {
            threshold_bits: std::sync::atomic::AtomicU64::new(f64::INFINITY.to_bits()),
            inner: Mutex::new(ExemplarInner { per_metric: 0, by_metric: BTreeMap::new() }),
        }
    }

    /// Arms the store: observations `>= threshold` are retained, top-k
    /// (`per_metric`) by value per metric.
    pub fn enable(&self, threshold: f64, per_metric: usize) {
        let mut inner = self.inner.lock();
        inner.per_metric = per_metric.max(1);
        self.threshold_bits.store(threshold.to_bits(), std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether the store is armed.
    pub fn is_enabled(&self) -> bool {
        f64::from_bits(self.threshold_bits.load(std::sync::atomic::Ordering::Relaxed))
            < f64::INFINITY
    }

    /// Offers one observation. Below the threshold (or while disabled)
    /// this is one atomic load and a comparison.
    pub fn offer(&self, metric: &str, value: f64, ctx: Option<SpanContext>, at_ms: f64) {
        let threshold =
            f64::from_bits(self.threshold_bits.load(std::sync::atomic::Ordering::Relaxed));
        if value < threshold {
            return;
        }
        let mut inner = self.inner.lock();
        let cap = inner.per_metric.max(1);
        let list = inner.by_metric.entry(metric.to_string()).or_default();
        list.push(Exemplar { value, ctx, at_ms });
        // deterministic top-k: value descending, then earliest span id so
        // ties resolve identically across same-seed runs
        list.sort_by(|a, b| {
            b.value
                .total_cmp(&a.value)
                .then_with(|| span_key(a).cmp(&span_key(b)))
                .then(a.at_ms.total_cmp(&b.at_ms))
        });
        list.truncate(cap);
    }

    /// The retained exemplars for `metric`, best first.
    pub fn exemplars(&self, metric: &str) -> Vec<Exemplar> {
        self.inner.lock().by_metric.get(metric).cloned().unwrap_or_default()
    }

    /// Every retained exemplar, keyed by metric.
    pub fn snapshot(&self) -> BTreeMap<String, Vec<Exemplar>> {
        self.inner.lock().by_metric.clone()
    }

    /// Retained exemplars (across every metric) whose observation time
    /// falls in `(from_ms, to_ms]` — the slice diagnosis pulls when it
    /// reconstructs what ran inside a breach window. Metric-name order,
    /// best-first within a metric (the store's retention order).
    pub fn between(&self, from_ms: f64, to_ms: f64) -> Vec<(String, Exemplar)> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        for (metric, list) in &inner.by_metric {
            for e in list.iter().filter(|e| e.at_ms > from_ms && e.at_ms <= to_ms) {
                out.push((metric.clone(), e.clone()));
            }
        }
        out
    }
}

/// Sort key for exemplar ties: span id when attributed, `u64::MAX` after
/// every attributed exemplar otherwise.
fn span_key(e: &Exemplar) -> u64 {
    e.ctx.map_or(u64::MAX, |c| c.span_id.0)
}

/// Aggregated cost of one operator (span name) across a forest.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEntry {
    /// Spans aggregated.
    pub spans: u64,
    /// Total self-time (duration minus children), milliseconds.
    pub total_self_ms: f64,
    /// Mean self-time per span.
    pub mean_self_ms: f64,
    /// Worst single span's self-time.
    pub max_self_ms: f64,
}

impl_serde_struct!(CostEntry { spans, total_self_ms, mean_self_ms, max_self_ms });

/// Per-operator cost aggregates — the `COST_PROFILE.json` schema.
#[derive(Debug, Clone, PartialEq)]
pub struct CostProfile {
    /// Schema tag (`coda-cost-profile-v1`).
    pub schema: String,
    /// Aggregates keyed by operator (span name, optionally refined).
    pub entries: BTreeMap<String, CostEntry>,
}

impl_serde_struct!(CostProfile { schema, entries });

impl CostProfile {
    /// Rolls a forest's self-times up by span name.
    pub fn from_forest(forest: &TraceForest) -> Self {
        Self::from_forest_refined(forest, None)
    }

    /// Like [`CostProfile::from_forest`], but spans carrying the
    /// `refine_field` annotation key under `name[value]` — so e.g.
    /// `eval.path` costs split per pipeline spec.
    pub fn from_forest_refined(forest: &TraceForest, refine_field: Option<&str>) -> Self {
        let mut entries: BTreeMap<String, CostEntry> = BTreeMap::new();
        for span in forest.spans() {
            let key = match refine_field.and_then(|f| span.field(f)) {
                Some(v) => format!("{}[{}]", span.name, v),
                None => span.name.clone(),
            };
            let self_ms = forest.self_time_ms(span.ctx.span_id);
            let entry = entries.entry(key).or_insert(CostEntry {
                spans: 0,
                total_self_ms: 0.0,
                mean_self_ms: 0.0,
                max_self_ms: 0.0,
            });
            entry.spans += 1;
            entry.total_self_ms += self_ms;
            entry.max_self_ms = entry.max_self_ms.max(self_ms);
        }
        for entry in entries.values_mut() {
            entry.mean_self_ms =
                if entry.spans == 0 { 0.0 } else { entry.total_self_ms / entry.spans as f64 };
        }
        CostProfile { schema: "coda-cost-profile-v1".to_string(), entries }
    }

    /// Operators by descending total self-time (the planner's hot list).
    pub fn ranked(&self) -> Vec<(&str, &CostEntry)> {
        let mut out: Vec<(&str, &CostEntry)> =
            self.entries.iter().map(|(k, v)| (k.as_str(), v)).collect();
        out.sort_by(|a, b| b.1.total_self_ms.total_cmp(&a.1.total_self_ms).then(a.0.cmp(b.0)));
        out
    }

    /// Serializes to deterministic JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parses a profile back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error message on malformed input.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let value = serde_json::parse(s).map_err(|e| e.to_string())?;
        serde::Deserialize::from_value(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::trace::{SpanId, TraceId, Tracer};
    use std::sync::Arc;

    fn ctx(trace: u64, span: u64) -> SpanContext {
        SpanContext { trace_id: TraceId(trace), span_id: SpanId(span) }
    }

    #[test]
    fn disabled_store_retains_nothing() {
        let store = ExemplarStore::disabled();
        assert!(!store.is_enabled());
        store.offer("coda_test_ms", 1e9, Some(ctx(1, 1)), 0.0);
        assert!(store.exemplars("coda_test_ms").is_empty());
        assert!(store.snapshot().is_empty());
    }

    #[test]
    fn armed_store_keeps_top_k_over_threshold() {
        let store = ExemplarStore::disabled();
        store.enable(10.0, 2);
        assert!(store.is_enabled());
        store.offer("coda_test_ms", 5.0, Some(ctx(1, 1)), 0.0);
        store.offer("coda_test_ms", 12.0, Some(ctx(1, 2)), 1.0);
        store.offer("coda_test_ms", 50.0, Some(ctx(2, 3)), 2.0);
        store.offer("coda_test_ms", 20.0, Some(ctx(3, 4)), 3.0);
        let kept = store.exemplars("coda_test_ms");
        assert_eq!(kept.len(), 2, "capacity 2");
        assert_eq!(kept[0].value, 50.0, "best first");
        assert_eq!(kept[1].value, 20.0, "the 12.0 was evicted, the 5.0 never retained");
        assert_eq!(kept[0].ctx, Some(ctx(2, 3)), "span attribution survives");
    }

    #[test]
    fn exemplar_ties_resolve_deterministically() {
        let run = || {
            let store = ExemplarStore::disabled();
            store.enable(0.0, 3);
            store.offer("m", 7.0, Some(ctx(1, 9)), 0.0);
            store.offer("m", 7.0, Some(ctx(1, 2)), 1.0);
            store.offer("m", 7.0, None, 2.0);
            store.offer("m", 7.0, Some(ctx(1, 5)), 3.0);
            store.exemplars("m")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a[0].ctx, Some(ctx(1, 2)), "equal values order by span id");
        assert_eq!(a[2].ctx, Some(ctx(1, 9)));
    }

    #[test]
    fn cost_profile_rolls_self_times_by_operator() {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(Arc::clone(&clock) as Arc<dyn Clock>);
        {
            let _graph = tracer.span("eval.graph", &[]);
            clock.advance_ms(2.0);
            {
                let _path = tracer.span("eval.path", &[("spec", "a")]);
                clock.advance_ms(10.0);
            }
            {
                let _path = tracer.span("eval.path", &[("spec", "b")]);
                clock.advance_ms(30.0);
            }
            clock.advance_ms(3.0);
        }
        let forest = TraceForest::from_events(&tracer.events());
        let profile = CostProfile::from_forest(&forest);
        let paths = &profile.entries["eval.path"];
        assert_eq!(paths.spans, 2);
        assert!((paths.total_self_ms - 40.0).abs() < 1e-9);
        assert!((paths.mean_self_ms - 20.0).abs() < 1e-9);
        assert!((paths.max_self_ms - 30.0).abs() < 1e-9);
        let graph = &profile.entries["eval.graph"];
        assert!((graph.total_self_ms - 5.0).abs() < 1e-9, "children excluded: {graph:?}");
        assert_eq!(profile.ranked()[0].0, "eval.path", "hot list orders by total self-time");

        let refined = CostProfile::from_forest_refined(&forest, Some("spec"));
        assert_eq!(refined.entries["eval.path[a]"].spans, 1);
        assert!((refined.entries["eval.path[b]"].max_self_ms - 30.0).abs() < 1e-9);
    }

    #[test]
    fn cost_profile_roundtrips_through_json() {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(Arc::clone(&clock) as Arc<dyn Clock>);
        {
            let _s = tracer.span("op.x", &[]);
            clock.advance_ms(4.0);
        }
        let profile = CostProfile::from_forest(&TraceForest::from_events(&tracer.events()));
        let json = profile.to_json();
        assert!(json.contains("coda-cost-profile-v1"));
        let back = CostProfile::from_json(&json).expect("profile JSON parses");
        assert_eq!(back, profile);
        assert_eq!(profile.to_json(), back.to_json(), "byte-stable rendering");
    }
}
