//! Model life-cycle management and high availability (paper §II–III):
//! a deployed pipeline faces concept drift and is retrained by policy,
//! while its dataset lives in a geo-replicated store that survives a site
//! failure.
//!
//! Run with: `cargo run --release --example model_lifecycle`

use bytes::Bytes;
use coda::cluster::{ModelLifecycle, RetrainPolicy};
use coda::data::{Dataset, Metric};
use coda::graph::{Node, Pipeline};
use coda::ml::LinearRegression;
use coda::store::ReplicatedStore;
use coda_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Labeled sensor batch whose input→output slope drifts over time.
fn drifting_batch(n: usize, slope: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, 1);
    let mut y = Vec::with_capacity(n);
    for r in 0..n {
        let v: f64 = rng.gen_range(-3.0..3.0);
        x[(r, 0)] = v;
        y.push(slope * v + 0.1 * rng.gen_range(-1.0..1.0));
    }
    Dataset::new(x).with_target(y).expect("lengths match")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- concept drift + retraining policies ------------------------------
    println!("== model lifecycle under concept drift ==");
    let initial = drifting_batch(300, 2.0, 1);
    for (name, policy) in [
        ("never retrain", RetrainPolicy::Never),
        ("every batch", RetrainPolicy::EveryNBatches(1)),
        ("on drift (25%)", RetrainPolicy::OnDrift { tolerance_ratio: 0.25, window: 2 }),
    ] {
        let pipeline = Pipeline::from_nodes(vec![Node::auto(
            (Box::new(LinearRegression::new()) as coda::data::BoxedEstimator).into(),
        )]);
        let mut lc = ModelLifecycle::deploy(pipeline, &initial, Metric::Rmse, policy)?;
        for i in 0..12u64 {
            // the process drifts after batch 5
            let slope = if i < 6 { 2.0 } else { -1.0 };
            lc.process_batch(&drifting_batch(200, slope, 100 + i))?;
        }
        println!(
            "  {name:<16} lifetime rmse {:.3}  retrains {}",
            lc.lifetime_error(),
            lc.retrain_count
        );
    }

    // ---- geo-replicated dataset with failover -----------------------------
    println!("\n== replicated data tier surviving a site failure ==");
    let mut store = ReplicatedStore::new(2, 8);
    let blob: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    store.put("training-data", Bytes::from(blob.clone()))?;
    println!("  committed v1 at primary {}", store.primary_name());

    store.fail_site("site-0")?;
    println!("  site-0 failed; {} of {} sites up", store.n_available(), store.n_sites());
    // reads degrade to a replica, writes fail over
    let reply = store.fetch("training-data", None)?.expect("object exists");
    println!("  degraded read served version {}", reply.version());
    let v2 = store.put("training-data", Bytes::from(blob))?;
    println!("  write after failover committed v{v2} at new primary {}", store.primary_name());

    store.recover_site("site-0")?;
    store.put("training-data", Bytes::from(vec![0u8; 50_000]))?;
    println!("  site-0 recovered; site versions: {:?}", store.site_versions("training-data"));
    Ok(())
}
