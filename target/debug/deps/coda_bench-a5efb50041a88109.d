/root/repo/target/debug/deps/coda_bench-a5efb50041a88109.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcoda_bench-a5efb50041a88109.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcoda_bench-a5efb50041a88109.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
