/root/repo/target/release/deps/coda_chaos-7e345f48d2f354be.d: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/retry.rs

/root/repo/target/release/deps/libcoda_chaos-7e345f48d2f354be.rlib: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/retry.rs

/root/repo/target/release/deps/libcoda_chaos-7e345f48d2f354be.rmeta: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/retry.rs

crates/chaos/src/lib.rs:
crates/chaos/src/fault.rs:
crates/chaos/src/retry.rs:
