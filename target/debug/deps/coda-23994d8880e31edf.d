/root/repo/target/debug/deps/coda-23994d8880e31edf.d: src/lib.rs

/root/repo/target/debug/deps/coda-23994d8880e31edf: src/lib.rs

src/lib.rs:
