//! Kernel PCA (the "kernal-PCA" of Table I): nonlinear feature
//! transformation by eigendecomposition of a centred kernel matrix.

use coda_data::{BoxedTransformer, ComponentError, Dataset, ParamValue, Transformer};
use coda_linalg::{symmetric_eigen, Matrix};

/// Kernel function used by [`KernelPca`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Radial basis function `exp(-gamma * ||x - y||²)`.
    Rbf {
        /// Width parameter (> 0).
        gamma: f64,
    },
    /// Polynomial `(xᵀy + c)^degree`.
    Polynomial {
        /// Degree (≥ 1).
        degree: u32,
        /// Offset.
        c: f64,
    },
}

impl Kernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Polynomial { degree, c } => {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                (dot + c).powi(*degree as i32)
            }
        }
    }
}

/// Kernel PCA with double-centring and alpha normalization; `transform`
/// projects new points via the kernel against the training rows.
///
/// # Examples
///
/// ```
/// use coda_data::{Dataset, Transformer};
/// use coda_linalg::Matrix;
/// use coda_ml::{Kernel, KernelPca};
///
/// // points on two concentric circles become separable along the first
/// // RBF kernel component
/// let mut rows = Vec::new();
/// for i in 0..40 {
///     let a = i as f64 * 0.157;
///     let r = if i % 2 == 0 { 1.0 } else { 4.0 };
///     rows.push(vec![r * a.cos(), r * a.sin()]);
/// }
/// let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
/// let ds = Dataset::new(Matrix::from_rows(&refs));
/// let mut kpca = KernelPca::new(2, Kernel::Rbf { gamma: 0.5 });
/// let out = kpca.fit_transform(&ds)?;
/// assert_eq!(out.n_features(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct KernelPca {
    n_components: usize,
    kernel: Kernel,
    train: Option<Matrix>,
    /// Dual coefficients: n_train x k, already scaled by 1/sqrt(lambda).
    alphas: Option<Matrix>,
    /// Per-training-row kernel means (for centring new points).
    row_means: Option<Vec<f64>>,
    total_mean: f64,
}

impl KernelPca {
    /// Creates a kernel PCA keeping `n_components` components.
    ///
    /// # Panics
    ///
    /// Panics if `n_components == 0` or kernel parameters are invalid.
    pub fn new(n_components: usize, kernel: Kernel) -> Self {
        assert!(n_components > 0, "n_components must be positive");
        if let Kernel::Rbf { gamma } = kernel {
            assert!(gamma > 0.0, "gamma must be positive");
        }
        if let Kernel::Polynomial { degree, .. } = kernel {
            assert!(degree >= 1, "degree must be >= 1");
        }
        KernelPca {
            n_components,
            kernel,
            train: None,
            alphas: None,
            row_means: None,
            total_mean: 0.0,
        }
    }
}

impl Transformer for KernelPca {
    fn name(&self) -> &str {
        "kernel_pca"
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        let bad = |reason: &str| ComponentError::InvalidParam {
            component: "kernel_pca".to_string(),
            param: param.to_string(),
            reason: reason.to_string(),
        };
        match param {
            "n_components" => {
                self.n_components = value
                    .as_usize()
                    .filter(|&k| k > 0)
                    .ok_or_else(|| bad("must be a positive integer"))?;
                Ok(())
            }
            "gamma" => match &mut self.kernel {
                Kernel::Rbf { gamma } => {
                    *gamma = value
                        .as_f64()
                        .filter(|&g| g > 0.0)
                        .ok_or_else(|| bad("must be positive"))?;
                    Ok(())
                }
                _ => Err(bad("gamma only applies to the rbf kernel")),
            },
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let x = data.features();
        let n = x.rows();
        if n < 2 {
            return Err(ComponentError::InvalidInput(
                "kernel pca needs at least two samples".to_string(),
            ));
        }
        // kernel matrix
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.kernel.eval(x.row(i), x.row(j));
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        // double centring: Kc = K - 1K - K1 + 1K1
        let row_means: Vec<f64> = (0..n).map(|i| k.row(i).iter().sum::<f64>() / n as f64).collect();
        let total_mean = row_means.iter().sum::<f64>() / n as f64;
        let mut kc = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                kc[(i, j)] = k[(i, j)] - row_means[i] - row_means[j] + total_mean;
            }
        }
        let eig = symmetric_eigen(&kc)
            .map_err(|e| ComponentError::Numerical(format!("kernel eigen failed: {e}")))?;
        let kcomp = self.n_components.min(n);
        let mut alphas = Matrix::zeros(n, kcomp);
        for c in 0..kcomp {
            let lambda = eig.values[c].max(1e-12);
            let scale = 1.0 / lambda.sqrt();
            for r in 0..n {
                alphas[(r, c)] = eig.vectors[(r, c)] * scale;
            }
        }
        self.train = Some(x.clone());
        self.alphas = Some(alphas);
        self.row_means = Some(row_means);
        self.total_mean = total_mean;
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (train, alphas, row_means) = match (&self.train, &self.alphas, &self.row_means) {
            (Some(t), Some(a), Some(m)) => (t, a, m),
            _ => return Err(ComponentError::NotFitted(self.name().to_string())),
        };
        if train.cols() != data.n_features() {
            return Err(ComponentError::InvalidInput(format!(
                "kernel pca fitted on {} features, input has {}",
                train.cols(),
                data.n_features()
            )));
        }
        let x = data.features();
        let n_train = train.rows();
        let mut projected = Matrix::zeros(x.rows(), alphas.cols());
        for (r, row) in x.iter_rows().enumerate() {
            // kernel vector against training rows, centred
            let kvec: Vec<f64> =
                (0..n_train).map(|i| self.kernel.eval(row, train.row(i))).collect();
            let kmean = kvec.iter().sum::<f64>() / n_train as f64;
            for c in 0..alphas.cols() {
                let mut acc = 0.0;
                for i in 0..n_train {
                    let centred = kvec[i] - kmean - row_means[i] + self.total_mean;
                    acc += centred * alphas[(i, c)];
                }
                projected[(r, c)] = acc;
            }
        }
        Ok(data.replace_features(projected))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(KernelPca::new(self.n_components, self.kernel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two concentric rings: linearly inseparable, RBF-kernel separable.
    fn rings(n_per: usize) -> (Dataset, Vec<f64>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2 * n_per {
            let angle = i as f64 * std::f64::consts::PI * 2.0 / n_per as f64;
            let (r, label) = if i % 2 == 0 { (1.0, 0.0) } else { (5.0, 1.0) };
            rows.push(vec![r * angle.cos(), r * angle.sin()]);
            labels.push(label);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        (Dataset::new(Matrix::from_rows(&refs)), labels)
    }

    #[test]
    fn rbf_separates_rings_where_linear_pca_cannot() {
        let (ds, labels) = rings(60);
        // linear PCA: both components mix the rings (projection of circles)
        let mut lin = crate::Pca::new(1);
        let lin_out = lin.fit_transform(&ds).unwrap();
        let lin_sep = class_separation(&lin_out.features().col(0), &labels);
        // kernel PCA: first component separates by radius
        let mut kpca = KernelPca::new(1, Kernel::Rbf { gamma: 0.2 });
        let k_out = kpca.fit_transform(&ds).unwrap();
        let k_sep = class_separation(&k_out.features().col(0), &labels);
        assert!(
            k_sep > 3.0 * lin_sep,
            "kernel separation {k_sep:.3} must dwarf linear {lin_sep:.3}"
        );
    }

    /// |mean difference| / pooled std between the two label groups.
    fn class_separation(values: &[f64], labels: &[f64]) -> f64 {
        let a: Vec<f64> =
            values.iter().zip(labels).filter(|(_, &l)| l == 0.0).map(|(v, _)| *v).collect();
        let b: Vec<f64> =
            values.iter().zip(labels).filter(|(_, &l)| l == 1.0).map(|(v, _)| *v).collect();
        let pooled = (coda_linalg::variance(&a) + coda_linalg::variance(&b)).sqrt().max(1e-9);
        (coda_linalg::mean(&a) - coda_linalg::mean(&b)).abs() / pooled
    }

    #[test]
    fn transform_consistent_on_training_points() {
        let (ds, _) = rings(30);
        let mut kpca = KernelPca::new(2, Kernel::Rbf { gamma: 0.3 });
        let fitted = kpca.fit_transform(&ds).unwrap();
        let again = kpca.transform(&ds).unwrap();
        for r in 0..fitted.n_samples() {
            for c in 0..2 {
                assert!((fitted.features()[(r, c)] - again.features()[(r, c)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn polynomial_kernel_runs() {
        let (ds, _) = rings(20);
        let mut kpca = KernelPca::new(2, Kernel::Polynomial { degree: 2, c: 1.0 });
        let out = kpca.fit_transform(&ds).unwrap();
        assert_eq!(out.n_features(), 2);
        assert!(out.features().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn params_and_errors() {
        let mut kpca = KernelPca::new(2, Kernel::Rbf { gamma: 1.0 });
        kpca.set_param("n_components", ParamValue::from(3usize)).unwrap();
        kpca.set_param("gamma", ParamValue::from(0.5)).unwrap();
        assert!(kpca.set_param("gamma", ParamValue::from(-1.0)).is_err());
        assert!(kpca.set_param("zzz", ParamValue::from(1.0)).is_err());
        let mut poly = KernelPca::new(1, Kernel::Polynomial { degree: 2, c: 0.0 });
        assert!(poly.set_param("gamma", ParamValue::from(0.5)).is_err());
        let (ds, _) = rings(10);
        assert!(KernelPca::new(1, Kernel::Rbf { gamma: 1.0 }).transform(&ds).is_err());
        let one = ds.select(&[0]);
        assert!(KernelPca::new(1, Kernel::Rbf { gamma: 1.0 }).fit(&one).is_err());
    }

    #[test]
    fn components_capped_at_sample_count() {
        let (ds, _) = rings(3); // 6 samples
        let mut kpca = KernelPca::new(100, Kernel::Rbf { gamma: 0.1 });
        let out = kpca.fit_transform(&ds).unwrap();
        assert_eq!(out.n_features(), 6);
    }
}
