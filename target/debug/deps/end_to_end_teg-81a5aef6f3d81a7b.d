/root/repo/target/debug/deps/end_to_end_teg-81a5aef6f3d81a7b.d: tests/end_to_end_teg.rs

/root/repo/target/debug/deps/end_to_end_teg-81a5aef6f3d81a7b: tests/end_to_end_teg.rs

tests/end_to_end_teg.rs:
