//! The fixture suite: proves every rule fires on its planted violation,
//! the escape hatch behaves (reasoned allows suppress, bare allows are
//! themselves findings), and the baseline only ratchets one way.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use coda_lint::baseline::Baseline;
use coda_lint::{analyze_sources, CrateKind, Finding, Rule};

fn fixture(name: &str) -> Vec<Finding> {
    let path = format!("{}/fixtures/{name}.rs", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    analyze_sources(vec![(format!("fixtures/{name}.rs"), CrateKind::Library, text)])
}

fn rules(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn determinism_fixture_fires_on_every_pattern() {
    let findings = fixture("determinism");
    assert_eq!(findings.len(), 5, "{findings:#?}");
    assert!(rules(&findings).iter().all(|r| *r == Rule::Determinism), "{findings:#?}");
    let hits: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    for pat in ["Instant::now", "SystemTime::now", "thread_rng", "rand::random", "elapsed"] {
        assert!(hits.iter().any(|m| m.contains(pat)), "missing `{pat}` in {hits:#?}");
    }
}

#[test]
fn determinism_findings_are_never_baselineable() {
    let findings = fixture("determinism");
    let base = Baseline::from_findings(&findings);
    assert!(base.entries.is_empty(), "determinism must not be freezable: {base:?}");
}

#[test]
fn panic_safety_fixture_fires_outside_tests_only() {
    let findings = fixture("panic_safety");
    assert_eq!(findings.len(), 5, "{findings:#?}");
    assert!(rules(&findings).iter().all(|r| *r == Rule::PanicSafety), "{findings:#?}");
    // the #[cfg(test)] module at the bottom holds an unwrap that must NOT fire
    let last_finding_line = findings.iter().map(|f| f.line).max().unwrap_or(0);
    assert!(last_finding_line < 22, "test-module unwrap leaked into findings: {findings:#?}");
}

#[test]
fn lock_cycle_fixture_detects_the_ab_ba_deadlock() {
    let findings = fixture("lock_cycle");
    let cycles: Vec<&Finding> = findings.iter().filter(|f| f.rule == Rule::LockOrder).collect();
    assert!(!cycles.is_empty(), "AB/BA cycle missed: {findings:#?}");
    assert!(
        cycles.iter().any(|f| f.message.contains("Pair.alpha") && f.message.contains("Pair.beta")),
        "cycle report must name both locks: {cycles:#?}"
    );
}

#[test]
fn lock_across_spawn_fixture_fires_for_spawn_and_send() {
    let findings = fixture("lock_across_spawn");
    let held: Vec<&Finding> = findings.iter().filter(|f| f.rule == Rule::LockAcrossSpawn).collect();
    assert_eq!(held.len(), 2, "{findings:#?}");
}

#[test]
fn allowed_fixture_is_fully_suppressed() {
    let findings = fixture("allowed");
    assert!(findings.is_empty(), "reasoned allows must suppress: {findings:#?}");
}

#[test]
fn bare_allow_suppresses_nothing_and_is_flagged() {
    let findings = fixture("allow_missing_reason");
    let rules = rules(&findings);
    assert!(rules.contains(&Rule::PanicSafety), "violation must survive: {findings:#?}");
    assert!(rules.contains(&Rule::AllowMissingReason), "directive must be flagged: {findings:#?}");
}

#[test]
fn unordered_flow_fixture_fires_exactly_once() {
    let findings = fixture("unordered_flow");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::UnorderedFlow);
    assert!(findings[0].message.contains("to_json"), "{findings:#?}");
}

#[test]
fn sorted_collect_fixture_is_clean() {
    let findings = fixture("unordered_flow_sorted");
    assert!(findings.is_empty(), "a sort before the sink must suppress: {findings:#?}");
}

#[test]
fn float_reduction_fixture_fires_exactly_once() {
    let findings = fixture("float_reduction");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::FloatReduction);
}

#[test]
fn obs_unregistered_fixture_fires_exactly_once() {
    let findings = fixture("obs_unregistered");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::ObsContract);
    assert!(findings[0].message.contains("coda_fixture_ghost"), "{findings:#?}");
}

#[test]
fn obs_label_mismatch_fixture_fires_exactly_once() {
    let findings = fixture("obs_label_mismatch");
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, Rule::ObsContract);
    assert!(
        findings[0].message.contains("shard") && findings[0].message.contains("spec"),
        "{findings:#?}"
    );
}

#[test]
fn reasoned_allow_suppresses_unordered_flow() {
    let findings = fixture("allowed_dataflow");
    assert!(findings.is_empty(), "reasoned allow must suppress the new rule: {findings:#?}");
}

#[test]
fn new_rules_are_baselineable_but_schema_drift_is_not() {
    let mut findings = fixture("unordered_flow");
    findings.extend(fixture("float_reduction"));
    findings.extend(fixture("obs_unregistered"));
    let base = Baseline::from_findings(&findings);
    assert_eq!(
        base.entries.values().copied().sum::<u64>(),
        3,
        "new-rule findings must freeze: {base:?}"
    );
    let drift = vec![Finding {
        rule: Rule::ObsSchemaDrift,
        file: "OBS_SCHEMA.json".to_string(),
        line: 1,
        message: "metric `coda_x` added".to_string(),
    }];
    assert!(
        Baseline::from_findings(&drift).entries.is_empty(),
        "schema drift must never be freezable"
    );
}

#[test]
fn ratchet_fails_when_a_fixture_violation_is_added() {
    // freeze a baseline over the clean state, then "commit" a fixture
    // violation on top: the gate must report growth, not absorb it
    let clean = fixture("allowed");
    let base = Baseline::from_findings(&clean);
    let with_new = fixture("panic_safety");
    let check = base.check(&with_new);
    assert!(!check.is_clean(), "a new violation slid past the ratchet");
    assert!(check.grown.keys().any(|k| k.starts_with("panic_safety|")), "{check:#?}");
}

#[test]
fn ratchet_fails_when_the_baseline_is_stale() {
    // freeze the fixture's violations, then fix them all: the oversized
    // baseline itself must fail until regenerated — the one-way ratchet
    let dirty = fixture("panic_safety");
    let base = Baseline::from_findings(&dirty);
    let check = base.check(&fixture("allowed"));
    assert!(!check.is_clean(), "a stale baseline must not pass silently");
    assert!(check.grown.is_empty(), "{check:#?}");
    assert!(!check.stale.is_empty(), "{check:#?}");
}

#[test]
fn grown_baseline_file_round_trips_through_disk() {
    // the CLI path: save a frozen baseline, reload it, ratchet against a
    // grown finding set — growth must survive the disk round-trip
    let dir = std::env::temp_dir().join("coda-lint-fixture-test");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("baseline.json");
    let base = Baseline::from_findings(&fixture("allowed"));
    base.save(&path).expect("save baseline");
    let loaded = Baseline::load(&path).expect("load baseline");
    assert_eq!(loaded, base);
    assert!(!loaded.check(&fixture("panic_safety")).is_clean());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn the_workspace_walker_skips_the_fixture_tree() {
    // the planted violations must never reach the real gate
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let files = coda_lint::walk::workspace_files(root).expect("walk workspace");
    assert!(
        files.iter().all(|(rel, _, _)| !rel.contains("fixtures/")),
        "fixture files leaked into the workspace walk"
    );
    assert!(
        files.iter().any(|(rel, _, _)| rel == "crates/lint/src/lib.rs"),
        "walker lost the lint crate itself"
    );
}
