/root/repo/target/debug/deps/fig1_system-83d3c905f6d4b3da.d: tests/fig1_system.rs

/root/repo/target/debug/deps/fig1_system-83d3c905f6d4b3da: tests/fig1_system.rs

tests/fig1_system.rs:
