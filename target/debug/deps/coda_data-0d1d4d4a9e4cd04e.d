/root/repo/target/debug/deps/coda_data-0d1d4d4a9e4cd04e.d: crates/data/src/lib.rs crates/data/src/cv.rs crates/data/src/dataset.rs crates/data/src/impute.rs crates/data/src/impute_advanced.rs crates/data/src/metrics.rs crates/data/src/outlier.rs crates/data/src/survival.rs crates/data/src/synth.rs crates/data/src/traits.rs

/root/repo/target/debug/deps/coda_data-0d1d4d4a9e4cd04e: crates/data/src/lib.rs crates/data/src/cv.rs crates/data/src/dataset.rs crates/data/src/impute.rs crates/data/src/impute_advanced.rs crates/data/src/metrics.rs crates/data/src/outlier.rs crates/data/src/survival.rs crates/data/src/synth.rs crates/data/src/traits.rs

crates/data/src/lib.rs:
crates/data/src/cv.rs:
crates/data/src/dataset.rs:
crates/data/src/impute.rs:
crates/data/src/impute_advanced.rs:
crates/data/src/metrics.rs:
crates/data/src/outlier.rs:
crates/data/src/survival.rs:
crates/data/src/synth.rs:
crates/data/src/traits.rs:
