//! Offline stand-in for `serde`. Instead of the full data-model/visitor
//! machinery, this crate defines a concrete JSON [`Value`], two traits —
//! [`Serialize`] (to a `Value`) and [`Deserialize`] (from a `Value`) — and
//! an [`impl_serde_struct!`] helper macro replacing the derive for plain
//! field structs. `serde_json` (the sibling stand-in) supplies the text
//! format on top of `Value`.

use std::collections::BTreeMap;

/// A JSON value. Integers and floats are distinct so round-trips preserve
/// the numeric flavor (`3` stays an integer, `3.0` stays a float).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer number (no decimal point or exponent in the source).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with sorted keys (deterministic output).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, when this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization to the JSON value model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the JSON value model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    fn from_value(v: &Value) -> Result<Self, String>;
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str().map(str::to_string).ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("expected bool, got {v:?}")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(format!("expected number, got {v:?}")),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("integer {i} out of range for {}", stringify!($t))),
                    _ => Err(format!("expected integer, got {v:?}")),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {v:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for BTreeMap<String, T> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, t)| (k.clone(), t.to_value())).collect())
    }
}

impl<T: Deserialize> Deserialize for BTreeMap<String, T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_object()
            .ok_or_else(|| format!("expected object, got {v:?}"))?
            .iter()
            .map(|(k, fv)| T::from_value(fv).map(|t| (k.clone(), t)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

/// Implements [`Serialize`]/[`Deserialize`] for a plain named-field struct,
/// replacing `#[derive(Serialize, Deserialize)]`:
///
/// ```
/// #[derive(PartialEq, Debug)]
/// struct Point { x: i64, y: i64 }
/// serde::impl_serde_struct!(Point { x, y });
/// let v = serde::Serialize::to_value(&Point { x: 1, y: 2 });
/// let back: Point = serde::Deserialize::from_value(&v).unwrap();
/// assert_eq!(back, Point { x: 1, y: 2 });
/// ```
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                let mut map = ::std::collections::BTreeMap::new();
                $(
                    map.insert(
                        stringify!($field).to_string(),
                        $crate::Serialize::to_value(&self.$field),
                    );
                )+
                $crate::Value::Object(map)
            }
        }

        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, String> {
                let obj = v
                    .as_object()
                    .ok_or_else(|| format!("expected object for {}", stringify!($ty)))?;
                Ok($ty {
                    $(
                        $field: match obj.get(stringify!($field)) {
                            Some(fv) => $crate::Deserialize::from_value(fv).map_err(|e| {
                                format!("{}.{}: {e}", stringify!($ty), stringify!($field))
                            })?,
                            None => {
                                return Err(format!(
                                    "{} missing field {}",
                                    stringify!($ty),
                                    stringify!($field)
                                ))
                            }
                        },
                    )+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        name: String,
        count: u64,
        ratio: f64,
        tags: Vec<String>,
    }

    impl_serde_struct!(Demo { name, count, ratio, tags });

    #[test]
    fn struct_roundtrip() {
        let d = Demo { name: "x".into(), count: 3, ratio: 0.5, tags: vec!["a".into(), "b".into()] };
        let v = d.to_value();
        let back = Demo::from_value(&v).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn missing_field_and_wrong_type_error() {
        let v = Value::Object(BTreeMap::new());
        assert!(Demo::from_value(&v).is_err());
        assert!(String::from_value(&Value::Int(1)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert_eq!(f64::from_value(&Value::Int(2)).unwrap(), 2.0);
    }
}
