//! Shared fixture for the prefix-cache equivalence harness: seeded TEG
//! builders, grids, and a bit-exact report comparator.

#![allow(dead_code)]

use coda::data::{synth, BoxedEstimator, BoxedTransformer, Dataset, NoOp};
use coda::graph::{GraphReport, ParamGrid, Teg, TegBuilder};
use coda::ml::{
    DecisionTreeRegressor, KnnRegressor, LinearRegression, MinMaxScaler, Pca, RidgeRegression,
    ScoreFunction, SelectKBest, StandardScaler,
};

/// Asserts two reports are identical path-for-path: same ranking, same
/// spec keys, same error strings, and bit-identical fold scores and means.
/// The `cache` field is deliberately ignored — it is the only permitted
/// difference between a cached and an uncached run.
pub fn assert_reports_identical(a: &GraphReport, b: &GraphReport) {
    assert_eq!(a.metric, b.metric, "ranking metric differs");
    assert_eq!(a.results.len(), b.results.len(), "result counts differ");
    for (i, (x, y)) in a.results.iter().zip(&b.results).enumerate() {
        assert_eq!(x.spec, y.spec, "rank {i}: spec/order differs");
        assert_eq!(x.error, y.error, "rank {i} ({}): error differs", x.spec.key());
        assert_eq!(
            x.fold_scores.len(),
            y.fold_scores.len(),
            "rank {i} ({}): fold count differs",
            x.spec.key()
        );
        for (f, (s, t)) in x.fold_scores.iter().zip(&y.fold_scores).enumerate() {
            assert_eq!(
                s.to_bits(),
                t.to_bits(),
                "rank {i} ({}), fold {f}: {s} vs {t} not bit-identical",
                x.spec.key()
            );
        }
        assert_eq!(
            x.mean_score.to_bits(),
            y.mean_score.to_bits(),
            "rank {i} ({}): mean not bit-identical",
            x.spec.key()
        );
    }
}

/// A seeded regression dataset sized so every fixture graph evaluates.
pub fn dataset(seed: u64) -> Dataset {
    synth::friedman1(160, 8, 0.3, seed)
}

/// `n_models` ridge regressors behind a shared 2-stage transformer prefix —
/// the best case for the cache.
pub fn fan_out_teg(n_models: usize) -> Teg {
    let models: Vec<BoxedEstimator> = (0..n_models)
        .map(|i| Box::new(RidgeRegression::new(0.05 * 2f64.powi(i as i32))) as BoxedEstimator)
        .collect();
    TegBuilder::new()
        .add_feature_scalers(vec![Box::new(StandardScaler::new()) as BoxedTransformer])
        .add_feature_selectors(vec![Box::new(Pca::new(4)) as BoxedTransformer])
        .add_models(models)
        .create_graph()
        .expect("fixed wiring is acyclic")
}

/// A single root→leaf chain: nothing is shared, so the cache sees only
/// misses — the degenerate case that must still be bit-identical.
pub fn linear_chain_teg() -> Teg {
    TegBuilder::new()
        .add_feature_scalers(vec![Box::new(StandardScaler::new()) as BoxedTransformer])
        .add_feature_selectors(vec![Box::new(Pca::new(4)) as BoxedTransformer])
        .add_models(vec![Box::new(LinearRegression::new()) as BoxedEstimator])
        .create_graph()
        .expect("fixed wiring is acyclic")
}

/// A Listing-1-shaped mixed graph: 2 scalers × 3 selectors × 3 models =
/// 18 paths with partially shared prefixes, mixing fast and slow models.
pub fn mixed_teg() -> Teg {
    TegBuilder::new()
        .add_feature_scalers(vec![
            Box::new(StandardScaler::new()) as BoxedTransformer,
            Box::new(MinMaxScaler::new()),
        ])
        .add_feature_selectors(vec![
            Box::new(Pca::new(4)) as BoxedTransformer,
            Box::new(SelectKBest::new(4, ScoreFunction::FRegression)),
            Box::new(NoOp::new()),
        ])
        .add_models(vec![
            Box::new(LinearRegression::new()) as BoxedEstimator,
            Box::new(KnnRegressor::new(5)),
            Box::new(DecisionTreeRegressor::new()),
        ])
        .create_graph()
        .expect("fixed wiring is acyclic")
}

/// A tiny wide dataset on which ordinary least squares is underdetermined
/// per fold (train rows < design columns) and fails, while ridge succeeds —
/// exercises the cached error-replay path with a mix of failing and passing
/// pipelines. Use with 3-fold CV or fewer samples than features + 1.
pub fn tiny_wide_dataset(seed: u64) -> Dataset {
    synth::linear_regression(12, 12, 0.01, seed)
}

/// Paired with [`tiny_wide_dataset`]: the OLS branch fails on every fold,
/// the ridge branch succeeds; both share the scaler prefix.
pub fn failing_branch_teg() -> Teg {
    TegBuilder::new()
        .add_feature_scalers(vec![Box::new(StandardScaler::new()) as BoxedTransformer])
        .add_models(vec![
            Box::new(LinearRegression::new()) as BoxedEstimator,
            Box::new(RidgeRegression::new(1.0)),
        ])
        .create_graph()
        .expect("fixed wiring is acyclic")
}

/// A grid that sweeps both a transformer and estimator parameter, so the
/// cache must key prefixes by resolved node params, not just step names.
pub fn mixed_grid() -> ParamGrid {
    let mut grid = ParamGrid::new();
    grid.add("pca__n_components", vec![3usize.into(), 5usize.into()]);
    grid.add("knn_regressor__k", vec![3usize.into(), 7usize.into()]);
    grid
}
