//! End-to-end causal tracing acceptance test: one logical "data update"
//! flows through every simulated distributed boundary — a store `put`
//! pushing to a subscribed client, a recompute trigger firing, a TEG
//! evaluation, and a cooperative DARR record — and the resulting trace
//! forest must be a single coherent tree with no orphaned spans, a
//! non-empty multi-crate critical path, and a Chrome trace export that
//! round-trips through the analyzer. A seeded chaos run must additionally
//! replay its whole forest byte-identically.
//!
//! Filterable as one suite: `cargo test --release -- trace_e2e`.

mod common;

use bytes::Bytes;
use coda::cluster::{run_chaos_coop_obs, ChaosCoopConfig};
use coda::darr::{ComputationKey, CooperativeClient, Darr};
use coda::data::{CvStrategy, Metric};
use coda::graph::Evaluator;
use coda::obs::{Obs, TraceForest};
use coda::store::{
    CachingClient, ChangeMonitor, HomeDataStore, PushMode, RecomputeTrigger, UpdateMessage,
};
use common::{dataset, fan_out_teg};

/// Drives the full multi-tier story under one root span and returns the
/// resulting forest: store update → push apply → trigger → eval → DARR.
fn run_multi_tier(obs: &Obs) -> TraceForest {
    // store tier: an instrumented home store pushing to a caching client
    let mut store = HomeDataStore::new("home", 4);
    store.attach_obs(obs.clone());
    let mut cache = CachingClient::new("analyst");
    cache.attach_obs(obs.clone());
    store.subscribe("analyst", "ds", PushMode::Full, 10_000);

    let root = obs.tracer().begin_span("ingest.update", None, &[("object", "ds")]);

    let blob: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let blob_len = blob.len() as u64;
    let (_, messages) = store.put_in("ds", Bytes::from(blob), Some(root));
    assert!(!messages.is_empty(), "the subscription must produce a push");
    for msg in &messages {
        if let UpdateMessage::Full { .. } | UpdateMessage::Delta { .. } = msg {
            cache.apply_push(msg).expect("push applies cleanly");
        }
    }

    // trigger tier: the update volume fires a recompute, which runs the
    // eval and DARR tiers under a `trigger.recompute` span
    let mut monitor = ChangeMonitor::new(RecomputeTrigger::UpdateBytes(1024));
    monitor.attach_obs(obs.clone());
    assert!(monitor.record_update(blob_len, 0.0), "4 KiB must fire the byte trigger");
    {
        let recompute = obs.span_child(root, "trigger.recompute", &[("object", "ds")]);

        // eval tier: implicit parenting hangs eval.graph off the guard
        let ds = dataset(7);
        let teg = fan_out_teg(3);
        Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .with_obs(obs.clone())
            .evaluate_graph(&teg, &ds)
            .expect("fixture graph evaluates");

        // darr tier: the record's claim/complete link through the carried
        // context
        let darr = Darr::new();
        darr.attach_obs(obs.clone());
        let coop = CooperativeClient::new(&darr, "analyst", 60_000).with_obs(obs.clone());
        let key = ComputationKey::new("ds", 1, "p0", "kfold(3)", "rmse");
        coop.process_in(&key, Some(recompute.context()), || {
            Ok((0.5, vec![0.4, 0.5, 0.6], "trace e2e".to_string()))
        });
    }
    obs.tracer().end_span(root, &[]);
    obs.forest()
}

#[test]
fn multi_tier_update_yields_one_coherent_trace() {
    let obs = Obs::deterministic();
    let forest = run_multi_tier(&obs);

    assert!(forest.orphans().is_empty(), "every carried context resolves to a real parent");
    assert_eq!(forest.unresolved_points(), 0, "every point event lands in a known span");
    assert_eq!(forest.trace_ids().len(), 1, "one update, one trace");

    // every tier contributed spans to the same tree
    let names: Vec<&str> = forest.spans().map(|s| s.name.as_str()).collect();
    for needle in [
        "ingest.update",
        "store.put",
        "store.apply_update",
        "trigger.recompute",
        "eval.graph",
        "eval.path",
        "eval.fold",
        "darr.process",
        "darr.claim",
        "darr.complete",
    ] {
        assert!(names.contains(&needle), "forest must contain a {needle} span, got {names:?}");
    }

    // the critical path starts at the root and crosses crate boundaries
    let trace = forest.trace_ids()[0];
    let path = forest.critical_path(trace);
    assert!(path.len() >= 2, "critical path must descend below the root");
    let nodes: Vec<_> = path.iter().map(|id| forest.span(*id).expect("path resolves")).collect();
    assert_eq!(nodes[0].name, "ingest.update");
    for pair in nodes.windows(2) {
        assert_eq!(pair[1].parent, Some(pair[0].ctx.span_id), "path edges are parent links");
    }

    // self-time rollups cover every span and never exceed totals
    for span in forest.spans() {
        let own = forest.self_time_ms(span.ctx.span_id);
        assert!(own >= 0.0 && own <= span.duration_ms() + 1e-9);
    }
    let rollup = forest.self_time_rollup(trace);
    assert!(rollup.contains_key("eval.fold"), "leaf work shows up in the rollup");
}

#[test]
fn multi_tier_trace_round_trips_through_chrome_export() {
    let obs = Obs::deterministic();
    let forest = run_multi_tier(&obs);
    let chrome = forest.to_chrome_json();

    let back = TraceForest::from_chrome_json(&chrome).expect("export parses back");
    assert!(back.same_shape(&forest), "round trip preserves the span forest");
    let trace = back.trace_ids()[0];
    assert!(
        back.critical_path(trace).len() >= 2,
        "the multi-tier critical path survives the export"
    );

    // deterministic: an identical run exports byte-identical JSON
    let obs2 = Obs::deterministic();
    let chrome2 = run_multi_tier(&obs2).to_chrome_json();
    assert_eq!(chrome, chrome2, "same run, same bytes");
}

#[test]
fn chaos_run_replays_its_trace_forest_byte_identically() {
    let cfg = ChaosCoopConfig {
        seed: 17,
        n_clients: 4,
        n_keys: 16,
        drop_probability: 0.2,
        darr_partition: Some((300.0, 700.0)),
        crash: Some((2, 150.0, 650.0)),
        claim_duration: 200,
        max_rounds: 10_000,
    };
    let obs_a = Obs::deterministic();
    let report_a = run_chaos_coop_obs(&cfg, Some(&obs_a));
    let obs_b = Obs::deterministic();
    let report_b = run_chaos_coop_obs(&cfg, Some(&obs_b));
    assert_eq!(report_a, report_b, "reports replay bit-identically");

    let forest_a = obs_a.forest();
    let forest_b = obs_b.forest();
    assert_eq!(forest_a, forest_b, "same seed, same trace forest");
    assert_eq!(forest_a.to_chrome_json(), forest_b.to_chrome_json(), "exports are byte-identical");

    // the forest is coherent: every message-carried context resolved
    assert!(!forest_a.is_empty(), "the run must trace spans");
    assert!(forest_a.orphans().is_empty(), "no orphaned spans under chaos");
    assert_eq!(forest_a.unresolved_points(), 0, "no dangling protocol events");
    // one root per touched key, with the DARR's spans linked underneath
    assert_eq!(forest_a.trace_ids().len(), cfg.n_keys, "one trace per work item");
    let names: Vec<&str> = forest_a.spans().map(|s| s.name.as_str()).collect();
    for needle in ["chaos.key", "chaos.attempt", "darr.claim", "darr.complete"] {
        assert!(names.contains(&needle), "chaos forest must contain {needle} spans");
    }
}
