//! Offline stand-in for `parking_lot`: wraps `std::sync` locks behind the
//! `parking_lot` guard API (no `Result`, poisoning is ignored by design —
//! a poisoned lock here means a test already panicked).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
