//! A deterministic flight recorder: the "health over time" surface the
//! point-in-time [`MetricsSnapshot`] cannot provide.
//!
//! The recorder is driven entirely by its caller's clock: a driver calls
//! [`FlightRecorder::tick`] with the current (logical or wall) time and a
//! fresh registry snapshot, and whenever at least `window_ms` has elapsed
//! since the last recorded window the recorder folds the interval into a
//! [`FlightWindow`] carrying the [`MetricsSnapshot::diff`] delta for that
//! interval. Windows land in fixed-capacity ring buffers with RRD-style
//! downsampling: level 0 holds the most recent windows at full
//! resolution, and when it overflows the `merge` oldest windows fold into
//! one coarser window on level 1, and so on — old history degrades in
//! resolution instead of unbounded memory growth, and the last level
//! simply drops its oldest window.
//!
//! Nothing in here reads time or randomness itself, so two same-seed
//! drivers produce byte-identical timelines ([`FlightRecorder::to_json`])
//! — the same determinism contract the tracer honours (DESIGN.md §13).

use std::collections::VecDeque;

use serde::impl_serde_struct;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Recorder shape: window width and the downsampling ladder.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Minimum interval between recorded windows, in clock milliseconds.
    pub window_ms: f64,
    /// Windows each level's ring holds before it downsamples.
    pub level_capacity: usize,
    /// How many oldest windows fold into one coarser window on overflow.
    pub merge: usize,
    /// Resolution levels (level 0 is finest; the last level drops).
    pub levels: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig { window_ms: 100.0, level_capacity: 16, merge: 4, levels: 3 }
    }
}

/// One recorded interval: its bounds, how many level-0 windows it covers
/// (1 until downsampling merges it), and the metric delta inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightWindow {
    /// Interval start, milliseconds.
    pub start_ms: f64,
    /// Interval end, milliseconds.
    pub end_ms: f64,
    /// Level-0 windows folded into this one.
    pub windows: u64,
    /// What happened inside the interval ([`MetricsSnapshot::diff`]).
    pub delta: MetricsSnapshot,
}

impl_serde_struct!(FlightWindow { start_ms, end_ms, windows, delta });

/// Folds `b`'s histogram delta into `a`'s: bucket-wise when the bounds
/// match; with mismatched bounds the later snapshot wins (the instrument
/// was re-registered mid-flight, so the older buckets are not comparable).
fn merge_hist(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    if a.bounds != b.bounds {
        return b.clone();
    }
    HistogramSnapshot {
        bounds: a.bounds.clone(),
        counts: a.counts.iter().zip(&b.counts).map(|(x, y)| x + y).collect(),
        count: a.count + b.count,
        sum: a.sum + b.sum,
    }
}

impl FlightWindow {
    /// Merges an older window with the one that follows it: counters and
    /// gauge deltas add, histogram buckets add, the interval widens.
    pub fn merge(older: &FlightWindow, newer: &FlightWindow) -> FlightWindow {
        let mut delta = older.delta.clone();
        for (k, v) in &newer.delta.counters {
            *delta.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &newer.delta.gauges {
            *delta.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &newer.delta.histograms {
            match delta.histograms.get_mut(k) {
                Some(existing) => *existing = merge_hist(existing, h),
                None => {
                    delta.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        FlightWindow {
            start_ms: older.start_ms,
            end_ms: newer.end_ms,
            windows: older.windows + newer.windows,
            delta,
        }
    }
}

/// The deterministic JSON shape of a full timeline dump.
#[derive(Debug, Clone, PartialEq)]
struct FlightDump {
    schema: String,
    window_ms: f64,
    windows: Vec<FlightWindow>,
}

impl_serde_struct!(FlightDump { schema, window_ms, windows });

/// The recorder: a downsampling ring of [`FlightWindow`]s plus the last
/// cumulative snapshot to diff the next window against.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    last: Option<(f64, MetricsSnapshot)>,
    levels: Vec<VecDeque<FlightWindow>>,
}

impl FlightRecorder {
    /// Creates a recorder.
    ///
    /// # Panics
    ///
    /// Panics when the config is degenerate (`window_ms <= 0`, zero
    /// capacity, a merge factor below 2, or zero levels) — these are
    /// build-time constants, never data-dependent. A `level_capacity` of 1
    /// is legal: every push overflows immediately, so each level holds one
    /// window that folds straight through the ladder (a pass-through ring).
    pub fn new(cfg: FlightConfig) -> Self {
        assert!(cfg.window_ms > 0.0, "window width must be positive");
        assert!(cfg.level_capacity >= 1, "a level must hold at least one window");
        assert!(cfg.merge >= 2, "merging fewer than 2 windows never shrinks a level");
        assert!(cfg.levels >= 1, "need at least one level");
        let levels = (0..cfg.levels).map(|_| VecDeque::new()).collect();
        FlightRecorder { cfg, last: None, levels }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &FlightConfig {
        &self.cfg
    }

    /// Offers the current time and a fresh snapshot. The first call seeds
    /// the baseline; later calls record a window (and return `true`) once
    /// at least `window_ms` has elapsed since the last recorded boundary.
    /// Calls inside a window are free no-ops, so drivers can tick every
    /// iteration without thinking about cadence.
    pub fn tick(&mut self, now_ms: f64, snap: &MetricsSnapshot) -> bool {
        let Some((last_ms, last_snap)) = &self.last else {
            self.last = Some((now_ms, snap.clone()));
            return false;
        };
        if now_ms - last_ms < self.cfg.window_ms {
            return false;
        }
        let window = FlightWindow {
            start_ms: *last_ms,
            end_ms: now_ms,
            windows: 1,
            delta: snap.diff(last_snap),
        };
        self.last = Some((now_ms, snap.clone()));
        self.levels[0].push_back(window);
        self.cascade();
        true
    }

    /// Applies the downsampling ladder after a push: any level over
    /// capacity folds its `merge` oldest windows into one window on the
    /// next level; the last level drops its oldest instead.
    fn cascade(&mut self) {
        for level in 0..self.levels.len() {
            while self.levels[level].len() > self.cfg.level_capacity {
                if level + 1 == self.levels.len() {
                    self.levels[level].pop_front();
                    continue;
                }
                let Some(mut folded) = self.levels[level].pop_front() else { break };
                for _ in 1..self.cfg.merge {
                    match self.levels[level].pop_front() {
                        Some(next) => folded = FlightWindow::merge(&folded, &next),
                        None => break,
                    }
                }
                self.levels[level + 1].push_back(folded);
            }
        }
    }

    /// Windows recorded and still held, across all levels.
    pub fn len(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full retained timeline, oldest to newest: coarse (downsampled)
    /// windows first, then the full-resolution recent windows.
    pub fn timeline(&self) -> Vec<&FlightWindow> {
        let mut out = Vec::with_capacity(self.len());
        for level in self.levels.iter().rev() {
            out.extend(level.iter());
        }
        out
    }

    /// Renders the timeline as deterministic JSON (stable key order from
    /// the `BTreeMap`s inside every delta).
    pub fn to_json(&self) -> String {
        let dump = FlightDump {
            schema: "coda-flight-v1".to_string(),
            window_ms: self.cfg.window_ms,
            windows: self.timeline().into_iter().cloned().collect(),
        };
        serde_json::to_string(&dump).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;
    use crate::metrics::MetricsRegistry;

    fn recorder(level_capacity: usize, merge: usize, levels: usize) -> FlightRecorder {
        FlightRecorder::new(FlightConfig { window_ms: 10.0, level_capacity, merge, levels })
    }

    #[test]
    fn windows_carry_the_interval_delta() {
        let reg = MetricsRegistry::new();
        let mut rec = recorder(8, 2, 2);
        assert!(!rec.tick(0.0, &reg.snapshot()), "first tick only seeds the baseline");
        reg.count("coda_test_ops", 5);
        assert!(!rec.tick(5.0, &reg.snapshot()), "inside the window: no-op");
        reg.count("coda_test_ops", 2);
        assert!(rec.tick(10.0, &reg.snapshot()), "window boundary records");
        let timeline = rec.timeline();
        assert_eq!(timeline.len(), 1);
        assert_eq!(timeline[0].start_ms, 0.0);
        assert_eq!(timeline[0].end_ms, 10.0);
        assert_eq!(timeline[0].windows, 1);
        assert_eq!(timeline[0].delta.counter("coda_test_ops"), 7, "whole interval attributed");
        reg.count("coda_test_ops", 1);
        assert!(rec.tick(20.0, &reg.snapshot()));
        assert_eq!(rec.timeline()[1].delta.counter("coda_test_ops"), 1, "only the new window");
    }

    #[test]
    fn overflow_downsamples_oldest_windows_into_coarser_levels() {
        let reg = MetricsRegistry::new();
        let mut rec = recorder(4, 2, 2);
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=6 {
            reg.count("coda_test_ops", 1);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
        }
        // 6 windows through a 4-deep level 0: two merges of 2 move to level 1
        let timeline = rec.timeline();
        assert_eq!(rec.len(), timeline.len());
        let merged: Vec<&&FlightWindow> = timeline.iter().filter(|w| w.windows > 1).collect();
        assert!(!merged.is_empty(), "old windows must be downsampled");
        assert_eq!(merged[0].windows, 2);
        assert_eq!(merged[0].delta.counter("coda_test_ops"), 2, "merged deltas add");
        // chronological: every window starts where the previous ended
        for pair in timeline.windows(2) {
            assert_eq!(pair[0].end_ms, pair[1].start_ms, "timeline must be contiguous");
        }
        let total: u64 = timeline.iter().map(|w| w.delta.counter("coda_test_ops")).sum();
        assert_eq!(total, 6, "downsampling loses resolution, never mass");
    }

    #[test]
    fn last_level_drops_oldest_history() {
        let reg = MetricsRegistry::new();
        let mut rec = recorder(2, 2, 1);
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=5 {
            reg.count("coda_test_ops", 1);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
        }
        assert_eq!(rec.len(), 2, "single-level ring stays bounded");
        assert_eq!(rec.timeline()[0].start_ms, 30.0, "oldest windows fell off");
    }

    #[test]
    fn histograms_and_gauges_merge_in_windows() {
        let reg = MetricsRegistry::new();
        let mut rec = recorder(2, 2, 2);
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=3 {
            reg.observe_ms("coda_test_ms", i as f64);
            reg.gauge("coda_test_depth").add(1.0);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
        }
        // 3 windows through a 2-deep level 0: the 2 oldest merged
        let timeline = rec.timeline();
        let merged = timeline[0];
        assert_eq!(merged.windows, 2);
        assert_eq!(merged.delta.histograms["coda_test_ms"].count, 2);
        assert!((merged.delta.histograms["coda_test_ms"].sum - 3.0).abs() < 1e-12);
        assert!((merged.delta.gauges["coda_test_depth"] - 2.0).abs() < 1e-12);
    }

    /// Satellite: a capacity-1 ring is legal and coherent — every push
    /// overflows immediately, so windows fold straight through the ladder
    /// like digits of a merge-ary counter. The timeline stays contiguous
    /// and no counter mass is lost.
    #[test]
    fn capacity_one_ring_cascades_without_losing_mass() {
        let reg = MetricsRegistry::new();
        let mut rec = recorder(1, 2, 3);
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=6 {
            reg.count("coda_test_ops", 1);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
        }
        let timeline = rec.timeline();
        assert!(!timeline.is_empty());
        for pair in timeline.windows(2) {
            assert_eq!(pair[0].end_ms, pair[1].start_ms, "contiguous even at capacity 1");
        }
        // the last level (capacity 1) drops its oldest; whatever survives
        // keeps exact per-window mass
        for w in &timeline {
            assert_eq!(
                w.delta.counter("coda_test_ops"),
                w.windows,
                "each retained window carries exactly its folded deltas"
            );
        }
        assert_eq!(rec.len(), timeline.len());
        // still ticks and stays bounded long after
        for i in 7..=40 {
            reg.count("coda_test_ops", 1);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
        }
        assert!(rec.len() <= 3, "one window per level at most");
    }

    /// Satellite: exact merge-level boundary — filling level 0 to capacity
    /// records without downsampling; the push after the boundary folds
    /// exactly `merge` oldest windows into one coarser window whose
    /// interval is the widened union and whose counters are the exact sum.
    #[test]
    fn merge_boundary_folds_exactly_merge_windows() {
        let reg = MetricsRegistry::new();
        let mut rec = recorder(4, 3, 2);
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=4 {
            reg.count("coda_test_ops", i);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
        }
        assert_eq!(
            rec.timeline().iter().filter(|w| w.windows > 1).count(),
            0,
            "at capacity: no merge yet"
        );
        // the 5th window tips level 0 over: windows 1..=3 (deltas 1, 2, 3) fold
        reg.count("coda_test_ops", 5);
        rec.tick(50.0, &reg.snapshot());
        let timeline = rec.timeline();
        let merged = timeline[0];
        assert_eq!(merged.windows, 3, "exactly `merge` windows fold");
        assert_eq!(merged.start_ms, 0.0, "interval start comes from the oldest");
        assert_eq!(merged.end_ms, 30.0, "interval end comes from the newest folded");
        assert_eq!(merged.delta.counter("coda_test_ops"), 1 + 2 + 3, "counter fold is exact");
        assert_eq!(timeline.len(), 3, "one coarse + two fine windows remain");
        assert_eq!(timeline[1].start_ms, 30.0, "fine tail resumes at the fold boundary");
        let total: u64 = timeline.iter().map(|w| w.delta.counter("coda_test_ops")).sum();
        assert_eq!(total, 1 + 2 + 3 + 4 + 5, "no mass lost at the boundary");
    }

    /// Satellite: a mid-flight re-registered histogram (different bounds)
    /// is not comparable across the fold — the newer window's buckets win.
    #[test]
    fn merge_with_mismatched_histogram_bounds_keeps_newer() {
        let older = FlightWindow {
            start_ms: 0.0,
            end_ms: 10.0,
            windows: 1,
            delta: MetricsSnapshot {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: [(
                    "coda_test_ms".to_string(),
                    HistogramSnapshot { bounds: vec![1.0], counts: vec![4, 0], count: 4, sum: 2.0 },
                )]
                .into_iter()
                .collect(),
            },
        };
        let mut newer = older.clone();
        newer.start_ms = 10.0;
        newer.end_ms = 20.0;
        newer.delta.histograms.insert(
            "coda_test_ms".to_string(),
            HistogramSnapshot { bounds: vec![5.0], counts: vec![1, 1], count: 2, sum: 9.0 },
        );
        let merged = FlightWindow::merge(&older, &newer);
        assert_eq!(merged.start_ms, 0.0);
        assert_eq!(merged.end_ms, 20.0);
        assert_eq!(merged.windows, 2);
        let h = &merged.delta.histograms["coda_test_ms"];
        assert_eq!(h.bounds, vec![5.0], "mismatched bounds: newer snapshot wins");
        assert_eq!(h.count, 2);
    }

    #[test]
    fn same_driver_sequence_dumps_byte_identical_json() {
        let run = || {
            let reg = MetricsRegistry::new();
            let mut rec = recorder(4, 2, 3);
            rec.tick(0.0, &reg.snapshot());
            for i in 1..=9 {
                reg.count("coda_test_ops", i);
                reg.observe_ms("coda_test_ms", 0.25 * i as f64);
                rec.tick(i as f64 * 10.0, &reg.snapshot());
            }
            rec.to_json()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "flight timelines must replay byte-identically");
        assert!(a.contains("coda-flight-v1"));
    }
}
