//! Deterministic fault injection and resilience policies for the simulated
//! distributed system: a seeded [`FaultInjector`] that the network/store
//! layers consult to produce message drops, link flaps, slow transfers,
//! scheduled node crashes and payload corruption, plus a [`RetryPolicy`]
//! (fixed or exponential backoff with seeded jitter) whose [`RetryStats`]
//! make every recovery path *measurable*.
//!
//! Everything is driven by logical time and seeded RNGs, so a chaos run
//! with the same [`FaultPlan`] seed replays bit-identically — the property
//! the resilience tests and the D4 experiment rely on.
//!
//! # Examples
//!
//! ```
//! use coda_chaos::{FaultPlan, FaultInjector, RetryPolicy};
//!
//! let plan = FaultPlan::new(7).with_drop_probability(0.5);
//! let mut inj = FaultInjector::new(plan);
//! let policy = RetryPolicy::exponential(10.0, 2.0, 80.0, 6);
//! let (result, stats) = policy.run(|_attempt| {
//!     if inj.should_drop("client", "store") { Err("dropped") } else { Ok(()) }
//! });
//! assert!(result.is_ok());
//! assert_eq!(stats.attempts, stats.retries + 1);
//! ```

pub mod crash;
pub mod fault;
pub mod retry;

pub use crash::{CrashPlan, CrashPoint, CrashSchedule};
pub use fault::{FaultInjector, FaultPlan, FaultStats, LinkFlap, NodeCrash};
pub use retry::{Backoff, RetryPolicy, RetryState, RetryStats};
