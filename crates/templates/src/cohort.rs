//! Cohort Analysis: "leverages historical sensor data from multiple assets
//! to model their behaviour … assets are grouped in different buckets or
//! cohorts" (§IV-E).
//!
//! Assets are summarized by behaviour signatures (per-channel mean, spread,
//! trend and lag-1 autocorrelation) and clustered with k-means; the best
//! cohort count can be chosen by an elbow scan.

use coda_data::Dataset;
use coda_linalg::{stats, Matrix};
use coda_ml::kmeans::purity;
use coda_ml::KMeans;

use crate::TemplateError;

/// Result of a cohort run.
#[derive(Debug, Clone)]
pub struct CohortReport {
    /// Cohort id per asset.
    pub assignments: Vec<usize>,
    /// Number of cohorts.
    pub n_cohorts: usize,
    /// Within-cohort inertia of the clustering.
    pub inertia: f64,
    /// Asset counts per cohort.
    pub sizes: Vec<usize>,
}

impl CohortReport {
    /// Purity against known cohort labels (1.0 = perfect recovery).
    pub fn purity_against(&self, truth: &[usize]) -> f64 {
        purity(&self.assignments, truth)
    }
}

/// The Cohort Analysis template.
#[derive(Debug, Clone)]
pub struct CohortAnalysis {
    n_cohorts: usize,
    seed: u64,
}

impl CohortAnalysis {
    /// Creates the template with `n_cohorts` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `n_cohorts == 0`.
    pub fn new(n_cohorts: usize) -> Self {
        assert!(n_cohorts > 0);
        CohortAnalysis { n_cohorts, seed: 23 }
    }

    /// Sets the clustering seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Behaviour signature of one asset's sensor history
    /// (timestamps × channels): per channel mean, robust spread, linear
    /// trend slope and lag-1 autocorrelation.
    pub fn signature(history: &Matrix) -> Vec<f64> {
        let mut sig = Vec::with_capacity(history.cols() * 4);
        let n = history.rows().max(1) as f64;
        for c in 0..history.cols() {
            let col = history.col(c);
            sig.push(stats::mean(&col));
            sig.push(stats::std_dev(&col));
            // least-squares slope against time
            let tbar = (n - 1.0) / 2.0;
            let mut num = 0.0;
            let mut den = 0.0;
            for (t, v) in col.iter().enumerate() {
                let dt = t as f64 - tbar;
                num += dt * (v - stats::mean(&col));
                den += dt * dt;
            }
            sig.push(if den > 0.0 { num / den } else { 0.0 });
            sig.push(stats::autocorrelation(&col, 1));
        }
        sig
    }

    /// Builds the signature dataset for a fleet of asset histories.
    ///
    /// # Errors
    ///
    /// [`TemplateError::InvalidData`] for an empty fleet or inconsistent
    /// channel counts.
    pub fn signatures(assets: &[Matrix]) -> Result<Dataset, TemplateError> {
        if assets.is_empty() {
            return Err(TemplateError::InvalidData("no assets".to_string()));
        }
        let channels = assets[0].cols();
        if assets.iter().any(|a| a.cols() != channels) {
            return Err(TemplateError::InvalidData(
                "assets must share the same sensor channels".to_string(),
            ));
        }
        let rows: Vec<Vec<f64>> = assets.iter().map(Self::signature).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        Ok(Dataset::new(Matrix::from_rows(&refs)))
    }

    /// Clusters pre-computed behaviour features into cohorts.
    ///
    /// # Errors
    ///
    /// [`TemplateError::Evaluation`] when clustering fails (e.g. fewer
    /// assets than cohorts).
    pub fn run(&self, features: &Dataset) -> Result<CohortReport, TemplateError> {
        let km = KMeans::new(self.n_cohorts)
            .with_seed(self.seed)
            .fit(features)
            .map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        let assignments =
            km.predict(features).map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        let mut sizes = vec![0usize; self.n_cohorts];
        for &a in &assignments {
            sizes[a] += 1;
        }
        Ok(CohortReport {
            assignments,
            n_cohorts: self.n_cohorts,
            inertia: km.inertia().unwrap_or(0.0),
            sizes,
        })
    }

    /// Clusters raw asset sensor histories end-to-end.
    ///
    /// # Errors
    ///
    /// As for [`CohortAnalysis::signatures`] and [`CohortAnalysis::run`].
    pub fn run_on_histories(&self, assets: &[Matrix]) -> Result<CohortReport, TemplateError> {
        let features = Self::signatures(assets)?;
        self.run(&features)
    }

    /// Elbow scan: inertia for each cohort count in `[2, max_k]` — the data
    /// scientist picks the knee.
    ///
    /// # Errors
    ///
    /// As for [`CohortAnalysis::run`].
    pub fn elbow_scan(
        features: &Dataset,
        max_k: usize,
        seed: u64,
    ) -> Result<Vec<(usize, f64)>, TemplateError> {
        let mut out = Vec::new();
        for k in 2..=max_k.max(2) {
            let report = CohortAnalysis::new(k).with_seed(seed).run(features)?;
            out.push((k, report.inertia));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::synth;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Fleet with two behaviour regimes: flat-noisy vs trending-smooth.
    fn fleet(n_per: usize, seed: u64) -> (Vec<Matrix>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut assets = Vec::new();
        let mut truth = Vec::new();
        for i in 0..2 * n_per {
            let cohort = i % 2;
            let mut m = Matrix::zeros(100, 2);
            for t in 0..100 {
                for c in 0..2 {
                    m[(t, c)] = if cohort == 0 {
                        rng.gen_range(-3.0..3.0)
                    } else {
                        0.1 * t as f64 + 0.2 * rng.gen_range(-1.0..1.0)
                    };
                }
            }
            assets.push(m);
            truth.push(cohort);
        }
        (assets, truth)
    }

    #[test]
    fn recovers_behaviour_cohorts_from_histories() {
        let (assets, truth) = fleet(15, 71);
        let report = CohortAnalysis::new(2).run_on_histories(&assets).unwrap();
        assert!(report.purity_against(&truth) > 0.9);
        assert_eq!(report.sizes.iter().sum::<usize>(), 30);
    }

    #[test]
    fn recovers_synthetic_cohort_features() {
        let (features, truth) = synth::cohort_data(90, 3, 5, 72);
        let report = CohortAnalysis::new(3).run(&features).unwrap();
        assert!(report.purity_against(&truth) > 0.9);
    }

    #[test]
    fn signature_captures_trend_and_noise() {
        let mut trending = Matrix::zeros(50, 1);
        for t in 0..50 {
            trending[(t, 0)] = t as f64;
        }
        let sig = CohortAnalysis::signature(&trending);
        // [mean, std, slope, autocorr]
        assert!((sig[2] - 1.0).abs() < 1e-9, "slope should be 1, got {}", sig[2]);
        assert!(sig[3] > 0.8, "ramp is autocorrelated");
    }

    #[test]
    fn elbow_scan_monotone() {
        let (features, _) = synth::cohort_data(100, 4, 4, 73);
        let scan = CohortAnalysis::elbow_scan(&features, 6, 1).unwrap();
        assert_eq!(scan.len(), 5);
        for w in scan.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6, "inertia must not increase with k");
        }
    }

    #[test]
    fn errors() {
        assert!(CohortAnalysis::signatures(&[]).is_err());
        let bad = vec![Matrix::zeros(10, 2), Matrix::zeros(10, 3)];
        assert!(CohortAnalysis::signatures(&bad).is_err());
        let (features, _) = synth::cohort_data(3, 2, 2, 74);
        assert!(CohortAnalysis::new(10).run(&features).is_err());
    }
}
