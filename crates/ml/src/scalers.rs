//! Feature scalers: standard, min-max and robust (paper Fig. 3 / Table II).

use coda_data::{BoxedTransformer, ComponentError, Dataset, Transformer};
use coda_linalg::stats;

/// Standardizes each feature to zero mean and unit variance.
///
/// Constant columns are left centred but unscaled (divisor 1), matching
/// scikit-learn's behaviour.
///
/// # Examples
///
/// ```
/// use coda_data::{Dataset, Transformer};
/// use coda_linalg::Matrix;
/// use coda_ml::StandardScaler;
///
/// let ds = Dataset::new(Matrix::from_rows(&[&[0.0], &[10.0]]));
/// let mut sc = StandardScaler::new();
/// let out = sc.fit_transform(&ds)?;
/// assert!((out.features()[(0, 0)] + out.features()[(1, 0)]).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    means: Option<Vec<f64>>,
    stds: Option<Vec<f64>>,
}

impl StandardScaler {
    /// Creates an unfitted standard scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fitted per-column means, if fitted.
    pub fn means(&self) -> Option<&[f64]> {
        self.means.as_deref()
    }

    /// Inverse-transforms scaled features back to the original space.
    ///
    /// # Errors
    ///
    /// [`ComponentError::NotFitted`] before fitting.
    pub fn inverse_transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (means, stds) = self.state()?;
        let mut x = data.features().clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                x[(r, c)] = x[(r, c)] * stds[c] + means[c];
            }
        }
        Ok(data.replace_features(x))
    }

    fn state(&self) -> Result<(&[f64], &[f64]), ComponentError> {
        match (&self.means, &self.stds) {
            (Some(m), Some(s)) => Ok((m, s)),
            _ => Err(ComponentError::NotFitted("standard_scaler".to_string())),
        }
    }
}

impl Transformer for StandardScaler {
    fn name(&self) -> &str {
        "standard_scaler"
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let x = data.features();
        if x.rows() == 0 {
            return Err(ComponentError::InvalidInput("empty dataset".to_string()));
        }
        let mut means = Vec::with_capacity(x.cols());
        let mut stds = Vec::with_capacity(x.cols());
        for c in 0..x.cols() {
            let col = x.col(c);
            means.push(stats::mean(&col));
            let s = stats::std_dev(&col);
            stds.push(if s == 0.0 { 1.0 } else { s });
        }
        self.means = Some(means);
        self.stds = Some(stds);
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (means, stds) = self.state()?;
        if means.len() != data.n_features() {
            return Err(ComponentError::InvalidInput(format!(
                "scaler fitted on {} features, input has {}",
                means.len(),
                data.n_features()
            )));
        }
        let mut x = data.features().clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                x[(r, c)] = (x[(r, c)] - means[c]) / stds[c];
            }
        }
        Ok(data.replace_features(x))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(StandardScaler::new())
    }
}

/// Scales each feature linearly into `[0, 1]` by the fitted min/max.
///
/// Constant columns map to `0.0`.
#[derive(Debug, Clone, Default)]
pub struct MinMaxScaler {
    mins: Option<Vec<f64>>,
    ranges: Option<Vec<f64>>,
}

impl MinMaxScaler {
    /// Creates an unfitted min-max scaler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transformer for MinMaxScaler {
    fn name(&self) -> &str {
        "minmax_scaler"
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let x = data.features();
        if x.rows() == 0 {
            return Err(ComponentError::InvalidInput("empty dataset".to_string()));
        }
        let mut mins = Vec::with_capacity(x.cols());
        let mut ranges = Vec::with_capacity(x.cols());
        for c in 0..x.cols() {
            let col = x.col(c);
            let mn = col.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            mins.push(mn);
            let r = mx - mn;
            ranges.push(if r == 0.0 { 1.0 } else { r });
        }
        self.mins = Some(mins);
        self.ranges = Some(ranges);
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (mins, ranges) = match (&self.mins, &self.ranges) {
            (Some(m), Some(r)) => (m, r),
            _ => return Err(ComponentError::NotFitted(self.name().to_string())),
        };
        if mins.len() != data.n_features() {
            return Err(ComponentError::InvalidInput(format!(
                "scaler fitted on {} features, input has {}",
                mins.len(),
                data.n_features()
            )));
        }
        let mut x = data.features().clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                x[(r, c)] = (x[(r, c)] - mins[c]) / ranges[c];
            }
        }
        Ok(data.replace_features(x))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(MinMaxScaler::new())
    }
}

/// Outlier-aware scaler: centres by the median and scales by the
/// interquartile range, so extreme values cannot distort the fit.
#[derive(Debug, Clone, Default)]
pub struct RobustScaler {
    medians: Option<Vec<f64>>,
    iqrs: Option<Vec<f64>>,
}

impl RobustScaler {
    /// Creates an unfitted robust scaler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transformer for RobustScaler {
    fn name(&self) -> &str {
        "robust_scaler"
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let x = data.features();
        if x.rows() == 0 {
            return Err(ComponentError::InvalidInput("empty dataset".to_string()));
        }
        let mut medians = Vec::with_capacity(x.cols());
        let mut iqrs = Vec::with_capacity(x.cols());
        for c in 0..x.cols() {
            let col = x.col(c);
            medians.push(stats::median(&col));
            let iqr = stats::percentile(&col, 75.0) - stats::percentile(&col, 25.0);
            iqrs.push(if iqr == 0.0 { 1.0 } else { iqr });
        }
        self.medians = Some(medians);
        self.iqrs = Some(iqrs);
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        let (medians, iqrs) = match (&self.medians, &self.iqrs) {
            (Some(m), Some(i)) => (m, i),
            _ => return Err(ComponentError::NotFitted(self.name().to_string())),
        };
        if medians.len() != data.n_features() {
            return Err(ComponentError::InvalidInput(format!(
                "scaler fitted on {} features, input has {}",
                medians.len(),
                data.n_features()
            )));
        }
        let mut x = data.features().clone();
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                x[(r, c)] = (x[(r, c)] - medians[c]) / iqrs[c];
            }
        }
        Ok(data.replace_features(x))
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(RobustScaler::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_linalg::Matrix;

    fn ds() -> Dataset {
        Dataset::new(Matrix::from_rows(&[&[1.0, 100.0], &[2.0, 200.0], &[3.0, 300.0]]))
            .with_target(vec![1.0, 2.0, 3.0])
            .unwrap()
    }

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let mut sc = StandardScaler::new();
        let out = sc.fit_transform(&ds()).unwrap();
        for c in 0..2 {
            let col = out.features().col(c);
            assert!(stats::mean(&col).abs() < 1e-12);
            assert!((stats::std_dev(&col) - 1.0).abs() < 1e-12);
        }
        // target preserved
        assert_eq!(out.target().unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn standard_scaler_inverse_roundtrip() {
        let original = ds();
        let mut sc = StandardScaler::new();
        let scaled = sc.fit_transform(&original).unwrap();
        let back = sc.inverse_transform(&scaled).unwrap();
        for r in 0..3 {
            for c in 0..2 {
                assert!((back.features()[(r, c)] - original.features()[(r, c)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn standard_scaler_constant_column() {
        let d = Dataset::new(Matrix::from_rows(&[&[5.0], &[5.0]]));
        let mut sc = StandardScaler::new();
        let out = sc.fit_transform(&d).unwrap();
        assert_eq!(out.features()[(0, 0)], 0.0);
    }

    #[test]
    fn minmax_into_unit_interval() {
        let mut sc = MinMaxScaler::new();
        let out = sc.fit_transform(&ds()).unwrap();
        for c in 0..2 {
            let col = out.features().col(c);
            assert_eq!(col.iter().cloned().fold(f64::INFINITY, f64::min), 0.0);
            assert_eq!(col.iter().cloned().fold(f64::NEG_INFINITY, f64::max), 1.0);
        }
    }

    #[test]
    fn minmax_extrapolates_outside_fit_range() {
        let mut sc = MinMaxScaler::new();
        sc.fit(&ds()).unwrap();
        let test = Dataset::new(Matrix::from_rows(&[&[5.0, 500.0]]));
        let out = sc.transform(&test).unwrap();
        assert!((out.features()[(0, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn robust_scaler_ignores_outliers() {
        // with one huge outlier, robust scaling keeps the bulk near zero
        let mut rows: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64]).collect();
        rows.push(vec![1e6]);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let d = Dataset::new(Matrix::from_rows(&refs));
        let mut sc = RobustScaler::new();
        let out = sc.fit_transform(&d).unwrap();
        // the 9 bulk points stay within a few units of 0
        for r in 0..9 {
            assert!(out.features()[(r, 0)].abs() < 2.0);
        }
        // a standard scaler would squash the bulk to ~0 offsets of each other
        let mut std = StandardScaler::new();
        let sout = std.fit_transform(&d).unwrap();
        let bulk_spread = sout.features()[(8, 0)] - sout.features()[(0, 0)];
        let robust_spread = out.features()[(8, 0)] - out.features()[(0, 0)];
        assert!(robust_spread > bulk_spread * 10.0);
    }

    #[test]
    fn not_fitted_errors() {
        let d = ds();
        assert!(StandardScaler::new().transform(&d).is_err());
        assert!(MinMaxScaler::new().transform(&d).is_err());
        assert!(RobustScaler::new().transform(&d).is_err());
        assert!(StandardScaler::new().inverse_transform(&d).is_err());
    }

    #[test]
    fn feature_count_mismatch_errors() {
        let mut sc = StandardScaler::new();
        sc.fit(&ds()).unwrap();
        let other = Dataset::new(Matrix::zeros(1, 5));
        assert!(sc.transform(&other).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        let empty = Dataset::new(Matrix::zeros(0, 2));
        assert!(StandardScaler::new().fit(&empty).is_err());
        assert!(MinMaxScaler::new().fit(&empty).is_err());
        assert!(RobustScaler::new().fit(&empty).is_err());
    }

    #[test]
    fn names_stable() {
        assert_eq!(StandardScaler::new().name(), "standard_scaler");
        assert_eq!(MinMaxScaler::new().name(), "minmax_scaler");
        assert_eq!(RobustScaler::new().name(), "robust_scaler");
    }
}
