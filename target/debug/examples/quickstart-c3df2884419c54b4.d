/root/repo/target/debug/examples/quickstart-c3df2884419c54b4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c3df2884419c54b4: examples/quickstart.rs

examples/quickstart.rs:
