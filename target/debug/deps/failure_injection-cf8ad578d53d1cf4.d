/root/repo/target/debug/deps/failure_injection-cf8ad578d53d1cf4.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-cf8ad578d53d1cf4: tests/failure_injection.rs

tests/failure_injection.rs:
