//! Request routing: the one place the shard count lives. The router is
//! nothing but [`coda_store::shard_of`] over [`ServeRequest::routing_key`]
//! — the same FNV-1a hash the [`coda_store::DataTier`] homes objects with,
//! so an object's serving shard and its home partition always agree, and
//! one shard reproduces the unsharded baseline exactly.

use crate::request::ServeRequest;
use coda_store::shard_of;

/// Stable hash router over `n_shards` partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    n_shards: usize,
}

impl ShardRouter {
    /// A router over `n_shards` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards == 0`.
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        ShardRouter { n_shards }
    }

    /// The partition count.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard owning `key` (an object id or a `dataset|pipeline` DARR
    /// routing key).
    pub fn shard_for_key(&self, key: &str) -> usize {
        shard_of(key, self.n_shards)
    }

    /// The shard a request routes to.
    pub fn route(&self, req: &ServeRequest) -> usize {
        self.shard_for_key(&req.routing_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use coda_darr::ComputationKey;

    #[test]
    fn one_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for i in 0..32 {
            assert_eq!(r.shard_for_key(&format!("obj-{i}")), 0);
        }
    }

    #[test]
    fn object_and_key_requests_route_stably() {
        let r = ShardRouter::new(8);
        let put = ServeRequest::Put { id: "obj-3".into(), data: Bytes::from_static(b"x") };
        let pull = ServeRequest::Pull { id: "obj-3".into(), client_version: None };
        assert_eq!(r.route(&put), r.route(&pull), "same object, same shard");

        let key = ComputationKey::new("ds", 1, "p4", "kfold(3)", "rmse");
        let claim = ServeRequest::Claim { key: key.clone(), client: "c".into(), duration: 10 };
        let lookup = ServeRequest::Lookup { key };
        assert_eq!(r.route(&claim), r.route(&lookup), "same key, same shard");
    }

    #[test]
    fn routing_agrees_with_the_data_tier() {
        let r = ShardRouter::new(4);
        let tier = coda_store::DataTier::new(4, 2);
        for i in 0..64 {
            let id = format!("object-{i}");
            assert_eq!(r.shard_for_key(&id), tier.home_index(&id));
        }
    }

    #[test]
    fn shards_get_reasonable_spread() {
        let r = ShardRouter::new(4);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            counts[r.shard_for_key(&format!("obj-{i}"))] += 1;
        }
        for &c in &counts {
            assert!(c > 40, "distribution too skewed: {counts:?}");
        }
    }
}
