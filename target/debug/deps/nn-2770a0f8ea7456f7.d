/root/repo/target/debug/deps/nn-2770a0f8ea7456f7.d: crates/bench/benches/nn.rs Cargo.toml

/root/repo/target/debug/deps/libnn-2770a0f8ea7456f7.rmeta: crates/bench/benches/nn.rs Cargo.toml

crates/bench/benches/nn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
