//! `coda-lint` CLI — the CI gate.
//!
//! ```text
//! cargo run -p coda-lint -- [--root <dir>] [--baseline lint-baseline.json]
//!                           [--write-baseline] [--json]
//!                           [--obs-schema OBS_SCHEMA.json]
//!                           [--write-obs-schema <file>]
//! ```
//!
//! Exit codes: `0` clean (or exactly ratcheted against the baseline),
//! `1` violations / ratchet failure / schema drift, `2` usage or I/O error.
//!
//! When the workspace root contains `OBS_SCHEMA.json` (or `--obs-schema`
//! names a file), the freshly extracted observability schema is diffed
//! against it and any drift fails the run — drift is never baselineable;
//! regenerate with `--write-obs-schema OBS_SCHEMA.json` and commit.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use coda_lint::baseline::{key_of, Baseline};
use coda_lint::{
    analyze_workspace, extract_obs_schema, findings_to_json, obs_contract, walk, Finding, ObsSchema,
};

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    json: bool,
    obs_schema: Option<PathBuf>,
    write_obs_schema: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        write_baseline: false,
        json: false,
        obs_schema: None,
        write_obs_schema: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root =
                    Some(PathBuf::from(it.next().ok_or("--root needs a directory argument")?));
            }
            "--baseline" => {
                args.baseline =
                    Some(PathBuf::from(it.next().ok_or("--baseline needs a file argument")?));
            }
            "--write-baseline" => args.write_baseline = true,
            "--json" => args.json = true,
            "--obs-schema" => {
                args.obs_schema =
                    Some(PathBuf::from(it.next().ok_or("--obs-schema needs a file argument")?));
            }
            "--write-obs-schema" => {
                args.write_obs_schema = Some(PathBuf::from(
                    it.next().ok_or("--write-obs-schema needs a file argument")?,
                ));
            }
            "--help" | "-h" => {
                println!(
                    "coda-lint: workspace invariant checker\n\n\
                     USAGE: coda-lint [--root <dir>] [--baseline <file>] [--write-baseline]\n\
                     \x20                [--json] [--obs-schema <file>] [--write-obs-schema <file>]\n\n\
                     Analyses: determinism (never baselineable), panic_safety, lock_order,\n\
                     lock_across_spawn, unordered_flow, float_reduction, obs_contract,\n\
                     obs_schema_drift (never baselineable).\n\
                     Escape hatch: `// lint:allow(<rule>) <reason>`.\n\
                     --json prints findings as a JSON array (stable field order).\n\
                     --write-obs-schema extracts the canonical observability schema."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(failed) => {
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("coda-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            walk::find_root(&cwd).ok_or("no workspace root found (pass --root)")?
        }
    };

    if let Some(out) = &args.write_obs_schema {
        let schema = extract_obs_schema(&root).map_err(|e| e.to_string())?;
        std::fs::write(out, schema.to_pretty_json()).map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({} metric(s), {} span(s), {} event(s))",
            out.display(),
            schema.metrics.len(),
            schema.spans.len(),
            schema.events.len()
        );
        return Ok(false);
    }

    let mut findings = analyze_workspace(&root).map_err(|e| e.to_string())?;

    // schema drift: diff the fresh extraction against the committed schema
    let committed_path = args
        .obs_schema
        .clone()
        .or_else(|| Some(root.join("OBS_SCHEMA.json")).filter(|p| p.exists()));
    if let Some(path) = committed_path {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let committed = ObsSchema::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let current = extract_obs_schema(&root).map_err(|e| e.to_string())?;
        findings.extend(obs_contract::drift(&committed, &current));
        findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    let (hard, soft): (Vec<&Finding>, Vec<&Finding>) =
        findings.iter().partition(|f| !f.rule.is_baselineable());

    if !args.json {
        for f in &hard {
            println!("{f}  [not baselineable]");
        }
    }

    if args.write_baseline {
        let path = args.baseline.unwrap_or_else(|| root.join("lint-baseline.json"));
        let base = Baseline::from_findings(&findings);
        let frozen: u64 = base.entries.values().sum();
        base.save(&path)?;
        println!(
            "wrote {} ({} finding(s) across {} file/rule entries frozen)",
            path.display(),
            frozen,
            base.entries.len()
        );
        print_summary(&findings);
        return Ok(!hard.is_empty());
    }

    let Some(baseline_path) = args.baseline else {
        if args.json {
            println!("{}", findings_to_json(&findings));
        } else {
            for f in &soft {
                println!("{f}");
            }
            print_summary(&findings);
        }
        return Ok(!findings.is_empty());
    };

    let base = Baseline::load(&baseline_path)?;
    let check = base.check(&findings);
    if args.json {
        // against a baseline, report only what fails the gate: hard
        // findings plus soft findings in grown file/rule buckets
        let failing: Vec<Finding> = findings
            .iter()
            .filter(|f| !f.rule.is_baselineable() || check.grown.contains_key(&key_of(f)))
            .cloned()
            .collect();
        println!("{}", findings_to_json(&failing));
        return Ok(!check.is_clean() || !hard.is_empty());
    }
    for (key, (frozen, current)) in &check.grown {
        println!("NEW: {key}: {current} violation(s), baseline froze {frozen}:");
        for f in soft.iter().filter(|f| key_of(f) == *key) {
            println!("  {f}");
        }
    }
    for (key, (frozen, current)) in &check.stale {
        println!(
            "STALE: {key}: baseline froze {frozen} but only {current} remain — the ratchet \
             only shrinks; run `cargo run -p coda-lint -- --write-baseline` and commit"
        );
    }
    let failed = !check.is_clean() || !hard.is_empty();
    if failed {
        print_summary(&findings);
    } else {
        let frozen: u64 = base.entries.values().sum();
        println!(
            "coda-lint: clean — 0 new violations ({frozen} frozen in {})",
            baseline_path.display()
        );
    }
    Ok(failed)
}

fn print_summary(findings: &[Finding]) {
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.rule.as_str()).or_insert(0) += 1;
    }
    let total: usize = by_rule.values().sum();
    let detail: Vec<String> = by_rule.iter().map(|(r, n)| format!("{r}: {n}")).collect();
    println!("coda-lint: {total} finding(s) [{}]", detail.join(", "));
}
