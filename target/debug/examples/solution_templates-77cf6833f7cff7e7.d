/root/repo/target/debug/examples/solution_templates-77cf6833f7cff7e7.d: examples/solution_templates.rs

/root/repo/target/debug/examples/solution_templates-77cf6833f7cff7e7: examples/solution_templates.rs

examples/solution_templates.rs:
