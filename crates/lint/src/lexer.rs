//! A minimal Rust lexer producing the token stream the analyses walk.
//!
//! The build environment vendors no `syn`, so `coda-lint` works over a
//! hand-rolled lexer instead of a full AST. It understands exactly what the
//! analyses need to be sound at the token level: identifiers, single-char
//! punctuation, all literal forms that could otherwise be misread as code
//! (strings, raw strings, byte strings, char literals vs. lifetimes,
//! numbers), and comments — which are kept, because `// lint:allow(...)`
//! escape hatches live in them.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `self`, `lock`, ...).
    Ident,
    /// One punctuation character (`.`, `:`, `{`, ...).
    Punct,
    /// Char/number literal, opaque to the analyses.
    Literal,
    /// String literal (plain, raw, or byte); `text` is the *content* with
    /// common escapes resolved, so the observability-contract analysis can
    /// read metric and span names straight off the token stream.
    Str,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for puncts, the single character).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// String-literal content, if this is a string literal.
    pub fn as_str_lit(&self) -> Option<&str> {
        (self.kind == TokKind::Str).then_some(self.text.as_str())
    }
}

/// One comment (line or block) with the line it starts on.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based starting line.
    pub line: u32,
    /// Comment text without the `//` / `/* */` delimiters.
    pub text: String,
}

/// The lexer output: code tokens plus the comments stripped from them.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source text. Unknown bytes are skipped rather than rejected:
/// the lexer is a best-effort front end for heuristisc analyses, not a
/// conformance checker.
pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line);
            } else if c == '"' {
                self.string_literal(line);
            } else if c == '\'' {
                self.quote(line);
            } else if c.is_ascii_digit() {
                self.number(line);
            } else if c.is_alphabetic() || c == '_' {
                self.ident_or_prefixed_literal(line);
            } else {
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// Plain (escaped) string starting at the opening `"`. Content is kept,
    /// with the common escapes resolved; unknown escapes stay verbatim.
    fn string_literal(&mut self, line: u32) {
        self.bump();
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    if let Some(e) = self.bump() {
                        match e {
                            'n' => content.push('\n'),
                            't' => content.push('\t'),
                            'r' => content.push('\r'),
                            '0' => content.push('\0'),
                            '\\' | '"' | '\'' => content.push(e),
                            other => {
                                content.push('\\');
                                content.push(other);
                            }
                        }
                    }
                }
                '"' => break,
                _ => content.push(c),
            }
        }
        self.push(TokKind::Str, content, line);
    }

    /// Raw string starting at `r`/`br` with `hashes` pound signs consumed
    /// up to and including the opening `"`. Content is kept verbatim.
    fn raw_string_body(&mut self, hashes: usize, line: u32) {
        let mut content = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    matched += 1;
                    self.bump();
                }
                if matched == hashes {
                    break;
                }
                content.push('"');
                for _ in 0..matched {
                    content.push('#');
                }
            } else {
                content.push(c);
            }
        }
        self.push(TokKind::Str, content, line);
    }

    /// `'` starts either a lifetime/label or a char literal.
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && after != Some('\'');
        if is_lifetime {
            self.bump();
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.out.tokens.push(Tok { kind: TokKind::Lifetime, text, line });
        } else {
            self.bump();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokKind::Literal, "'.'".to_string(), line);
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                // decimal point only when a digit follows, so `1.max(2)`
                // and `0.lock()` keep their method-call dots
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-') && matches!(text.chars().last(), Some('e' | 'E')) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Literal, text, line);
    }

    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // string-literal prefixes: r"", r#""#, b"", br"", br#""#
        match (text.as_str(), self.peek(0)) {
            ("r" | "br" | "rb", Some('"')) => {
                self.bump();
                self.raw_string_body(0, line);
                return;
            }
            ("r" | "br" | "rb", Some('#')) => {
                // raw string r#".."# — or a raw identifier r#ident
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    self.raw_string_body(hashes, line);
                    return;
                }
                if text == "r" && hashes == 1 {
                    // raw identifier: token is the identifier itself
                    self.bump();
                    let mut ident = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            ident.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident, ident, line);
                    return;
                }
            }
            ("b", Some('"')) => {
                self.string_literal(line);
                return;
            }
            ("b", Some('\'')) => {
                self.quote(line);
                return;
            }
            _ => {}
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let lexed = lex(r##"
            // Instant::now in a comment
            /* and .unwrap() in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"also .lock() here"#;
            real_ident();
        "##);
        let names: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Ident).map(|t| &t.text).collect();
        assert!(names.contains(&&"real_ident".to_string()));
        assert!(!names.iter().any(|n| *n == "Instant" || *n == "unwrap" || *n == "lock"));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("Instant::now"));
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; }");
        let lifetimes: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let literals = lexed.tokens.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(literals, 2, "two char literals");
    }

    #[test]
    fn numbers_keep_method_call_dots() {
        let lexed = lex("let a = 1.5e-3; let b = 2.max(3); h.observe(0.5);");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("max")));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Literal && t.text == "1.5e-3"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Literal && t.text == "0.5"));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn string_content_is_preserved_with_escapes() {
        let lexed = lex(r#"let n = "coda_core_cache_hits"; let e = "a\"b\n";"#);
        let strs: Vec<_> = lexed.tokens.iter().filter_map(|t| t.as_str_lit()).collect();
        assert_eq!(strs, vec!["coda_core_cache_hits", "a\"b\n"]);
    }

    #[test]
    fn raw_string_content_is_preserved_verbatim() {
        // backslashes stay literal in raw strings
        let lexed = lex(r###"let a = r"x\ny"; let b = r#"with "quotes""#; tail();"###);
        let strs: Vec<_> = lexed.tokens.iter().filter_map(|t| t.as_str_lit()).collect();
        assert_eq!(strs, vec![r"x\ny", r#"with "quotes""#]);
        // a `"#` inside needs ≥2 hashes to close; a mis-lex would swallow
        // the rest of the file
        let lexed = lex(r####"let b = r##"has "# inside"##; after();"####);
        let strs: Vec<_> = lexed.tokens.iter().filter_map(|t| t.as_str_lit()).collect();
        assert_eq!(strs, vec![r##"has "# inside"##]);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn byte_strings_lex_as_strings() {
        let lexed = lex(r#"let b = b"bytes"; let rb = br"raw"; x();"#);
        let strs: Vec<_> = lexed.tokens.iter().filter_map(|t| t.as_str_lit()).collect();
        assert_eq!(strs, vec!["bytes", "raw"]);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn deeply_nested_block_comments_terminate() {
        let lexed = lex("/* 1 /* 2 /* 3 */ 2 */ 1 */ visible();");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("visible")));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("3"));
    }

    #[test]
    fn loop_labels_and_generic_lifetimes_are_not_chars() {
        let lexed = lex("'outer: for x in v { break 'outer; } fn g<'b>(s: &'b str) {}");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'outer", "'outer", "'b", "'b"]);
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokKind::Literal));
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
