/root/repo/target/debug/deps/coda_bench-6d0550573175842b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_bench-6d0550573175842b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
