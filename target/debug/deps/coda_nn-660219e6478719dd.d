/root/repo/target/debug/deps/coda_nn-660219e6478719dd.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/estimators.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/network.rs crates/nn/src/optim.rs crates/nn/src/residual.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_nn-660219e6478719dd.rmeta: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/estimators.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/network.rs crates/nn/src/optim.rs crates/nn/src/residual.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/estimators.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/network.rs:
crates/nn/src/optim.rs:
crates/nn/src/residual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
