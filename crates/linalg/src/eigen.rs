//! Symmetric eigendecomposition via the cyclic Jacobi method.

use crate::matrix::{Matrix, MatrixError};

/// Result of a symmetric eigendecomposition.
///
/// Eigenpairs are sorted by descending eigenvalue; `vectors` holds the
/// eigenvectors as **columns** (so `vectors.col(i)` pairs with `values[i]`).
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, same order as `values`.
    pub vectors: Matrix,
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// # Errors
///
/// [`MatrixError::ShapeMismatch`] if `a` is not square.
///
/// # Examples
///
/// ```
/// use coda_linalg::{symmetric_eigen, Matrix};
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]]);
/// let e = symmetric_eigen(&a).unwrap();
/// assert!((e.values[0] - 2.0).abs() < 1e-10);
/// assert!((e.values[1] - 1.0).abs() < 1e-10);
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<Eigen, MatrixError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MatrixError::ShapeMismatch { left: a.shape(), right: a.shape() });
    }
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        // off-diagonal magnitude
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // rotate rows/cols p,q of m
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    idx.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_c, &old_c) in idx.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_c)] = v[(r, old_c)];
        }
    }
    Ok(Eigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // eigenvector for 3 is (1,1)/sqrt(2) up to sign
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        // A = V diag(w) Vᵀ
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = e.values[i];
        }
        let rec = e.vectors.matmul(&d).unwrap().matmul(&e.vectors.transpose()).unwrap();
        assert!((&rec - &a).frobenius_norm() < 1e-8);
    }

    #[test]
    fn vectors_orthonormal() {
        let a = Matrix::from_rows(&[&[5.0, 2.0], &[2.0, 1.0]]);
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!((&vtv - &Matrix::identity(2)).frobenius_norm() < 1e-8);
    }

    #[test]
    fn rejects_nonsquare() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
    }
}
