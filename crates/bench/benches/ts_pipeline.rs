//! T2/F11 bench: time-series pipeline stages — windowing transformer
//! throughput and statistical/deep model fits on windowed data.

use coda_data::{synth, Transformer};
use coda_timeseries::{
    ArForecaster, CascadedWindows, DnnForecaster, SeriesData, TsAsIs, WindowConfig, ZeroModel,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_windowing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ts/windowing");
    for &n in &[500usize, 2000] {
        let series = SeriesData::new(synth::multivariate_sensors(n, 4, 1), 0);
        let ds = series.to_dataset();
        group.bench_with_input(BenchmarkId::new("cascaded", n), &ds, |b, ds| {
            b.iter(|| CascadedWindows::new(WindowConfig::new(24, 1)).fit_transform(ds).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ts_as_is", n), &ds, |b, ds| {
            b.iter(|| TsAsIs::new(WindowConfig::new(24, 1)).fit_transform(ds).unwrap())
        });
    }
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    use coda_data::Estimator;
    let series = SeriesData::univariate(synth::ar2_series(800, 0.5, 0.2, 1.0, 2));
    let lags = TsAsIs::new(WindowConfig::new(8, 1)).fit_transform(&series.to_dataset()).unwrap();
    let mut group = c.benchmark_group("ts/model_fit");
    group.bench_function("zero", |b| {
        b.iter(|| {
            let mut m = ZeroModel::new();
            m.fit(&lags).unwrap();
            m.predict(&lags).unwrap()
        })
    });
    group.bench_function("ar8", |b| {
        b.iter(|| {
            let mut m = ArForecaster::new();
            m.fit(&lags).unwrap();
            m.predict(&lags).unwrap()
        })
    });
    group.sample_size(10);
    group.bench_function("dnn_simple_10epochs", |b| {
        b.iter(|| {
            let mut m = DnnForecaster::simple(8).with_epochs(10);
            m.fit(&lags).unwrap();
            m.predict(&lags).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_windowing, bench_models);
criterion_main!(benches);
