//! Model validation and selection (paper §IV-B, Fig. 4): evaluate every
//! pipeline of a graph under a cross-validation strategy and scoring metric,
//! pick the best path, optionally expanding a parameter grid, running paths
//! in parallel across threads, and reusing shared transformer prefixes
//! through a [`TransformCache`].

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use coda_data::cv::{CvError, Split};
use coda_data::metrics::MetricError;
use coda_data::{ComponentError, CvStrategy, Dataset, Metric, Params};
use coda_obs::{labeled_name, Histogram, HistogramSnapshot, Obs, DEFAULT_MS_BOUNDS};

use crate::cache::{CacheStats, TransformCache};
use crate::graph::{GraphError, Teg};
use crate::grid::restrict_params;
use crate::node::Component;
use crate::pipeline::{Pipeline, PipelineSpec};

/// Error produced by pipeline/graph evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The cross-validation strategy cannot split this dataset.
    Cv(CvError),
    /// A component failed during fit/predict.
    Component(ComponentError),
    /// Metric computation failed.
    Metric(MetricError),
    /// Graph is malformed.
    Graph(GraphError),
    /// No pipeline could be evaluated successfully.
    NothingEvaluated,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Cv(e) => write!(f, "cross-validation error: {e}"),
            EvalError::Component(e) => write!(f, "component error: {e}"),
            EvalError::Metric(e) => write!(f, "metric error: {e}"),
            EvalError::Graph(e) => write!(f, "graph error: {e}"),
            EvalError::NothingEvaluated => write!(f, "no pipeline evaluated successfully"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<CvError> for EvalError {
    fn from(e: CvError) -> Self {
        EvalError::Cv(e)
    }
}

impl From<ComponentError> for EvalError {
    fn from(e: ComponentError) -> Self {
        EvalError::Component(e)
    }
}

impl From<MetricError> for EvalError {
    fn from(e: MetricError) -> Self {
        EvalError::Metric(e)
    }
}

impl From<GraphError> for EvalError {
    fn from(e: GraphError) -> Self {
        EvalError::Graph(e)
    }
}

/// One evaluated pipeline: its spec, per-fold scores, and their mean.
#[derive(Debug, Clone)]
pub struct PathResult {
    /// Canonical pipeline spec (steps + params).
    pub spec: PipelineSpec,
    /// Score per cross-validation split (the "K performance estimates").
    pub fold_scores: Vec<f64>,
    /// Mean of the fold scores — the final performance estimate.
    pub mean_score: f64,
    /// Error message if the pipeline failed on any fold (scores then empty).
    pub error: Option<String>,
}

impl PathResult {
    /// True if the pipeline evaluated on every fold.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Timing accounting for one graph evaluation, present when the evaluator
/// runs with [`Evaluator::with_obs`] (timestamps come from the obs clock,
/// so a [`ManualClock`](coda_obs::ManualClock) keeps it deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalTiming {
    /// Wall-clock milliseconds for the whole evaluation.
    pub wall_ms: f64,
    /// Histogram of per-path evaluation times (milliseconds).
    pub path_ms: HistogramSnapshot,
}

/// Report over all evaluated paths of a graph, ranked by the metric.
#[derive(Debug, Clone)]
pub struct GraphReport {
    /// The metric used for ranking.
    pub metric: Metric,
    /// All path results (successful and failed), in ranked order:
    /// successful paths best-first, then failures.
    pub results: Vec<PathResult>,
    /// Prefix-cache accounting when the evaluation ran with
    /// [`Evaluator::with_prefix_cache`]; `None` for uncached runs. The
    /// `results` themselves are bit-identical either way.
    pub cache: Option<CacheStats>,
    /// Timing histograms when the evaluation ran with
    /// [`Evaluator::with_obs`]; `None` otherwise. Purely observational —
    /// never feeds back into results or ranking.
    pub timing: Option<EvalTiming>,
}

impl GraphReport {
    /// The best successful path, if any.
    pub fn best(&self) -> Option<&PathResult> {
        self.results.iter().find(|r| r.is_ok())
    }

    /// Count of successfully evaluated paths.
    pub fn n_ok(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// Count of failed paths.
    pub fn n_failed(&self) -> usize {
        self.results.len() - self.n_ok()
    }
}

impl fmt::Display for GraphReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "GraphReport ({} paths, metric {}):", self.results.len(), self.metric)?;
        for r in &self.results {
            match &r.error {
                None => writeln!(f, "  {:>12.6}  {}", r.mean_score, r.spec.key())?,
                Some(e) => writeln!(f, "  {:>12}  {} [{e}]", "failed", r.spec.key())?,
            }
        }
        if let Some(stats) = &self.cache {
            writeln!(f, "  prefix cache: {stats}")?;
        }
        if let Some(t) = &self.timing {
            writeln!(
                f,
                "  timing: {:.1} ms total, {:.1} ms mean/path over {} paths",
                t.wall_ms,
                t.path_ms.mean(),
                t.path_ms.count
            )?;
        }
        Ok(())
    }
}

/// Evaluates pipelines/graphs under a CV strategy and metric (Listing 2's
/// `set_cross_validation` / `set_accuracy`).
#[derive(Debug, Clone)]
pub struct Evaluator {
    cv: CvStrategy,
    metric: Metric,
    n_threads: usize,
    use_cache: bool,
    obs: Option<Obs>,
}

impl Evaluator {
    /// Creates an evaluator. Defaults to single-threaded, uncached,
    /// uninstrumented evaluation.
    pub fn new(cv: CvStrategy, metric: Metric) -> Self {
        Evaluator { cv, metric, n_threads: 1, use_cache: false, obs: None }
    }

    /// Attaches an observability handle: per-pipeline (`eval.path`) and
    /// per-fold (`eval.fold`) spans, `coda_core_*` registry metrics, and
    /// timing histograms on [`GraphReport::timing`]. Observational only:
    /// results stay bit-identical to an uninstrumented run.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Enables parallel path evaluation over `n` worker threads — the
    /// paper's "different predictive models can be run in parallel" (§III).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "thread count must be positive");
        self.n_threads = n;
        self
    }

    /// Enables (or disables) the shared-prefix [`TransformCache`]: each
    /// distinct transformer prefix is fitted once per fold and reused by
    /// every path sharing it. Results are bit-identical to an uncached run
    /// (transformers are deterministic); the accounting lands on
    /// [`GraphReport::cache`].
    pub fn with_prefix_cache(mut self, enabled: bool) -> Self {
        self.use_cache = enabled;
        self
    }

    /// True when shared-prefix caching is enabled.
    pub fn prefix_cache_enabled(&self) -> bool {
        self.use_cache
    }

    /// The configured metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The configured CV strategy.
    pub fn cv(&self) -> &CvStrategy {
        &self.cv
    }

    /// Cross-validates one pipeline, returning per-fold scores.
    ///
    /// For a K-fold strategy this trains K models and produces K performance
    /// estimates whose mean is the final estimate (Fig. 4).
    ///
    /// # Errors
    ///
    /// Any [`EvalError`] variant.
    pub fn evaluate_pipeline(
        &self,
        pipeline: &Pipeline,
        data: &Dataset,
    ) -> Result<Vec<f64>, EvalError> {
        let splits = self.cv.splits_for(data)?;
        let mut scores = Vec::with_capacity(splits.len());
        for (fold, split) in splits.iter().enumerate() {
            let _span = self
                .obs
                .as_ref()
                .map(|o| o.span("eval.fold", &[("fold", &fold.to_string() as &str)]));
            if let Some(obs) = &self.obs {
                obs.count("coda_core_eval_folds", 1);
            }
            let train = data.select(&split.train);
            let validation = data.select(&split.validation);
            let mut fold_pipeline = pipeline.fresh_clone();
            fold_pipeline.fit(&train)?;
            let pred = fold_pipeline.predict(&validation)?;
            let truth = validation.target_required().map_err(ComponentError::from)?;
            scores.push(self.metric.compute(truth, &pred)?);
        }
        Ok(scores)
    }

    /// Evaluates one pipeline and returns its mean score.
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate_pipeline`].
    pub fn score_pipeline(&self, pipeline: &Pipeline, data: &Dataset) -> Result<f64, EvalError> {
        let scores = self.evaluate_pipeline(pipeline, data)?;
        Ok(scores.iter().sum::<f64>() / scores.len() as f64)
    }

    /// Evaluates every root→leaf path of `graph` on `data`, returning the
    /// ranked [`GraphReport`]. Individual path failures are recorded, not
    /// fatal.
    ///
    /// # Errors
    ///
    /// [`EvalError::Graph`] if the graph itself is malformed;
    /// [`EvalError::NothingEvaluated`] if every path failed.
    pub fn evaluate_graph(&self, graph: &Teg, data: &Dataset) -> Result<GraphReport, EvalError> {
        let pipelines = graph.enumerate_pipelines()?;
        let jobs: Vec<(Pipeline, Params)> =
            pipelines.into_iter().map(|p| (p, Params::new())).collect();
        self.evaluate_jobs(jobs, data)
    }

    /// Evaluates every path of `graph` × every parameter assignment in
    /// `grid` (qualified `node__param` keys; assignments that reference
    /// nodes absent from a path apply vacuously and are deduplicated).
    ///
    /// # Errors
    ///
    /// As for [`Evaluator::evaluate_graph`].
    pub fn evaluate_graph_with_grid(
        &self,
        graph: &Teg,
        data: &Dataset,
        grid: &crate::grid::ParamGrid,
    ) -> Result<GraphReport, EvalError> {
        let pipelines = graph.enumerate_pipelines()?;
        let assignments = grid.expand();
        let mut jobs = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for pipeline in &pipelines {
            let names: BTreeSet<&str> = pipeline.node_names().into_iter().collect();
            for params in &assignments {
                // restrict to the params that touch this path; the spec key
                // includes the step names, so paths with disjoint param
                // namespaces can never collide in `seen`
                let relevant = restrict_params(params, &names);
                let spec = pipeline.spec().with_params(&relevant);
                if seen.insert(spec.key()) {
                    jobs.push((pipeline.fresh_clone(), relevant));
                }
            }
        }
        self.evaluate_jobs(jobs, data)
    }

    /// Opens the per-evaluation observation scope: a graph span, a local
    /// per-path timing histogram, and the evaluation's start time.
    fn obs_scope(&self, n_jobs: usize) -> Option<(coda_obs::SpanGuard<'_>, Histogram, f64)> {
        self.obs.as_ref().map(|o| {
            let span = o.span("eval.graph", &[("paths", &n_jobs.to_string() as &str)]);
            (span, Histogram::new(DEFAULT_MS_BOUNDS), o.now_ms())
        })
    }

    /// Closes the observation scope: folds the local path histogram into
    /// the registry, bumps graph/path counters, and returns the report's
    /// [`EvalTiming`].
    fn obs_finish(
        &self,
        scope: Option<(coda_obs::SpanGuard<'_>, Histogram, f64)>,
        n_jobs: usize,
    ) -> Option<EvalTiming> {
        let (span, hist, start) = scope?;
        drop(span);
        let obs = self.obs.as_ref()?;
        let path_ms = hist.snapshot();
        obs.registry().histogram("coda_core_eval_path_ms", DEFAULT_MS_BOUNDS).merge(&path_ms);
        obs.count("coda_core_eval_graphs", 1);
        obs.count("coda_core_eval_paths", n_jobs as u64);
        Some(EvalTiming { wall_ms: obs.now_ms() - start, path_ms })
    }

    /// [`Evaluator::run_job`] under the observation scope: an `eval.path`
    /// span keyed by the resolved spec, timed into `hist`. The span links
    /// explicitly to the enclosing `eval.graph` context so paths running
    /// on worker threads still land in the graph's trace tree.
    fn run_job_traced(
        &self,
        pipeline: Pipeline,
        params: &Params,
        data: &Dataset,
        hist: Option<&Histogram>,
        parent: Option<coda_obs::SpanContext>,
    ) -> PathResult {
        let Some(obs) = &self.obs else {
            return self.run_job(pipeline, params, data);
        };
        let key = pipeline.spec().with_params(params).key();
        let span = obs.tracer().span_with_parent(parent, "eval.path", &[("spec", &key as &str)]);
        let start = obs.now_ms();
        let result = self.run_job(pipeline, params, data);
        Self::finish_path_obs(obs, &span, hist, start, result.is_ok(), &key);
        result
    }

    /// [`Evaluator::run_job_cached`] under the observation scope.
    #[allow(clippy::too_many_arguments)]
    fn run_job_cached_traced(
        &self,
        pipeline: Pipeline,
        params: &Params,
        data: &Dataset,
        splits: &Result<Vec<Split>, CvError>,
        cache: &TransformCache,
        hist: Option<&Histogram>,
        parent: Option<coda_obs::SpanContext>,
    ) -> PathResult {
        let Some(obs) = &self.obs else {
            return self.run_job_cached(pipeline, params, data, splits, cache);
        };
        let key = pipeline.spec().with_params(params).key();
        let span = obs.tracer().span_with_parent(parent, "eval.path", &[("spec", &key as &str)]);
        let start = obs.now_ms();
        let result = self.run_job_cached(pipeline, params, data, splits, cache);
        Self::finish_path_obs(obs, &span, hist, start, result.is_ok(), &key);
        result
    }

    /// Shared tail of a traced path run: outcome counters for the SLO
    /// plane (`coda_core_eval_paths_ok` / `coda_core_eval_path_errors`),
    /// the latency observation — into the local fold histogram and into a
    /// per-spec labeled series so diagnosis can name the slow path — and,
    /// when the exemplar store is armed, an exemplar offer linking the
    /// observation back to its `eval.path` span so slow paths surface in
    /// cost profiles with a trace attached.
    fn finish_path_obs(
        obs: &coda_obs::Obs,
        span: &coda_obs::SpanGuard<'_>,
        hist: Option<&Histogram>,
        start: f64,
        ok: bool,
        spec_key: &str,
    ) {
        obs.count(if ok { "coda_core_eval_paths_ok" } else { "coda_core_eval_path_errors" }, 1);
        let elapsed = obs.now_ms() - start;
        if let Some(h) = hist {
            h.observe(elapsed);
        }
        obs.registry()
            .histogram(&labeled_name("coda_core_eval_path_ms", "spec", spec_key), DEFAULT_MS_BOUNDS)
            .observe(elapsed);
        obs.exemplars().offer(
            "coda_core_eval_path_ms",
            elapsed,
            Some(span.context()),
            obs.now_ms(),
        );
    }

    /// Core evaluation over (pipeline, params) jobs, parallel if configured
    /// and prefix-cached if enabled.
    fn evaluate_jobs(
        &self,
        jobs: Vec<(Pipeline, Params)>,
        data: &Dataset,
    ) -> Result<GraphReport, EvalError> {
        if self.use_cache {
            return self.evaluate_jobs_cached(jobs, data);
        }
        let n_jobs = jobs.len();
        let scope = self.obs_scope(n_jobs);
        let hist = scope.as_ref().map(|(_, h, _)| h);
        let graph_ctx = scope.as_ref().map(|(s, _, _)| s.context());
        let results: Vec<PathResult> = if self.n_threads <= 1 || jobs.len() <= 1 {
            jobs.into_iter()
                .map(|(p, params)| self.run_job_traced(p, &params, data, hist, graph_ctx))
                .collect()
        } else {
            let counter = AtomicUsize::new(0);
            let out: Mutex<Vec<(usize, PathResult)>> = Mutex::new(Vec::new());
            let jobs_ref = &jobs;
            let counter_ref = &counter;
            let out_ref = &out;
            std::thread::scope(|scope| {
                for _ in 0..self.n_threads.min(jobs_ref.len()) {
                    scope.spawn(move || loop {
                        let i = counter_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs_ref.len() {
                            break;
                        }
                        let (pipeline, params) = &jobs_ref[i];
                        let result = self.run_job_traced(
                            pipeline.fresh_clone(),
                            params,
                            data,
                            hist,
                            graph_ctx,
                        );
                        out_ref
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push((i, result));
                    });
                }
            });
            let mut collected = out.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
            collected.sort_by_key(|(i, _)| *i);
            collected.into_iter().map(|(_, r)| r).collect()
        };
        let timing = self.obs_finish(scope, n_jobs);
        self.rank(results, None, timing)
    }

    /// Cached evaluation: splits are computed once, jobs are dispatched
    /// grouped by shared transformer prefix (so reuse lands early), results
    /// are restored to enumeration order before ranking — keeping reports
    /// bit-identical to the uncached path, tie order included.
    fn evaluate_jobs_cached(
        &self,
        jobs: Vec<(Pipeline, Params)>,
        data: &Dataset,
    ) -> Result<GraphReport, EvalError> {
        let splits = self.cv.splits_for(data);
        // prefix-aware planning: stable order by full transformer-prefix
        // key, original index as tiebreak, so jobs sharing a prefix are
        // adjacent in dispatch order
        let plan_keys: Vec<String> = jobs
            .iter()
            .map(|(pipeline, params)| {
                let steps: Vec<String> = pipeline
                    .nodes()
                    .iter()
                    .filter(|n| !n.component().is_estimator())
                    .map(|n| n.name().to_string())
                    .collect();
                prefix_cache_key(&steps, params)
            })
            .collect();
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| plan_keys[a].cmp(&plan_keys[b]).then(a.cmp(&b)));
        let cache = TransformCache::new();
        let n_jobs = jobs.len();
        let scope_obs = self.obs_scope(n_jobs);
        let hist = scope_obs.as_ref().map(|(_, h, _)| h);
        let graph_ctx = scope_obs.as_ref().map(|(s, _, _)| s.context());
        let mut indexed: Vec<(usize, PathResult)> = if self.n_threads <= 1 || jobs.len() <= 1 {
            order
                .iter()
                .map(|&i| {
                    let (pipeline, params) = &jobs[i];
                    (
                        i,
                        self.run_job_cached_traced(
                            pipeline.fresh_clone(),
                            params,
                            data,
                            &splits,
                            &cache,
                            hist,
                            graph_ctx,
                        ),
                    )
                })
                .collect()
        } else {
            let counter = AtomicUsize::new(0);
            let out: Mutex<Vec<(usize, PathResult)>> = Mutex::new(Vec::new());
            let (jobs_ref, order_ref, splits_ref, cache_ref) = (&jobs, &order, &splits, &cache);
            let counter_ref = &counter;
            let out_ref = &out;
            std::thread::scope(|scope| {
                for _ in 0..self.n_threads.min(jobs_ref.len()) {
                    scope.spawn(move || loop {
                        let pos = counter_ref.fetch_add(1, Ordering::Relaxed);
                        if pos >= order_ref.len() {
                            break;
                        }
                        let i = order_ref[pos];
                        let (pipeline, params) = &jobs_ref[i];
                        let result = self.run_job_cached_traced(
                            pipeline.fresh_clone(),
                            params,
                            data,
                            splits_ref,
                            cache_ref,
                            hist,
                            graph_ctx,
                        );
                        out_ref
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push((i, result));
                    });
                }
            });
            out.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
        };
        indexed.sort_by_key(|(i, _)| *i);
        let results = indexed.into_iter().map(|(_, r)| r).collect();
        let timing = self.obs_finish(scope_obs, n_jobs);
        self.rank(results, Some(cache.stats()), timing)
    }

    /// Ranks results (successes best-first by the metric, then failures)
    /// and assembles the report.
    fn rank(
        &self,
        results: Vec<PathResult>,
        cache: Option<CacheStats>,
        timing: Option<EvalTiming>,
    ) -> Result<GraphReport, EvalError> {
        if let (Some(obs), Some(stats)) = (&self.obs, &cache) {
            obs.publish(stats);
        }
        if results.iter().all(|r| !r.is_ok()) {
            return Err(EvalError::NothingEvaluated);
        }
        let mut ranked = results;
        let metric = self.metric;
        ranked.sort_by(|a, b| match (a.is_ok(), b.is_ok()) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => std::cmp::Ordering::Equal,
            (true, true) => {
                if metric.is_better(a.mean_score, b.mean_score) {
                    std::cmp::Ordering::Less
                } else if metric.is_better(b.mean_score, a.mean_score) {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            }
        });
        Ok(GraphReport { metric, results: ranked, cache, timing })
    }

    fn run_job(&self, mut pipeline: Pipeline, params: &Params, data: &Dataset) -> PathResult {
        let spec = pipeline.spec().with_params(params);
        if let Err(e) = pipeline.apply_matching_params(params) {
            return PathResult {
                spec,
                fold_scores: Vec::new(),
                mean_score: self.metric.worst(),
                error: Some(e.to_string()),
            };
        }
        match self.evaluate_pipeline(&pipeline, data) {
            Ok(fold_scores) => {
                let mean_score = fold_scores.iter().sum::<f64>() / fold_scores.len().max(1) as f64;
                PathResult { spec, fold_scores, mean_score, error: None }
            }
            Err(e) => PathResult {
                spec,
                fold_scores: Vec::new(),
                mean_score: self.metric.worst(),
                error: Some(e.to_string()),
            },
        }
    }

    /// The cached counterpart of [`Evaluator::run_job`]: identical
    /// semantics and error strings, but every transformer-prefix fit goes
    /// through the shared [`TransformCache`].
    fn run_job_cached(
        &self,
        mut pipeline: Pipeline,
        params: &Params,
        data: &Dataset,
        splits: &Result<Vec<Split>, CvError>,
        cache: &TransformCache,
    ) -> PathResult {
        let spec = pipeline.spec().with_params(params);
        let failed = |error: String| PathResult {
            spec: spec.clone(),
            fold_scores: Vec::new(),
            mean_score: self.metric.worst(),
            error: Some(error),
        };
        if let Err(e) = pipeline.apply_matching_params(params) {
            return failed(e.to_string());
        }
        let splits = match splits {
            Ok(s) => s,
            Err(e) => return failed(EvalError::Cv(e.clone()).to_string()),
        };
        let mut fold_scores = Vec::with_capacity(splits.len());
        for (fold, split) in splits.iter().enumerate() {
            match self.score_fold_cached(&pipeline, params, data, fold, split, cache) {
                Ok(score) => fold_scores.push(score),
                Err(e) => return failed(e.to_string()),
            }
        }
        let mean_score = fold_scores.iter().sum::<f64>() / fold_scores.len().max(1) as f64;
        PathResult { spec, fold_scores, mean_score, error: None }
    }

    /// Scores one pipeline on one fold, reusing cached prefix outputs. The
    /// node walk, validity checks and error messages mirror
    /// [`Pipeline::fit`]/[`Pipeline::predict`] exactly so a cached run is
    /// indistinguishable from an uncached one.
    fn score_fold_cached(
        &self,
        pipeline: &Pipeline,
        params: &Params,
        data: &Dataset,
        fold: usize,
        split: &Split,
        cache: &TransformCache,
    ) -> Result<f64, EvalError> {
        let _span =
            self.obs.as_ref().map(|o| o.span("eval.fold", &[("fold", &fold.to_string() as &str)]));
        if let Some(obs) = &self.obs {
            obs.count("coda_core_eval_folds", 1);
        }
        let nodes = pipeline.nodes();
        if nodes.is_empty() {
            return Err(ComponentError::InvalidInput("empty pipeline".to_string()).into());
        }
        let last = nodes.len() - 1;
        let train0 = data.select(&split.train);
        let validation0 = data.select(&split.validation);
        let mut cur: Option<Arc<(Dataset, Dataset)>> = None;
        let mut prefix_steps: Vec<String> = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            match node.component() {
                Component::Transform(t) => {
                    if i == last {
                        return Err(ComponentError::InvalidInput(format!(
                            "pipeline ends in transformer {}",
                            t.name()
                        ))
                        .into());
                    }
                    prefix_steps.push(node.name().to_string());
                    let key = prefix_cache_key(&prefix_steps, params);
                    let prev = cur.clone();
                    let out = cache.get_or_fit(fold, &key, || {
                        let (train, validation) = match &prev {
                            Some(pair) => (&pair.0, &pair.1),
                            None => (&train0, &validation0),
                        };
                        let mut fresh = t.clone_box();
                        let train_next = fresh.fit_transform(train)?;
                        let validation_next = fresh.transform(validation)?;
                        Ok((train_next, validation_next))
                    });
                    cur = Some(out.map_err(EvalError::Component)?);
                }
                Component::Estimate(e) => {
                    if i != last {
                        return Err(ComponentError::InvalidInput(format!(
                            "estimator {} is not the final node",
                            e.name()
                        ))
                        .into());
                    }
                    let (train, validation) = match &cur {
                        Some(pair) => (&pair.0, &pair.1),
                        None => (&train0, &validation0),
                    };
                    let mut model = e.clone_box();
                    model.fit(train)?;
                    let pred = model.predict(validation)?;
                    let truth = validation0.target_required().map_err(ComponentError::from)?;
                    return Ok(self.metric.compute(truth, &pred)?);
                }
            }
        }
        Err(ComponentError::InvalidInput("pipeline has no estimator".to_string()).into())
    }
}

/// See [`PipelineSpec::prefix_key`] — the canonical cache key of a
/// transformer prefix within one graph evaluation.
fn prefix_cache_key(steps: &[String], params: &Params) -> String {
    PipelineSpec::prefix_key(steps, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TegBuilder;
    use crate::node::Node;
    use coda_data::{synth, BoxedEstimator, NoOp};
    use coda_ml::{
        DecisionTreeRegressor, KnnRegressor, LinearRegression, Pca, RidgeRegression, StandardScaler,
    };

    fn small_graph() -> crate::graph::Teg {
        TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
            .add_models(vec![Box::new(LinearRegression::new()), Box::new(KnnRegressor::new(3))])
            .create_graph()
            .unwrap()
    }

    #[test]
    fn kfold_produces_k_models_and_k_estimates() {
        let ds = synth::linear_regression(60, 2, 0.1, 101);
        let eval = Evaluator::new(CvStrategy::kfold(5), Metric::Rmse);
        let p = Pipeline::from_nodes(vec![Node::auto(
            (Box::new(LinearRegression::new()) as BoxedEstimator).into(),
        )]);
        let scores = eval.evaluate_pipeline(&p, &ds).unwrap();
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|s| *s >= 0.0));
    }

    #[test]
    fn graph_report_ranked_by_metric() {
        let ds = synth::linear_regression(120, 3, 0.1, 102);
        let eval = Evaluator::new(CvStrategy::kfold(4), Metric::Rmse);
        let report = eval.evaluate_graph(&small_graph(), &ds).unwrap();
        assert_eq!(report.results.len(), 4);
        assert_eq!(report.n_ok(), 4);
        // scores ascend for a lower-is-better metric
        for w in report.results.windows(2) {
            assert!(w[0].mean_score <= w[1].mean_score + 1e-12);
        }
        // linear data: a linear path must win
        assert!(report.best().unwrap().spec.steps.contains(&"linear_regression".to_string()));
    }

    #[test]
    fn higher_is_better_metric_ranks_descending() {
        let ds = synth::linear_regression(120, 3, 0.1, 103);
        let eval = Evaluator::new(CvStrategy::kfold(4), Metric::R2);
        let report = eval.evaluate_graph(&small_graph(), &ds).unwrap();
        for w in report.results.windows(2) {
            assert!(w[0].mean_score >= w[1].mean_score - 1e-12);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let ds = synth::friedman1(150, 5, 0.3, 104);
        let graph = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
            .add_feature_selectors(vec![Box::new(Pca::new(3)), Box::new(NoOp::new())])
            .add_models(vec![
                Box::new(LinearRegression::new()),
                Box::new(DecisionTreeRegressor::new()),
            ])
            .create_graph()
            .unwrap();
        let serial =
            Evaluator::new(CvStrategy::kfold(3), Metric::Rmse).evaluate_graph(&graph, &ds).unwrap();
        let parallel = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .with_threads(4)
            .evaluate_graph(&graph, &ds)
            .unwrap();
        assert_eq!(serial.results.len(), parallel.results.len());
        for (a, b) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(a.spec.key(), b.spec.key());
            assert!((a.mean_score - b.mean_score).abs() < 1e-12);
        }
    }

    #[test]
    fn failing_path_recorded_not_fatal() {
        // PCA with more samples required: use a 1-sample-per-fold dataset to
        // break PCA fits while linear regression still works... simpler: an
        // estimator that needs more samples than a fold provides.
        let ds = synth::linear_regression(12, 6, 0.01, 105);
        let graph = TegBuilder::new()
            .add_models(vec![
                Box::new(LinearRegression::new()), // needs >= 7 samples/fold: 12*(2/3)=8 ok
                Box::new(RidgeRegression::new(1.0)),
            ])
            .create_graph()
            .unwrap();
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
        let report = eval.evaluate_graph(&graph, &ds).unwrap();
        assert!(report.n_ok() >= 1);
    }

    #[test]
    fn all_paths_failing_is_error() {
        let ds = synth::linear_regression(6, 5, 0.01, 106);
        // linear regression needs 6 samples for 5 features + intercept;
        // 3-fold training sets have only 4 samples -> every fold fails.
        let graph = TegBuilder::new()
            .add_models(vec![Box::new(LinearRegression::new())])
            .create_graph()
            .unwrap();
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
        assert!(matches!(eval.evaluate_graph(&graph, &ds), Err(EvalError::NothingEvaluated)));
    }

    #[test]
    fn grid_expands_per_path_and_dedups() {
        let ds = synth::friedman1(90, 6, 0.3, 107);
        let graph = TegBuilder::new()
            .add_feature_selectors(vec![Box::new(Pca::new(2)), Box::new(NoOp::new())])
            .add_models(vec![Box::new(KnnRegressor::new(3))])
            .create_graph()
            .unwrap();
        let mut grid = crate::grid::ParamGrid::new();
        grid.add("pca__n_components", vec![2usize.into(), 4usize.into()]);
        grid.add("knn_regressor__k", vec![3usize.into(), 7usize.into()]);
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
        let report = eval.evaluate_graph_with_grid(&graph, &ds, &grid).unwrap();
        // pca path: 2 pca values x 2 k values = 4; noop path: k values only = 2
        assert_eq!(report.results.len(), 6);
        assert_eq!(report.n_failed(), 0);
    }

    fn fan_out_graph(n_models: usize) -> crate::graph::Teg {
        let models: Vec<coda_data::BoxedEstimator> = (0..n_models)
            .map(|i| {
                Box::new(RidgeRegression::new(0.1 + i as f64 * 0.2)) as coda_data::BoxedEstimator
            })
            .collect();
        TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new())])
            .add_feature_selectors(vec![Box::new(Pca::new(2))])
            .add_models(models)
            .create_graph()
            .unwrap()
    }

    fn assert_identical(a: &GraphReport, b: &GraphReport) {
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.error, y.error);
            assert_eq!(x.fold_scores.len(), y.fold_scores.len());
            for (s, t) in x.fold_scores.iter().zip(&y.fold_scores) {
                assert_eq!(s.to_bits(), t.to_bits(), "fold scores must be bit-identical");
            }
            assert_eq!(x.mean_score.to_bits(), y.mean_score.to_bits());
        }
    }

    #[test]
    fn cached_report_bit_identical_to_uncached() {
        let ds = synth::friedman1(120, 5, 0.3, 201);
        let graph = fan_out_graph(4);
        let uncached =
            Evaluator::new(CvStrategy::kfold(3), Metric::Rmse).evaluate_graph(&graph, &ds).unwrap();
        let cached = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .with_prefix_cache(true)
            .evaluate_graph(&graph, &ds)
            .unwrap();
        assert_identical(&uncached, &cached);
        assert!(uncached.cache.is_none());
        assert!(cached.cache.is_some());
    }

    #[test]
    fn cached_parallel_matches_serial() {
        let ds = synth::friedman1(150, 5, 0.3, 202);
        let graph = fan_out_graph(6);
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse).with_prefix_cache(true);
        let serial = eval.clone().evaluate_graph(&graph, &ds).unwrap();
        let parallel = eval.with_threads(4).evaluate_graph(&graph, &ds).unwrap();
        assert_identical(&serial, &parallel);
        // slot-serialized cache: accounting is deterministic under threads
        assert_eq!(serial.cache, parallel.cache);
    }

    #[test]
    fn cache_stats_linear_chain_zero_hits() {
        // a linear chain shares nothing: every lookup is a distinct fit
        let ds = synth::friedman1(90, 5, 0.3, 203);
        let graph = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new())])
            .add_feature_selectors(vec![Box::new(Pca::new(2))])
            .add_models(vec![Box::new(LinearRegression::new())])
            .create_graph()
            .unwrap();
        let report = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .with_prefix_cache(true)
            .evaluate_graph(&graph, &ds)
            .unwrap();
        let stats = report.cache.unwrap();
        let (distinct, visits) = graph.transform_prefix_counts();
        assert_eq!((distinct, visits), (2, 2));
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2 * 3, "2 prefixes x 3 folds");
        assert_eq!(stats.hits + stats.misses, (visits * 3) as u64);
    }

    #[test]
    fn cache_stats_fan_out_predicted_hits() {
        // 4 models share a 2-stage prefix: per fold, 8 lookups, 2 fits
        let ds = synth::friedman1(90, 5, 0.3, 204);
        let graph = fan_out_graph(4);
        let k = 3u64;
        let report = Evaluator::new(CvStrategy::kfold(k as usize), Metric::Rmse)
            .with_prefix_cache(true)
            .evaluate_graph(&graph, &ds)
            .unwrap();
        let stats = report.cache.unwrap();
        let (distinct, visits) = graph.transform_prefix_counts();
        assert_eq!((distinct, visits), (2, 8));
        assert_eq!(stats.misses, distinct as u64 * k);
        assert_eq!(stats.hits, (visits - distinct) as u64 * k);
        assert_eq!(stats.refits_avoided, stats.hits);
        assert!(stats.bytes > 0);
        assert_eq!(stats.hits + stats.misses, visits as u64 * k);
    }

    #[test]
    fn cached_grid_matches_uncached_grid() {
        let ds = synth::friedman1(90, 6, 0.3, 205);
        let graph = TegBuilder::new()
            .add_feature_selectors(vec![Box::new(Pca::new(2)), Box::new(NoOp::new())])
            .add_models(vec![Box::new(KnnRegressor::new(3))])
            .create_graph()
            .unwrap();
        let mut grid = crate::grid::ParamGrid::new();
        grid.add("pca__n_components", vec![2usize.into(), 4usize.into()]);
        grid.add("knn_regressor__k", vec![3usize.into(), 7usize.into()]);
        let uncached = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .evaluate_graph_with_grid(&graph, &ds, &grid)
            .unwrap();
        let cached = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .with_prefix_cache(true)
            .evaluate_graph_with_grid(&graph, &ds, &grid)
            .unwrap();
        assert_identical(&uncached, &cached);
        // pca prefix: 2 distinct param values x 3 folds; noop prefix: 3 folds
        let stats = cached.cache.unwrap();
        assert_eq!(stats.misses, (2 + 1) * 3);
        // 6 jobs x 1 prefix visit x 3 folds = 18 lookups
        assert_eq!(stats.hits + stats.misses, 18);
    }

    #[test]
    fn grid_disjoint_param_namespaces_do_not_collide() {
        // regression: paths with disjoint param namespaces must neither
        // collide in the dedup set (the spec key embeds the step names) nor
        // silently drop jobs
        let ds = synth::friedman1(90, 6, 0.3, 206);
        let graph = TegBuilder::new()
            .add_feature_selectors(vec![Box::new(Pca::new(2)), Box::new(NoOp::new())])
            .add_models(vec![Box::new(KnnRegressor::new(3)), Box::new(RidgeRegression::new(1.0))])
            .create_graph()
            .unwrap();
        let mut grid = crate::grid::ParamGrid::new();
        grid.add("pca__n_components", vec![2usize.into(), 3usize.into()]);
        grid.add("knn_regressor__k", vec![3usize.into(), 5usize.into()]);
        grid.add("ridge_regression__alpha", vec![0.1.into(), 1.0.into()]);
        for use_cache in [false, true] {
            let report = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
                .with_prefix_cache(use_cache)
                .evaluate_graph_with_grid(&graph, &ds, &grid)
                .unwrap();
            // pca>knn: 2x2=4; pca>ridge: 2x2=4; noop>knn: 2; noop>ridge: 2
            assert_eq!(report.results.len(), 12, "no jobs dropped or merged");
            let keys: std::collections::BTreeSet<String> =
                report.results.iter().map(|r| r.spec.key()).collect();
            assert_eq!(keys.len(), 12, "every surviving job has a distinct spec key");
        }
    }

    #[test]
    fn cached_failing_and_malformed_paths_report_identical_errors() {
        // one path fails per-fold (linear regression with too few samples),
        // the other succeeds; error strings must match the uncached run
        let ds = synth::linear_regression(12, 6, 0.01, 207);
        let graph = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new())])
            .add_models(vec![
                Box::new(LinearRegression::new()),
                Box::new(RidgeRegression::new(1.0)),
            ])
            .create_graph()
            .unwrap();
        // kfold(2) trains on 6 rows < 7 design columns: OLS fails per fold
        let uncached =
            Evaluator::new(CvStrategy::kfold(2), Metric::Rmse).evaluate_graph(&graph, &ds).unwrap();
        let cached = Evaluator::new(CvStrategy::kfold(2), Metric::Rmse)
            .with_prefix_cache(true)
            .evaluate_graph(&graph, &ds)
            .unwrap();
        assert_eq!(uncached.n_failed(), 1, "the OLS branch must actually fail");
        assert_eq!(uncached.n_ok(), 1);
        assert_identical(&uncached, &cached);
    }

    #[test]
    fn cached_cv_error_matches_uncached() {
        let ds = synth::linear_regression(4, 2, 0.1, 208);
        let graph = TegBuilder::new()
            .add_models(vec![Box::new(LinearRegression::new())])
            .create_graph()
            .unwrap();
        let uncached =
            Evaluator::new(CvStrategy::kfold(10), Metric::Rmse).evaluate_graph(&graph, &ds);
        let cached = Evaluator::new(CvStrategy::kfold(10), Metric::Rmse)
            .with_prefix_cache(true)
            .evaluate_graph(&graph, &ds);
        assert!(matches!(uncached, Err(EvalError::NothingEvaluated)));
        assert!(matches!(cached, Err(EvalError::NothingEvaluated)));
    }

    #[test]
    fn obs_instrumentation_is_observational_only() {
        let ds = synth::friedman1(120, 5, 0.3, 209);
        let graph = fan_out_graph(4);
        let plain = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .with_prefix_cache(true)
            .evaluate_graph(&graph, &ds)
            .unwrap();
        let obs = coda_obs::Obs::wall();
        let observed = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .with_prefix_cache(true)
            .with_obs(obs.clone())
            .evaluate_graph(&graph, &ds)
            .unwrap();
        assert_identical(&plain, &observed);
        assert_eq!(plain.cache, observed.cache, "cache accounting unchanged by obs");
        assert!(plain.timing.is_none());
        let timing = observed.timing.expect("instrumented run reports timing");
        assert_eq!(timing.path_ms.count, 4, "one timing observation per path");
        assert!(timing.wall_ms >= timing.path_ms.sum, "serial paths fit inside the wall time");
        let snap = obs.registry().snapshot();
        assert!(snap.counter("coda_core_cache_hits") > 0, "cache stats published");
        assert_eq!(snap.counter("coda_core_eval_graphs"), 1);
        assert_eq!(snap.counter("coda_core_eval_paths"), 4);
        assert_eq!(snap.counter("coda_core_eval_folds"), 12, "4 paths x 3 folds");
        assert_eq!(snap.histograms["coda_core_eval_path_ms"].count, 4);
        // span taxonomy: 1 eval.graph + 4 eval.path + 12 eval.fold, each
        // recording a start and an end event
        assert_eq!(obs.tracer().len(), 2 * (1 + 4 + 12));
        let log = obs.tracer().render_log();
        assert!(log.contains("span_start eval.path "));
        assert!(log.contains("spec="));
        // causal structure: every path hangs off the graph span, every fold
        // off a path span — a single trace with no orphans
        let forest = obs.forest();
        assert!(forest.orphans().is_empty(), "no orphaned spans");
        assert_eq!(forest.trace_ids().len(), 1, "one trace per graph evaluation");
        let graph_span =
            forest.spans().find(|s| s.name == "eval.graph").expect("graph span present").ctx;
        for path in forest.spans().filter(|s| s.name == "eval.path") {
            assert_eq!(path.parent, Some(graph_span.span_id), "paths parent to the graph");
        }
        for fold in forest.spans().filter(|s| s.name == "eval.fold") {
            let parent = fold.parent.expect("folds have a parent");
            assert_eq!(forest.span(parent).expect("parent resolves").name, "eval.path");
        }
    }

    #[test]
    fn path_outcomes_count_and_armed_exemplars_link_back_to_spans() {
        // kfold(2) on 6-row folds with 7 design columns: OLS fails, ridge
        // succeeds — one path lands in each outcome counter
        let ds = synth::linear_regression(12, 6, 0.01, 210);
        let graph = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new())])
            .add_models(vec![
                Box::new(LinearRegression::new()),
                Box::new(RidgeRegression::new(1.0)),
            ])
            .create_graph()
            .unwrap();
        let obs = coda_obs::Obs::deterministic();
        obs.exemplars().enable(0.0, 4); // arm: every observation qualifies
        let report = Evaluator::new(CvStrategy::kfold(2), Metric::Rmse)
            .with_obs(obs.clone())
            .evaluate_graph(&graph, &ds)
            .unwrap();
        assert_eq!(report.n_failed(), 1);
        assert_eq!(report.n_ok(), 1);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("coda_core_eval_paths_ok"), 1);
        assert_eq!(snap.counter("coda_core_eval_path_errors"), 1);
        // exemplars carry the eval.path span context, so a hot latency
        // observation resolves to a concrete trace in the forest
        let exemplars = obs.exemplars().exemplars("coda_core_eval_path_ms");
        assert_eq!(exemplars.len(), 2, "one exemplar per path while armed");
        let forest = obs.forest();
        for e in &exemplars {
            let ctx = e.ctx.expect("traced runs attach a span context");
            let span = forest.span(ctx.span_id).expect("exemplar span resolves");
            assert_eq!(span.name, "eval.path");
        }
    }

    #[test]
    fn disarmed_exemplar_store_stays_empty() {
        let ds = synth::friedman1(60, 5, 0.3, 211);
        let obs = coda_obs::Obs::deterministic();
        Evaluator::new(CvStrategy::kfold(3), Metric::Rmse)
            .with_obs(obs.clone())
            .evaluate_graph(&fan_out_graph(2), &ds)
            .unwrap();
        assert!(!obs.exemplars().is_enabled());
        assert!(obs.exemplars().exemplars("coda_core_eval_path_ms").is_empty());
    }

    #[test]
    fn sliding_split_evaluates_time_ordered() {
        let ds = synth::linear_regression(100, 2, 0.1, 108);
        let eval = Evaluator::new(
            CvStrategy::TimeSeriesSlidingSplit {
                train_size: 40,
                buffer: 5,
                validation_size: 10,
                k: 3,
            },
            Metric::Mae,
        );
        let p = Pipeline::from_nodes(vec![Node::auto(
            (Box::new(LinearRegression::new()) as BoxedEstimator).into(),
        )]);
        let scores = eval.evaluate_pipeline(&p, &ds).unwrap();
        assert_eq!(scores.len(), 3);
    }

    #[test]
    fn report_display_nonempty() {
        let ds = synth::linear_regression(60, 2, 0.1, 109);
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse);
        let report = eval.evaluate_graph(&small_graph(), &ds).unwrap();
        let s = report.to_string();
        assert!(s.contains("GraphReport"));
        assert!(s.contains("linear_regression"));
    }

    #[test]
    fn cv_error_propagates() {
        let ds = synth::linear_regression(3, 2, 0.1, 110);
        let eval = Evaluator::new(CvStrategy::kfold(10), Metric::Rmse);
        let p = Pipeline::from_nodes(vec![Node::auto(
            (Box::new(LinearRegression::new()) as BoxedEstimator).into(),
        )]);
        assert!(matches!(eval.evaluate_pipeline(&p, &ds), Err(EvalError::Cv(_))));
    }
}
