/root/repo/target/debug/examples/model_lifecycle-682915fd5f2e4d32.d: examples/model_lifecycle.rs Cargo.toml

/root/repo/target/debug/examples/libmodel_lifecycle-682915fd5f2e4d32.rmeta: examples/model_lifecycle.rs Cargo.toml

examples/model_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
