//! D2 bench: update propagation cost per mode (pull / push-full /
//! push-delta / notify-only).

use bytes::Bytes;
use coda_bench::patterned_bytes;
use coda_store::{CachingClient, HomeDataStore, PushMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn run_updates(mode: Option<PushMode>, n_updates: usize) -> u64 {
    let mut store = HomeDataStore::new("home", 4);
    let mut client = CachingClient::new("c");
    let mut blob = patterned_bytes(65_536, 2);
    store.put("o", Bytes::from(blob.clone()));
    client.pull(&mut store, "o").unwrap();
    if let Some(m) = mode {
        store.subscribe("c", "o", m, u64::MAX / 2);
    }
    for i in 0..n_updates {
        let idx = (i * 97) % blob.len();
        blob[idx] ^= 0xFF;
        let (_, pushes) = store.put("o", Bytes::from(blob.clone()));
        for p in &pushes {
            client.apply_push(p).unwrap();
        }
        if mode.is_none() {
            client.pull(&mut store, "o").unwrap();
        }
    }
    client.bytes_received
}

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync/20_updates_64KiB");
    group.sample_size(20);
    for (name, mode) in [
        ("pull", None),
        ("push_full", Some(PushMode::Full)),
        ("push_delta", Some(PushMode::Delta)),
        ("notify_only", Some(PushMode::NotifyOnly)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, m| {
            b.iter(|| run_updates(*m, 20))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
