/root/repo/target/debug/deps/serde-f8b032869e0592cd.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f8b032869e0592cd.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f8b032869e0592cd.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
