//! Model checks for `MetricsRegistry`'s lazy instrument registration
//! (the read-then-write lock upgrade in `counter()`/`gauge()`).
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p coda-obs --test
//! loom_metrics`. Under the vendored `loom` stand-in this is a bounded
//! stress harness; with the real crate it becomes an exhaustive
//! interleaving search without a source change (DESIGN.md §10).
#![cfg(loom)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use coda_obs::MetricsRegistry;
use loom::sync::Arc;
use loom::thread;

/// The registration race: several threads materialize the same counter
/// name concurrently. The read-miss → write-entry upgrade must converge
/// on ONE shared instrument — if two threads each installed their own,
/// one thread's increments would vanish from the snapshot.
#[test]
fn concurrent_registration_converges_on_one_counter() {
    loom::model(|| {
        let registry = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let registry = Arc::clone(&registry);
                thread::spawn(move || {
                    thread::yield_now();
                    registry.counter("races").inc();
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread panicked");
        }
        assert_eq!(registry.snapshot().counter("races"), 3, "an increment was lost");
    });
}

/// Mixed registration and bulk `count` on the same name, racing a reader
/// taking snapshots: every final tally must equal the sum of both writers.
#[test]
fn count_and_counter_share_one_instrument() {
    loom::model(|| {
        let registry = Arc::new(MetricsRegistry::new());
        let a = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                registry.count("mixed", 2);
            })
        };
        let b = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                thread::yield_now();
                registry.counter("mixed").inc();
            })
        };
        let reader = {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // a mid-race snapshot must never observe a value above the
                // final total (counters are monotonic)
                let seen = registry.snapshot().counter("mixed");
                assert!(seen <= 3, "snapshot observed impossible count {seen}");
            })
        };
        for h in [a, b, reader] {
            h.join().expect("model thread panicked");
        }
        assert_eq!(registry.snapshot().counter("mixed"), 3, "an update was lost");
    });
}
