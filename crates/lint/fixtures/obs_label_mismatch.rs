//! Planted violation: one metric family split by two different label keys.
//! Dashboards aggregate a family by its label set; a `shard`-keyed series
//! and a `spec`-keyed series under one name cannot be summed coherently.

pub fn record(r: &Registry, shard: &str, spec: &str) {
    r.count(&labeled_name("coda_fixture_ms", "shard", shard), 1);
    r.count(&labeled_name("coda_fixture_ms", "spec", spec), 1);
}
