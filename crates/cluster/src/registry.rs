//! Structured calculations (paper §III): "Our system implements a
//! pre-defined set of methods for various steps in data analytics … Users
//! can specify the options that they want for each step, as well as the
//! input parameters … The system will then run the appropriate data
//! analytics calculations and optionally store the results in the data
//! analytics results repository (DARR)."
//!
//! A [`JobSpec`] is pure data (serializable): dataset identity, ordered
//! component names, qualified parameters, CV strategy and metric. The
//! [`ComponentRegistry`] maps the pre-defined component names to factories,
//! so any client — or the DARR itself — can turn a spec back into a
//! runnable pipeline. [`run_job`] executes a spec against a dataset and
//! publishes the result through the cooperative claim protocol.

use std::collections::BTreeMap;
use std::fmt;

use coda_core::{Evaluator, Node, Pipeline};
use coda_darr::{ComputationKey, CoopOutcome, CooperativeClient, Darr};
use coda_data::{
    BoxedEstimator, BoxedTransformer, CvStrategy, Dataset, Metric, NoOp, ParamValue, Params,
};
use coda_obs::{Obs, SpanContext};
use serde::{Deserialize, Serialize, Value};

/// Error produced by spec resolution or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// A component name is not registered.
    UnknownComponent(String),
    /// The metric name is not recognized.
    UnknownMetric(String),
    /// Another client holds the claim on this computation — transient; a
    /// retry policy can wait for the holder to finish or its lease to
    /// expire.
    ClaimHeld {
        /// The claim holder's client name.
        owner: String,
    },
    /// The job failed during evaluation.
    Execution(String),
}

impl JobError {
    /// True for errors a retry can resolve (currently only a held claim).
    pub fn is_transient(&self) -> bool {
        matches!(self, JobError::ClaimHeld { .. })
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::UnknownComponent(n) => write!(f, "unknown component {n}"),
            JobError::UnknownMetric(m) => write!(f, "unknown metric {m}"),
            JobError::ClaimHeld { owner } => write!(f, "claim held by {owner}; retry later"),
            JobError::Execution(e) => write!(f, "job execution failed: {e}"),
        }
    }
}

impl std::error::Error for JobError {}

/// A declarative analytics job: everything needed to (re)run one structured
/// calculation, serializable for interchange between clients.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Dataset identity in the data tier.
    pub dataset_id: String,
    /// Dataset version the job targets.
    pub dataset_version: u64,
    /// Ordered component names (registry keys); the last must be an
    /// estimator.
    pub steps: Vec<String>,
    /// Qualified `node__param` assignments, values rendered as JSON-friendly
    /// numbers/strings.
    pub params: BTreeMap<String, SpecValue>,
    /// K for K-fold cross-validation.
    pub cv_folds: usize,
    /// Metric name (`"rmse"`, `"f1-score"`, …).
    pub metric: String,
}

/// A JSON-friendly parameter value, serialized untagged (a bare JSON
/// number/bool/string).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecValue {
    /// Integer parameter.
    Int(i64),
    /// Floating point parameter.
    Float(f64),
    /// Boolean parameter.
    Bool(bool),
    /// String parameter.
    Str(String),
}

serde::impl_serde_struct!(JobSpec { dataset_id, dataset_version, steps, params, cv_folds, metric });

impl Serialize for SpecValue {
    fn to_value(&self) -> Value {
        match self {
            SpecValue::Int(i) => Value::Int(*i),
            SpecValue::Float(f) => Value::Float(*f),
            SpecValue::Bool(b) => Value::Bool(*b),
            SpecValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl Deserialize for SpecValue {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Int(i) => Ok(SpecValue::Int(*i)),
            Value::Float(f) => Ok(SpecValue::Float(*f)),
            Value::Bool(b) => Ok(SpecValue::Bool(*b)),
            Value::Str(s) => Ok(SpecValue::Str(s.clone())),
            other => Err(format!("expected number/bool/string parameter, got {other:?}")),
        }
    }
}

impl From<&SpecValue> for ParamValue {
    fn from(v: &SpecValue) -> ParamValue {
        match v {
            SpecValue::Int(i) => ParamValue::I64(*i),
            SpecValue::Float(f) => ParamValue::F64(*f),
            SpecValue::Bool(b) => ParamValue::Bool(*b),
            SpecValue::Str(s) => ParamValue::Str(s.clone()),
        }
    }
}

impl JobSpec {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        // value-model rendering is infallible; an empty string would only
        // appear if the vendored serde_json grew a real error path
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// The underlying `serde_json` error for malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The DARR computation key identifying this job.
    pub fn computation_key(&self) -> ComputationKey {
        let params: Params =
            self.params.iter().map(|(k, v)| (k.clone(), ParamValue::from(v))).collect();
        let spec = coda_core::PipelineSpec::new(self.steps.iter().map(|s| s.as_str()).collect())
            .with_params(&params);
        ComputationKey {
            dataset_id: self.dataset_id.clone(),
            dataset_version: self.dataset_version,
            pipeline: spec.key(),
            cv: format!("kfold({})", self.cv_folds),
            metric: self.metric.clone(),
        }
    }
}

enum Factory {
    Transform(Box<dyn Fn() -> BoxedTransformer + Send + Sync>),
    Estimate(Box<dyn Fn() -> BoxedEstimator + Send + Sync>),
}

/// The pre-defined component catalog: name → factory.
pub struct ComponentRegistry {
    factories: BTreeMap<String, Factory>,
}

impl fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ComponentRegistry[{} components]", self.factories.len())
    }
}

impl ComponentRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ComponentRegistry { factories: BTreeMap::new() }
    }

    /// Registers a transformer factory under `name`.
    pub fn register_transformer<F>(&mut self, name: &str, factory: F)
    where
        F: Fn() -> BoxedTransformer + Send + Sync + 'static,
    {
        self.factories.insert(name.to_string(), Factory::Transform(Box::new(factory)));
    }

    /// Registers an estimator factory under `name`.
    pub fn register_estimator<F>(&mut self, name: &str, factory: F)
    where
        F: Fn() -> BoxedEstimator + Send + Sync + 'static,
    {
        self.factories.insert(name.to_string(), Factory::Estimate(Box::new(factory)));
    }

    /// The registered component names.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(|s| s.as_str()).collect()
    }

    /// The standard catalog: the §III/Table-I components under their stable
    /// names.
    pub fn standard() -> Self {
        use coda_ml as ml;
        let mut r = ComponentRegistry::new();
        r.register_transformer("noop", || Box::new(NoOp::new()));
        r.register_transformer("standard_scaler", || Box::new(ml::StandardScaler::new()));
        r.register_transformer("minmax_scaler", || Box::new(ml::MinMaxScaler::new()));
        r.register_transformer("robust_scaler", || Box::new(ml::RobustScaler::new()));
        r.register_transformer("pca", || Box::new(ml::Pca::new(2)));
        r.register_transformer("select_k_best", || {
            Box::new(ml::SelectKBest::new(2, ml::ScoreFunction::FRegression))
        });
        r.register_transformer("mean_imputer", || {
            Box::new(coda_data::impute::SimpleImputer::new(coda_data::impute::ImputeStrategy::Mean))
        });
        r.register_transformer("median_imputer", || {
            Box::new(coda_data::impute::SimpleImputer::new(
                coda_data::impute::ImputeStrategy::Median,
            ))
        });
        r.register_transformer("random_oversampler", || Box::new(ml::RandomOversampler::new()));
        r.register_estimator("linear_regression", || Box::new(ml::LinearRegression::new()));
        r.register_estimator("ridge_regression", || Box::new(ml::RidgeRegression::new(1.0)));
        r.register_estimator("logistic_regression", || Box::new(ml::LogisticRegression::new()));
        r.register_estimator("knn_regressor", || Box::new(ml::KnnRegressor::new(5)));
        r.register_estimator("knn_classifier", || Box::new(ml::KnnClassifier::new(5)));
        r.register_estimator("decision_tree_regressor", || {
            Box::new(ml::DecisionTreeRegressor::new())
        });
        r.register_estimator("decision_tree_classifier", || {
            Box::new(ml::DecisionTreeClassifier::new())
        });
        r.register_estimator("random_forest_regressor", || {
            Box::new(ml::RandomForestRegressor::new(20))
        });
        r.register_estimator("random_forest_classifier", || {
            Box::new(ml::RandomForestClassifier::new(20))
        });
        r.register_estimator("gradient_boosting_regressor", || {
            Box::new(ml::GradientBoostingRegressor::new(40, 0.1))
        });
        r.register_estimator("gaussian_nb", || Box::new(ml::GaussianNb::new()));
        r
    }

    /// Builds the runnable pipeline for a spec, applying its parameters.
    ///
    /// # Errors
    ///
    /// [`JobError::UnknownComponent`] for unregistered names;
    /// [`JobError::Execution`] for invalid parameters.
    pub fn build_pipeline(&self, spec: &JobSpec) -> Result<Pipeline, JobError> {
        let mut nodes = Vec::with_capacity(spec.steps.len());
        for name in &spec.steps {
            let factory =
                self.factories.get(name).ok_or_else(|| JobError::UnknownComponent(name.clone()))?;
            let node = match factory {
                Factory::Transform(f) => Node::new(name.clone(), f().into()),
                Factory::Estimate(f) => Node::new(name.clone(), f().into()),
            };
            nodes.push(node);
        }
        let mut pipeline = Pipeline::from_nodes(nodes);
        let params: Params =
            spec.params.iter().map(|(k, v)| (k.clone(), ParamValue::from(v))).collect();
        pipeline.apply_params(&params).map_err(|e| JobError::Execution(e.to_string()))?;
        Ok(pipeline)
    }
}

impl Default for ComponentRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

/// Executes a job spec against a dataset, cooperating through the DARR:
/// results already computed (by anyone) are reused; otherwise this client
/// claims, computes with the spec's K-fold CV, and stores the result.
///
/// # Errors
///
/// [`JobError`] for bad specs or failed evaluation; a held claim surfaces
/// as an error the caller may retry.
pub fn run_job(
    registry: &ComponentRegistry,
    spec: &JobSpec,
    data: &Dataset,
    darr: &Darr,
    client_name: &str,
) -> Result<coda_darr::AnalyticsRecord, JobError> {
    run_job_in(registry, spec, data, darr, client_name, None, None)
}

/// [`run_job`] with in-band trace context: when `obs` is attached the
/// cooperative client traces its `darr.process` subtree, and `parent` links
/// that subtree under the dispatching span (a `cluster.job` or a chaos
/// driver's per-key root).
pub fn run_job_in(
    registry: &ComponentRegistry,
    spec: &JobSpec,
    data: &Dataset,
    darr: &Darr,
    client_name: &str,
    obs: Option<&Obs>,
    parent: Option<SpanContext>,
) -> Result<coda_darr::AnalyticsRecord, JobError> {
    let metric =
        Metric::parse(&spec.metric).ok_or_else(|| JobError::UnknownMetric(spec.metric.clone()))?;
    let pipeline = registry.build_pipeline(spec)?;
    let key = spec.computation_key();
    let mut client = CooperativeClient::new(darr, client_name, 60_000);
    if let Some(o) = obs {
        client = client.with_obs(o.clone());
    }
    let outcome = client.process_in(&key, parent, || {
        let evaluator = Evaluator::new(CvStrategy::kfold(spec.cv_folds), metric);
        let scores = evaluator.evaluate_pipeline(&pipeline, data).map_err(|e| e.to_string())?;
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        Ok((mean, scores, format!("job spec: {}", spec.to_json())))
    });
    match outcome {
        CoopOutcome::Computed(r) | CoopOutcome::Reused(r) => Ok(r),
        CoopOutcome::SkippedHeld(owner) => Err(JobError::ClaimHeld { owner }),
        CoopOutcome::Failed(e) => Err(JobError::Execution(e)),
    }
}

/// [`run_job`] with job-lifecycle observability: the whole job runs under a
/// `cluster.job` span whose context propagates into the cooperative
/// protocol, and every lifecycle transition counts into the registry
/// (`coda_cluster_jobs_submitted` → `_completed` / `_held` / `_failed`).
pub fn run_job_observed(
    registry: &ComponentRegistry,
    spec: &JobSpec,
    data: &Dataset,
    darr: &Darr,
    client_name: &str,
    obs: &Obs,
) -> Result<coda_darr::AnalyticsRecord, JobError> {
    let span = obs.span("cluster.job", &[("client", client_name), ("dataset", &spec.dataset_id)]);
    obs.count("coda_cluster_jobs_submitted", 1);
    let result =
        run_job_in(registry, spec, data, darr, client_name, Some(obs), Some(span.context()));
    let transition = match &result {
        Ok(_) => "coda_cluster_jobs_completed",
        Err(JobError::ClaimHeld { .. }) => "coda_cluster_jobs_held",
        Err(_) => "coda_cluster_jobs_failed",
    };
    obs.count(transition, 1);
    result
}

/// [`run_job`] under a retry policy: a held claim backs off by advancing the
/// DARR's logical clock (so the holder either finishes — the result is then
/// reused — or its lease expires and this client takes over). Permanent
/// errors return immediately. Returns the result plus retry accounting.
pub fn run_job_with_retry(
    registry: &ComponentRegistry,
    spec: &JobSpec,
    data: &Dataset,
    darr: &Darr,
    client_name: &str,
    policy: &coda_chaos::RetryPolicy,
) -> (Result<coda_darr::AnalyticsRecord, JobError>, coda_chaos::RetryStats) {
    run_job_with_retry_obs(registry, spec, data, darr, client_name, policy, None)
}

/// [`run_job_with_retry`] with optional observability: lifecycle
/// transitions count as in [`run_job_observed`], plus one
/// `coda_cluster_job_retries` per placement retry against a held claim.
#[allow(clippy::too_many_arguments)]
pub fn run_job_with_retry_obs(
    registry: &ComponentRegistry,
    spec: &JobSpec,
    data: &Dataset,
    darr: &Darr,
    client_name: &str,
    policy: &coda_chaos::RetryPolicy,
    obs: Option<&Obs>,
) -> (Result<coda_darr::AnalyticsRecord, JobError>, coda_chaos::RetryStats) {
    let span = obs
        .map(|o| o.span("cluster.job", &[("client", client_name), ("dataset", &spec.dataset_id)]));
    let ctx = span.as_ref().map(|s| s.context());
    let count = |name: &str| {
        if let Some(o) = obs {
            o.count(name, 1);
        }
    };
    count("coda_cluster_jobs_submitted");
    let mut state = policy.state();
    loop {
        state.begin_attempt();
        match run_job_in(registry, spec, data, darr, client_name, obs, ctx) {
            Ok(record) => {
                count("coda_cluster_jobs_completed");
                return (Ok(record), state.finish(true));
            }
            Err(e) if e.is_transient() => match state.next_backoff_ms() {
                Some(backoff) => {
                    count("coda_cluster_job_retries");
                    if let (Some(o), Some(c)) = (obs, ctx) {
                        let ms = format!("{backoff:.3}");
                        o.event_in(c, "cluster.job_retry", &[("backoff_ms", &ms)]);
                    }
                    darr.advance_clock(backoff.ceil() as u64);
                }
                None => {
                    count("coda_cluster_jobs_held");
                    return (Err(e), state.finish(false));
                }
            },
            Err(e) => {
                count("coda_cluster_jobs_failed");
                return (Err(e), state.finish(false));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::synth;

    fn spec() -> JobSpec {
        let mut params = BTreeMap::new();
        params.insert("pca__n_components".to_string(), SpecValue::Int(3));
        JobSpec {
            dataset_id: "sensors".to_string(),
            dataset_version: 1,
            steps: vec![
                "standard_scaler".to_string(),
                "pca".to_string(),
                "linear_regression".to_string(),
            ],
            params,
            cv_folds: 3,
            metric: "rmse".to_string(),
        }
    }

    #[test]
    fn json_roundtrip() {
        let s = spec();
        let back = JobSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert!(JobSpec::from_json("nope").is_err());
    }

    #[test]
    fn registry_builds_and_runs_spec() {
        let registry = ComponentRegistry::standard();
        assert!(registry.names().contains(&"pca"));
        let darr = Darr::new();
        let ds = synth::linear_regression(90, 5, 0.2, 401);
        let record = run_job(&registry, &spec(), &ds, &darr, "client-a").unwrap();
        assert!(record.score.is_finite());
        assert_eq!(record.fold_scores.len(), 3);
        assert!(record.explanation.contains("job spec"));
        // a second client reuses instead of recomputing
        let again = run_job(&registry, &spec(), &ds, &darr, "client-b").unwrap();
        assert_eq!(again.producer, "client-a");
        assert_eq!(darr.stats().stored, 1);
    }

    #[test]
    fn spec_identity_is_parameter_sensitive() {
        let a = spec();
        let mut b = spec();
        b.params.insert("pca__n_components".to_string(), SpecValue::Int(4));
        assert_ne!(a.computation_key(), b.computation_key());
        // same spec -> same key (redundancy detection)
        assert_eq!(a.computation_key(), spec().computation_key());
    }

    #[test]
    fn unknown_component_and_metric_rejected() {
        let registry = ComponentRegistry::standard();
        let mut bad = spec();
        bad.steps[1] = "quantum_annealer".to_string();
        assert!(matches!(registry.build_pipeline(&bad), Err(JobError::UnknownComponent(_))));
        let mut bad_metric = spec();
        bad_metric.metric = "vibes".to_string();
        let darr = Darr::new();
        let ds = synth::linear_regression(30, 3, 0.2, 402);
        assert!(matches!(
            run_job(&registry, &bad_metric, &ds, &darr, "c"),
            Err(JobError::UnknownMetric(_))
        ));
    }

    #[test]
    fn bad_params_rejected_at_build() {
        let registry = ComponentRegistry::standard();
        let mut bad = spec();
        bad.params.insert("pca__n_components".to_string(), SpecValue::Int(0));
        assert!(matches!(registry.build_pipeline(&bad), Err(JobError::Execution(_))));
        let mut unknown = spec();
        unknown.params.insert("nonexistent__x".to_string(), SpecValue::Int(1));
        assert!(matches!(registry.build_pipeline(&unknown), Err(JobError::Execution(_))));
    }

    #[test]
    fn held_claim_surfaces_as_typed_error() {
        let registry = ComponentRegistry::standard();
        let darr = Darr::new();
        let ds = synth::linear_regression(60, 4, 0.2, 403);
        let s = spec();
        darr.try_claim(&s.computation_key(), "someone-else", 60_000);
        match run_job(&registry, &s, &ds, &darr, "client-a") {
            Err(JobError::ClaimHeld { owner }) => {
                assert_eq!(owner, "someone-else");
                assert!(JobError::ClaimHeld { owner }.is_transient());
            }
            other => panic!("expected ClaimHeld, got {other:?}"),
        }
    }

    #[test]
    fn run_job_with_retry_takes_over_expired_claim() {
        use coda_chaos::RetryPolicy;
        let registry = ComponentRegistry::standard();
        let darr = Darr::new();
        let ds = synth::linear_regression(60, 4, 0.2, 404);
        let s = spec();
        // a dead client holds the claim for 100 ticks
        darr.try_claim(&s.computation_key(), "dead", 100);
        let policy = RetryPolicy::fixed(60.0, 5);
        let (result, stats) = run_job_with_retry(&registry, &s, &ds, &darr, "client-a", &policy);
        let record = result.unwrap();
        assert_eq!(record.producer, "client-a");
        assert!(stats.retries >= 1);
        assert_eq!(stats.successes, 1);

        // non-transient errors do not retry
        let mut bad = spec();
        bad.metric = "vibes".to_string();
        let (result, stats) = run_job_with_retry(&registry, &bad, &ds, &darr, "c", &policy);
        assert!(matches!(result, Err(JobError::UnknownMetric(_))));
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn retry_deadline_caps_a_never_released_claim() {
        use coda_chaos::RetryPolicy;
        let registry = ComponentRegistry::standard();
        let darr = Darr::new();
        let ds = synth::linear_regression(60, 4, 0.2, 405);
        let s = spec();
        // the holder never finishes and its claim far outlives any backoff:
        // without a total-budget cap this retries until the attempt limit
        darr.try_claim(&s.computation_key(), "immortal", u64::MAX / 2);
        let policy = RetryPolicy::fixed(30.0, 1_000).with_deadline(100.0);
        let (result, stats) = run_job_with_retry(&registry, &s, &ds, &darr, "client-a", &policy);
        assert!(matches!(result, Err(JobError::ClaimHeld { .. })));
        assert_eq!(stats.deadline_hits, 1, "the budget cap must end the retrying");
        assert!(stats.total_backoff_ms <= 100.0, "backoff never exceeds the budget");
        assert!(stats.attempts < 1_000, "far fewer attempts than the raw limit");
    }

    #[test]
    fn custom_registration() {
        let mut registry = ComponentRegistry::new();
        registry.register_transformer("noop", || Box::new(NoOp::new()));
        registry
            .register_estimator("linear_regression", || Box::new(coda_ml::LinearRegression::new()));
        let s = JobSpec {
            dataset_id: "d".to_string(),
            dataset_version: 1,
            steps: vec!["noop".to_string(), "linear_regression".to_string()],
            params: BTreeMap::new(),
            cv_folds: 3,
            metric: "r2".to_string(),
        };
        let pipeline = registry.build_pipeline(&s).unwrap();
        assert_eq!(pipeline.node_names(), vec!["noop", "linear_regression"]);
    }
}
