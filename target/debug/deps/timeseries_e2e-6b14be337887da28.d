/root/repo/target/debug/deps/timeseries_e2e-6b14be337887da28.d: tests/timeseries_e2e.rs

/root/repo/target/debug/deps/timeseries_e2e-6b14be337887da28: tests/timeseries_e2e.rs

tests/timeseries_e2e.rs:
