//! The serving tier: N single-writer worker shards behind bounded MPSC
//! mailboxes, with admission control at the submit edge and request
//! batching at the worker edge.
//!
//! Life of a request: [`ServeTier::submit`] routes it by stable key hash,
//! `try_send`s the envelope into the owning shard's bounded mailbox —
//! a full mailbox sheds the request *right there* with
//! [`ServeError::Overloaded`] (counted under `coda_serve_shed_total`,
//! queue occupancy tracked exactly by the `coda_serve_queue_depth` gauge)
//! — and the shard's worker thread drains its mailbox in batches of up to
//! `batch_max`, applying each request against the [`ShardCore`] it alone
//! owns. No locks are shared between shards; the only synchronization in
//! the data path is the mailbox channel itself.
//!
//! Chaos composes per shard: a [`CrashPlan`] point addressed to node
//! `shard-{i}` fires the moment that shard's WAL reaches the planned
//! operation count — the worker exports, crashes the store to its durable
//! image, replays the WAL, and proves the recovery byte-identical, all
//! while the other shards keep serving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use coda_chaos::CrashPlan;
use coda_obs::{labeled_name, BurnState, Counter, Gauge, Histogram, Obs, DEFAULT_MS_BOUNDS};

use crate::request::{ServeError, ServeRequest, ServeResponse};
use crate::router::ShardRouter;
use crate::shard::{merge_canonical_exports, ShardCore, TriggerPolicy};

/// Histogram bounds for the per-wakeup batch size.
const BATCH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Tier configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (threads).
    pub n_shards: usize,
    /// Bounded mailbox capacity per shard — the admission-control knob.
    pub queue_capacity: usize,
    /// Maximum requests a worker drains per wakeup.
    pub batch_max: usize,
    /// Versions each shard's store retains for delta chains.
    pub history_depth: usize,
    /// WAL records between snapshots at each shard (0 = never).
    pub snapshot_every: usize,
    /// Recompute-trigger policy stamped on every object.
    pub trigger: TriggerPolicy,
    /// Crash-stop schedule; points target nodes named `shard-{i}`.
    pub plan: CrashPlan,
    /// Shared SLO burn state from a [`coda_obs::SloEngine`] the admission
    /// edge can consult (`None` = no ops plane attached).
    pub burn_state: Option<Arc<BurnState>>,
    /// When `true` *and* `burn_state` reports a breach, the admission edge
    /// sheds new data-plane requests before they enqueue (counted under
    /// `coda_serve_burn_shed_total` as well as the shed total). `false` —
    /// the default — keeps the hook purely observational: attaching a
    /// burn state changes nothing (equivalence-gated in tests).
    pub burn_admission: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_shards: 4,
            queue_capacity: 64,
            batch_max: 16,
            history_depth: 4,
            snapshot_every: 32,
            trigger: TriggerPolicy::Off,
            plan: CrashPlan::new(),
            burn_state: None,
            burn_admission: false,
        }
    }
}

/// What one shard did over the tier's lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// The shard's node name (`shard-{i}`).
    pub name: String,
    /// Requests the worker applied.
    pub ops_applied: u64,
    /// The store's final WAL operation count.
    pub store_ops: u64,
    /// Trigger firings across the shard's objects.
    pub trigger_firings: u64,
    /// Crash points executed on this shard.
    pub recoveries: u64,
    /// Recoveries whose WAL replay was byte-identical to the pre-crash
    /// export.
    pub recoveries_byte_identical: u64,
    /// Recoveries that diverged (must stay zero).
    pub recovery_mismatches: u64,
    /// The shard's sectioned raw state export.
    pub export_raw: String,
}

/// The tier's final report, produced by [`ServeTier::finish`].
#[derive(Debug, Clone, PartialEq)]
pub struct TierReport {
    /// One summary per shard, in shard order.
    pub shards: Vec<ShardSummary>,
    /// Requests shed by admission control over the tier's lifetime.
    pub shed_total: u64,
}

impl TierReport {
    /// Total requests applied across shards.
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.ops_applied).sum()
    }

    /// Per-shard applied-request counts, in shard order.
    pub fn per_shard_ops(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.ops_applied).collect()
    }

    /// The canonical merged state export — byte-comparable across shard
    /// counts (see [`merge_canonical_exports`]).
    pub fn canonical_state(&self) -> String {
        let raws: Vec<String> = self.shards.iter().map(|s| s.export_raw.clone()).collect();
        merge_canonical_exports(&raws)
    }
}

/// One message on a shard's mailbox.
enum ShardMsg {
    /// A data-plane request, its reply channel, and the clock reading at
    /// the admission edge — the worker's wakeup time minus this is the
    /// request's queue wait, the half of end-to-end latency that blames
    /// overload rather than slow service.
    Op { req: ServeRequest, reply: Sender<ServeResponse>, enqueued_ms: f64 },
    /// Control-plane clock broadcast; acks on `done`.
    Advance { ticks: u64, done: Sender<()> },
    /// Test/bench hook: park the worker until `release` disconnects, so a
    /// burst against a deliberately-stalled shard is deterministic.
    Hold { entered: Sender<()>, release: Receiver<()> },
}

/// A reply the caller has not collected yet — lets tests and load
/// generators pipeline submissions past a slow shard.
#[derive(Debug)]
pub struct Pending {
    shard: usize,
    rx: Receiver<ServeResponse>,
}

impl Pending {
    /// Blocks until the owning shard replies.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShardUnavailable`] when the worker stopped before
    /// replying.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShardUnavailable { shard: self.shard })
    }
}

/// Guard returned by [`ServeTier::hold_shard`]; dropping it (or calling
/// [`HoldGuard::release`]) unparks the worker.
#[derive(Debug)]
pub struct HoldGuard {
    _release: Sender<()>,
}

impl HoldGuard {
    /// Unparks the held worker.
    pub fn release(self) {}
}

/// Per-worker cached instrumentation.
struct WorkerMetrics {
    ops: Arc<Counter>,
    batches: Arc<Counter>,
    batch_size: Arc<Histogram>,
    depth: Arc<Gauge>,
    recoveries: Arc<Counter>,
    byte_identical: Arc<Counter>,
    mismatches: Arc<Counter>,
    /// Queue-wait decomposition: time between admission and the worker
    /// picking the request up — aggregate plus this shard's labeled split
    /// (`coda_serve_queue_wait_ms{shard="shard-N"}`).
    queue_wait: Arc<Histogram>,
    queue_wait_shard: Arc<Histogram>,
    /// Service-time decomposition: time inside `ShardCore::apply`.
    service: Arc<Histogram>,
    service_shard: Arc<Histogram>,
}

/// What a worker thread hands back when its mailbox closes.
struct ShardState {
    core: ShardCore,
    ops_applied: u64,
    recoveries: u64,
    recoveries_byte_identical: u64,
    recovery_mismatches: u64,
}

/// The running tier.
pub struct ServeTier {
    router: ShardRouter,
    mailboxes: Vec<SyncSender<ShardMsg>>,
    workers: Vec<JoinHandle<ShardState>>,
    shed: Arc<AtomicU64>,
    shed_counter: Option<Arc<Counter>>,
    depth_gauge: Option<Arc<Gauge>>,
    burn_state: Option<Arc<BurnState>>,
    burn_admission: bool,
    burn_shed_counter: Option<Arc<Counter>>,
    /// Clock source for the queue-wait decomposition (admission stamps).
    obs: Option<Obs>,
}

impl ServeTier {
    /// Starts `cfg.n_shards` worker threads, uninstrumented.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards`, `queue_capacity` or `batch_max` is zero.
    pub fn start(cfg: &ServeConfig) -> Self {
        Self::start_obs(cfg, None)
    }

    /// Starts the tier with optional observability: shed/depth/batch/op
    /// counts and recovery accounting flow into the registry under
    /// `coda_serve_*` names.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards`, `queue_capacity` or `batch_max` is zero.
    pub fn start_obs(cfg: &ServeConfig, obs: Option<&Obs>) -> Self {
        assert!(cfg.n_shards > 0, "need at least one shard");
        assert!(cfg.queue_capacity > 0, "need a nonzero mailbox");
        assert!(cfg.batch_max > 0, "need a nonzero batch cap");
        let router = ShardRouter::new(cfg.n_shards);
        let mut mailboxes = Vec::with_capacity(cfg.n_shards);
        let mut workers = Vec::with_capacity(cfg.n_shards);
        for i in 0..cfg.n_shards {
            let name = format!("shard-{i}");
            let (tx, rx) = mpsc::sync_channel::<ShardMsg>(cfg.queue_capacity);
            let mut core =
                ShardCore::new(&name, cfg.history_depth, cfg.snapshot_every, cfg.trigger);
            if let Some(o) = obs {
                core.attach_obs(o.clone());
            }
            let metrics = obs.map(|o| WorkerMetrics {
                ops: o.registry().counter("coda_serve_ops_total"),
                batches: o.registry().counter("coda_serve_batches"),
                batch_size: o.registry().histogram("coda_serve_batch_size", BATCH_BOUNDS),
                depth: o.registry().gauge("coda_serve_queue_depth"),
                recoveries: o.registry().counter("coda_serve_recoveries"),
                byte_identical: o.registry().counter("coda_serve_recoveries_byte_identical"),
                mismatches: o.registry().counter("coda_serve_recovery_mismatches"),
                queue_wait: o.registry().histogram("coda_serve_queue_wait_ms", DEFAULT_MS_BOUNDS),
                queue_wait_shard: o.registry().histogram(
                    &labeled_name("coda_serve_queue_wait_ms", "shard", &name),
                    DEFAULT_MS_BOUNDS,
                ),
                service: o.registry().histogram("coda_serve_service_ms", DEFAULT_MS_BOUNDS),
                service_shard: o.registry().histogram(
                    &labeled_name("coda_serve_service_ms", "shard", &name),
                    DEFAULT_MS_BOUNDS,
                ),
            });
            // this shard's crash points, in plan order (each fires once)
            let points: Vec<u64> =
                cfg.plan.points().iter().filter(|p| p.node == name).map(|p| p.at_op).collect();
            let batch_max = cfg.batch_max;
            let worker_obs = obs.cloned();
            workers.push(std::thread::spawn(move || {
                worker_loop(core, rx, batch_max, points, metrics, worker_obs)
            }));
            mailboxes.push(tx);
        }
        ServeTier {
            router,
            mailboxes,
            workers,
            shed: Arc::new(AtomicU64::new(0)),
            shed_counter: obs.map(|o| o.registry().counter("coda_serve_shed_total")),
            depth_gauge: obs.map(|o| o.registry().gauge("coda_serve_queue_depth")),
            burn_state: cfg.burn_state.clone(),
            burn_admission: cfg.burn_admission,
            burn_shed_counter: obs.map(|o| o.registry().counter("coda_serve_burn_shed_total")),
            obs: obs.cloned(),
        }
    }

    /// The shard count.
    pub fn n_shards(&self) -> usize {
        self.router.n_shards()
    }

    /// Requests shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Routes and enqueues `req` without waiting for the reply. This *is*
    /// the admission-control edge: a full mailbox sheds immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the owning shard's bounded mailbox
    /// is full; [`ServeError::ShardUnavailable`] when its worker stopped.
    pub fn submit_nowait(&self, req: ServeRequest) -> Result<Pending, ServeError> {
        let shard = self.router.route(&req);
        // SLO-burn back-pressure: when opted in and the attached burn state
        // reports an active breach, shed before enqueueing — the tier
        // trades availability for recovery headroom. Observational mode
        // (the default) never touches this branch.
        if self.burn_admission {
            if let Some(state) = &self.burn_state {
                if state.breached() {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    if let Some(c) = &self.shed_counter {
                        c.inc();
                    }
                    if let Some(c) = &self.burn_shed_counter {
                        c.inc();
                    }
                    return Err(ServeError::Overloaded { shard });
                }
            }
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let enqueued_ms = self.obs.as_ref().map_or(0.0, Obs::now_ms);
        match self.mailboxes[shard].try_send(ShardMsg::Op { req, reply: reply_tx, enqueued_ms }) {
            Ok(()) => {
                if let Some(g) = &self.depth_gauge {
                    g.add(1.0);
                }
                Ok(Pending { shard, rx: reply_rx })
            }
            Err(TrySendError::Full(_)) => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = &self.shed_counter {
                    c.inc();
                }
                Err(ServeError::Overloaded { shard })
            }
            Err(TrySendError::Disconnected(_)) => Err(ServeError::ShardUnavailable { shard }),
        }
    }

    /// Routes `req` to its shard and waits for the reply (closed loop).
    ///
    /// # Errors
    ///
    /// Same as [`ServeTier::submit_nowait`], plus
    /// [`ServeError::ShardUnavailable`] if the worker stops mid-request.
    pub fn submit(&self, req: ServeRequest) -> Result<ServeResponse, ServeError> {
        self.submit_nowait(req)?.wait()
    }

    /// Control-plane clock broadcast: advances every shard's store and
    /// DARR clocks by `ticks`, blocking until all shards applied it, so
    /// logical clocks stay equal tier-wide. Control traffic is always
    /// admitted (it uses blocking sends, not `try_send`).
    pub fn advance_clock(&self, ticks: u64) {
        let mut acks = Vec::with_capacity(self.mailboxes.len());
        for tx in &self.mailboxes {
            let (done_tx, done_rx) = mpsc::channel();
            if tx.send(ShardMsg::Advance { ticks, done: done_tx }).is_ok() {
                acks.push(done_rx);
            }
        }
        for rx in acks {
            let _ = rx.recv();
        }
    }

    /// Test/bench hook: parks shard `shard`'s worker after it drains its
    /// current message, returning once the worker is provably parked. While
    /// held, the mailbox fills and admission control is observable
    /// deterministically. Dropping the guard unparks the worker.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn hold_shard(&self, shard: usize) -> HoldGuard {
        let (entered_tx, entered_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let msg = ShardMsg::Hold { entered: entered_tx, release: release_rx };
        if self.mailboxes[shard].send(msg).is_ok() {
            let _ = entered_rx.recv();
        }
        HoldGuard { _release: release_tx }
    }

    /// Shuts the tier down: closes every mailbox, joins every worker, and
    /// returns the per-shard summaries plus the canonical state they
    /// carry.
    pub fn finish(self) -> TierReport {
        drop(self.mailboxes);
        let mut shards = Vec::with_capacity(self.workers.len());
        for handle in self.workers {
            if let Ok(state) = handle.join() {
                shards.push(ShardSummary {
                    name: state.core.name().to_string(),
                    ops_applied: state.ops_applied,
                    store_ops: state.core.ops(),
                    trigger_firings: state.core.trigger_firings(),
                    recoveries: state.recoveries,
                    recoveries_byte_identical: state.recoveries_byte_identical,
                    recovery_mismatches: state.recovery_mismatches,
                    export_raw: state.core.export_raw(),
                });
            }
        }
        TierReport { shards, shed_total: self.shed.load(Ordering::Relaxed) }
    }
}

/// The worker loop: blocking-recv one message, opportunistically drain up
/// to `batch_max` in the same wakeup, apply in arrival order, fire any due
/// crash points, reply. Returns the shard's final state when the mailbox
/// closes.
fn worker_loop(
    mut core: ShardCore,
    rx: Receiver<ShardMsg>,
    batch_max: usize,
    points: Vec<u64>,
    metrics: Option<WorkerMetrics>,
    obs: Option<Obs>,
) -> ShardState {
    let mut fired = vec![false; points.len()];
    let mut state_ops = 0u64;
    let mut recoveries = 0u64;
    let mut byte_identical = 0u64;
    let mut mismatches = 0u64;
    loop {
        let Ok(first) = rx.recv() else { break };
        let mut batch = vec![first];
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(msg) => batch.push(msg),
                Err(_) => break,
            }
        }
        let n_ops = batch.iter().filter(|m| matches!(m, ShardMsg::Op { .. })).count();
        if let Some(m) = &metrics {
            if n_ops > 0 {
                m.batches.inc();
                m.batch_size.observe(n_ops as f64);
                m.depth.add(-(n_ops as f64));
            }
        }
        for msg in batch {
            match msg {
                ShardMsg::Op { req, reply, enqueued_ms } => {
                    // queue-wait vs service-time decomposition: wait is the
                    // admission-to-pickup gap (overload signature), service
                    // is the time inside apply (slow-operator signature)
                    let picked_up_ms = obs.as_ref().map_or(0.0, Obs::now_ms);
                    let resp = core.apply(req);
                    state_ops += 1;
                    if let Some(m) = &metrics {
                        m.ops.inc();
                        let wait = (picked_up_ms - enqueued_ms).max(0.0);
                        m.queue_wait.observe(wait);
                        m.queue_wait_shard.observe(wait);
                        let done_ms = obs.as_ref().map_or(picked_up_ms, Obs::now_ms);
                        let service = (done_ms - picked_up_ms).max(0.0);
                        m.service.observe(service);
                        m.service_shard.observe(service);
                    }
                    let _ = reply.send(resp);
                    // crash points key on the WAL operation count, exactly
                    // like the PR-6 recovery driver
                    for (i, &at_op) in points.iter().enumerate() {
                        if !fired[i] && core.ops() >= at_op {
                            fired[i] = true;
                            let (_, ok) = core.crash_recover(obs.as_ref());
                            recoveries += 1;
                            if ok {
                                byte_identical += 1;
                            } else {
                                mismatches += 1;
                            }
                            if let Some(m) = &metrics {
                                m.recoveries.inc();
                                if ok {
                                    m.byte_identical.inc();
                                } else {
                                    m.mismatches.inc();
                                }
                            }
                        }
                    }
                }
                ShardMsg::Advance { ticks, done } => {
                    core.advance_clock(ticks);
                    let _ = done.send(());
                }
                ShardMsg::Hold { entered, release } => {
                    let _ = entered.send(());
                    let _ = release.recv(); // parked until the guard drops
                }
            }
        }
    }
    ShardState {
        core,
        ops_applied: state_ops,
        recoveries,
        recoveries_byte_identical: byte_identical,
        recovery_mismatches: mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use coda_darr::{ClaimOutcome, ComputationKey};

    fn put(id: &str, fill: u8) -> ServeRequest {
        ServeRequest::Put { id: id.to_string(), data: Bytes::from(vec![fill; 64]) }
    }

    #[test]
    fn requests_route_and_apply_across_shards() {
        let tier = ServeTier::start(&ServeConfig { n_shards: 4, ..ServeConfig::default() });
        for i in 0..40 {
            let ServeResponse::Put { version, .. } =
                tier.submit(put(&format!("obj-{i}"), i as u8)).expect("admitted")
            else {
                panic!("put answers Put")
            };
            assert_eq!(version, 1);
        }
        let key = ComputationKey::new("ds", 1, "p1", "kfold(3)", "rmse");
        let ServeResponse::Claim(ClaimOutcome::Claimed) = tier
            .submit(ServeRequest::Claim { key: key.clone(), client: "c0".into(), duration: 50 })
            .expect("admitted")
        else {
            panic!("first claim wins")
        };
        let ServeResponse::Claim(ClaimOutcome::HeldBy(owner)) = tier
            .submit(ServeRequest::Claim { key, client: "c1".into(), duration: 50 })
            .expect("admitted")
        else {
            panic!("second claim is refused")
        };
        assert_eq!(owner, "c0");
        let report = tier.finish();
        assert_eq!(report.total_ops(), 42);
        assert!(report.shards.iter().all(|s| s.ops_applied > 0), "spread: {report:?}");
        assert_eq!(report.shed_total, 0);
    }

    /// Satellite: queue-full load shed is a typed error with exact
    /// counters, and a drained queue resumes admission.
    #[test]
    fn admission_control_sheds_exactly_and_resumes() {
        let obs = Obs::deterministic();
        let cfg = ServeConfig { n_shards: 1, queue_capacity: 4, ..ServeConfig::default() };
        let tier = ServeTier::start_obs(&cfg, Some(&obs));
        let hold = tier.hold_shard(0);

        // deterministic burst: 4 fit the mailbox, the next 3 must shed
        let mut pendings = Vec::new();
        for i in 0..4 {
            pendings.push(tier.submit_nowait(put(&format!("o{i}"), 1)).expect("fits the queue"));
        }
        for i in 0..3 {
            let err = tier.submit_nowait(put(&format!("x{i}"), 1));
            assert_eq!(err.unwrap_err(), ServeError::Overloaded { shard: 0 }, "typed, not silent");
        }
        assert_eq!(tier.shed_total(), 3, "every shed is counted exactly");
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("coda_serve_shed_total"), 3);
        let depth = obs.registry().gauge("coda_serve_queue_depth").get();
        assert!((depth - 4.0).abs() < f64::EPSILON, "queue depth must be exact, got {depth}");

        // drain: release the worker, collect every queued reply
        hold.release();
        for p in pendings {
            let ServeResponse::Put { version, .. } = p.wait().expect("queued op completes") else {
                panic!("put answers Put")
            };
            assert_eq!(version, 1);
        }
        // a drained queue resumes admission
        let ServeResponse::Put { .. } = tier.submit(put("resumed", 2)).expect("admission resumed")
        else {
            panic!("put answers Put")
        };
        let depth = obs.registry().gauge("coda_serve_queue_depth").get();
        assert!(depth.abs() < f64::EPSILON, "drained queue depth must return to 0, got {depth}");
        assert_eq!(tier.shed_total(), 3, "no new sheds after the drain");
        let report = tier.finish();
        assert_eq!(report.shed_total, 3);
        assert_eq!(report.total_ops(), 5);
    }

    /// Tentpole equivalence gate: attaching a burn state WITHOUT opting
    /// into burn admission must reproduce the exact shed counts of the
    /// hook-free tier, even while the state screams "breached".
    #[test]
    fn an_observational_burn_hook_changes_nothing() {
        let obs = Obs::deterministic();
        let burn = Arc::new(BurnState::new());
        burn.update(9.0, true); // breached the whole time — and ignored
        let cfg = ServeConfig {
            n_shards: 1,
            queue_capacity: 4,
            burn_state: Some(burn),
            burn_admission: false,
            ..ServeConfig::default()
        };
        let tier = ServeTier::start_obs(&cfg, Some(&obs));
        let hold = tier.hold_shard(0);
        let mut pendings = Vec::new();
        for i in 0..4 {
            pendings.push(tier.submit_nowait(put(&format!("o{i}"), 1)).expect("fits the queue"));
        }
        for i in 0..3 {
            let err = tier.submit_nowait(put(&format!("x{i}"), 1));
            assert_eq!(err.unwrap_err(), ServeError::Overloaded { shard: 0 });
        }
        hold.release();
        for p in pendings {
            p.wait().expect("queued op completes");
        }
        // byte-for-byte the queue-full scenario: 3 sheds, none burn-driven
        assert_eq!(tier.shed_total(), 3);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("coda_serve_shed_total"), 3);
        assert_eq!(snap.counter("coda_serve_burn_shed_total"), 0, "observational hooks never shed");
        let report = tier.finish();
        assert_eq!(report.total_ops(), 4);
        assert_eq!(report.shed_total, 3);
    }

    /// With admission opted in, a breached burn state sheds at the edge
    /// (typed error + dedicated counter) and clears the moment the SLO
    /// recovers — no queue interaction required.
    #[test]
    fn burn_admission_sheds_while_breached_and_recovers() {
        let obs = Obs::deterministic();
        let burn = Arc::new(BurnState::new());
        let cfg = ServeConfig {
            n_shards: 1,
            queue_capacity: 8,
            burn_state: Some(burn.clone()),
            burn_admission: true,
            ..ServeConfig::default()
        };
        let tier = ServeTier::start_obs(&cfg, Some(&obs));

        // healthy: admits normally
        tier.submit(put("before", 1)).expect("healthy SLO admits");

        // breached: every new request sheds before touching a mailbox
        burn.update(4.0, true);
        for i in 0..3 {
            let err = tier.submit_nowait(put(&format!("b{i}"), 1));
            assert_eq!(err.unwrap_err(), ServeError::Overloaded { shard: 0 });
        }
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("coda_serve_burn_shed_total"), 3);
        assert_eq!(snap.counter("coda_serve_shed_total"), 3, "burn sheds count in the shed total");

        // recovered: admission resumes immediately
        burn.update(0.2, false);
        tier.submit(put("after", 2)).expect("recovered SLO admits");
        let report = tier.finish();
        assert_eq!(report.total_ops(), 2);
        assert_eq!(report.shed_total, 3);
    }

    #[test]
    fn batching_coalesces_a_backlog() {
        let obs = Obs::deterministic();
        let cfg =
            ServeConfig { n_shards: 1, queue_capacity: 32, batch_max: 8, ..ServeConfig::default() };
        let tier = ServeTier::start_obs(&cfg, Some(&obs));
        let hold = tier.hold_shard(0);
        let pendings: Vec<Pending> =
            (0..16).map(|i| tier.submit_nowait(put(&format!("o{i}"), 1)).expect("fits")).collect();
        hold.release();
        for p in pendings {
            p.wait().expect("completes");
        }
        let tier_report = tier.finish();
        assert_eq!(tier_report.total_ops(), 16);
        let snap = obs.registry().snapshot();
        let batches = snap.counter("coda_serve_batches");
        assert!(batches < 16, "16 queued ops must coalesce into fewer wakeups, got {batches}");
        assert_eq!(snap.counter("coda_serve_ops_total"), 16);
    }

    /// Tentpole: the latency decomposition splits queue wait (admission →
    /// pickup) from service time (inside apply), aggregate and per-shard,
    /// deterministically under a manual clock — the signal `diagnose` uses
    /// to tell an overloaded shard from a slow operator.
    #[test]
    fn queue_wait_vs_service_decomposition_is_deterministic() {
        let obs = Obs::deterministic();
        let cfg = ServeConfig { n_shards: 2, queue_capacity: 8, ..ServeConfig::default() };
        let tier = ServeTier::start_obs(&cfg, Some(&obs));

        // a closed-loop op on shard 1: picked up at the same logical time
        // it was admitted, so wait and service are exactly zero
        let mut i = 0;
        let shard1_req = loop {
            let req = put(&format!("s1-{i}"), 1);
            i += 1;
            if tier.router.route(&req) == 1 {
                break req;
            }
        };
        tier.submit(shard1_req).expect("admitted");

        // three ops queue against a held shard 0, then the clock advances
        // 40 ms before the worker drains: each waited exactly 40 ms
        let hold = tier.hold_shard(0);
        let mut pendings = Vec::new();
        while pendings.len() < 3 {
            let req = put(&format!("s0-{i}"), 1);
            i += 1;
            if tier.router.route(&req) != 0 {
                continue;
            }
            pendings.push(tier.submit_nowait(req).expect("fits the queue"));
        }
        obs.sync_manual_ms(40.0);
        hold.release();
        for p in pendings {
            p.wait().expect("queued op completes");
        }

        let snap = obs.registry().snapshot();
        let wait = &snap.histograms["coda_serve_queue_wait_ms"];
        assert_eq!(wait.count, 4);
        assert!((wait.sum - 120.0).abs() < 1e-9, "3 held ops x 40 ms: {wait:?}");
        let wait0 = &snap.histograms[&labeled_name("coda_serve_queue_wait_ms", "shard", "shard-0")];
        assert_eq!(wait0.count, 3);
        assert!((wait0.sum - 120.0).abs() < 1e-9, "the held shard owns all the wait");
        let wait1 = &snap.histograms[&labeled_name("coda_serve_queue_wait_ms", "shard", "shard-1")];
        assert_eq!(wait1.count, 1);
        assert_eq!(wait1.sum, 0.0, "closed-loop shard-1 op never waited");
        let service = &snap.histograms["coda_serve_service_ms"];
        assert_eq!(service.count, 4);
        assert_eq!(service.sum, 0.0, "the manual clock never moves inside apply");
        let report = tier.finish();
        assert_eq!(report.total_ops(), 4);
    }

    #[test]
    fn advance_clock_keeps_every_shard_in_lockstep() {
        let tier = ServeTier::start(&ServeConfig { n_shards: 3, ..ServeConfig::default() });
        for i in 0..9 {
            tier.submit(put(&format!("obj-{i}"), 3)).expect("admitted");
        }
        tier.advance_clock(11);
        let report = tier.finish();
        let canonical = report.canonical_state();
        assert!(canonical.contains("clock=11"), "clocks must agree: {canonical}");
        assert!(!canonical.contains("mixed"), "no shard may lag the broadcast");
    }

    #[test]
    fn crash_plan_points_fire_per_shard_and_recover_byte_identically() {
        let obs = Obs::deterministic();
        let cfg = ServeConfig {
            n_shards: 2,
            snapshot_every: 3,
            plan: CrashPlan::new().with_crash_at("shard-0", 4, Some(0.0)),
            ..ServeConfig::default()
        };
        let tier = ServeTier::start_obs(&cfg, Some(&obs));
        for i in 0..24 {
            tier.submit(put(&format!("obj-{i}"), i as u8)).expect("admitted");
        }
        let report = tier.finish();
        let s0 = &report.shards[0];
        assert_eq!(s0.recoveries, 1, "the plan's point must fire on shard-0");
        assert_eq!(s0.recoveries_byte_identical, 1, "WAL replay must be exact");
        assert_eq!(s0.recovery_mismatches, 0);
        assert_eq!(report.shards[1].recoveries, 0, "shard-1 was never scheduled");
        assert_eq!(obs.registry().snapshot().counter("coda_serve_recoveries_byte_identical"), 1);
    }
}
