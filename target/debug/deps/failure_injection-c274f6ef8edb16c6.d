/root/repo/target/debug/deps/failure_injection-c274f6ef8edb16c6.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-c274f6ef8edb16c6: tests/failure_injection.rs

tests/failure_injection.rs:
