//! A6 bench: neural substrate training throughput — the paper's explicit
//! claim that standard DNNs are "much faster" than LSTMs, with CNNs in
//! between (§IV-C2/3).

use coda_data::{synth, Estimator, Transformer};
use coda_timeseries::{
    CascadedWindows, CnnForecaster, DnnForecaster, LstmForecaster, SeriesData, WaveNetForecaster,
    WindowConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_forecaster_training(c: &mut Criterion) {
    let p = 16;
    let series = SeriesData::univariate(synth::trend_seasonal_series(200, 16.0, 0.5, 1));
    let windowed =
        CascadedWindows::new(WindowConfig::new(p, 1)).fit_transform(&series.to_dataset()).unwrap();
    let mut group = c.benchmark_group("nn/train_5_epochs");
    group.sample_size(10);
    group.bench_function("dnn_simple", |b| {
        b.iter(|| {
            let mut m = DnnForecaster::simple(p).with_epochs(5);
            m.fit(&windowed).unwrap();
        })
    });
    group.bench_function("cnn_simple", |b| {
        b.iter(|| {
            let mut m = CnnForecaster::simple(p, 1).with_epochs(5);
            m.fit(&windowed).unwrap();
        })
    });
    group.bench_function("wavenet", |b| {
        b.iter(|| {
            let mut m = WaveNetForecaster::new(p, 1).with_epochs(5);
            m.fit(&windowed).unwrap();
        })
    });
    group.bench_function("lstm_simple", |b| {
        b.iter(|| {
            let mut m = LstmForecaster::simple(p, 1).with_epochs(5);
            m.fit(&windowed).unwrap();
        })
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let p = 16;
    let series = SeriesData::univariate(synth::trend_seasonal_series(200, 16.0, 0.5, 2));
    let windowed =
        CascadedWindows::new(WindowConfig::new(p, 1)).fit_transform(&series.to_dataset()).unwrap();
    let mut dnn = DnnForecaster::simple(p).with_epochs(3);
    dnn.fit(&windowed).unwrap();
    let mut lstm = LstmForecaster::simple(p, 1).with_epochs(3);
    lstm.fit(&windowed).unwrap();
    let mut group = c.benchmark_group("nn/predict_184_windows");
    group.bench_function("dnn_simple", |b| b.iter(|| dnn.predict(&windowed).unwrap()));
    group.bench_function("lstm_simple", |b| b.iter(|| lstm.predict(&windowed).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_forecaster_training, bench_inference);
criterion_main!(benches);
