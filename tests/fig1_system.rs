//! The complete Fig. 1 scenario in one test: data lives in a partitioned,
//! versioned data tier; geographically distributed clients decide between
//! local and cloud execution, cooperate through the DARR, route special
//! capabilities to AI web services, keep caches consistent through deltas,
//! and retrain when the data drifts enough to fire the recompute trigger.

use bytes::Bytes;
use coda::cluster::webservice::route_capability;
use coda::cluster::{
    run_cooperative, AnalyticsTask, ComputeNode, Placement, Scheduler, SimNetwork, SimWebService,
};
use coda::data::{synth, CvStrategy, Dataset, Metric, NoOp};
use coda::graph::TegBuilder;
use coda::ml::{KnnRegressor, LinearRegression, RandomForestRegressor, StandardScaler};
use coda::store::{ChangeMonitor, DataTier, RecomputeTrigger};

#[test]
fn full_fig1_scenario() {
    // --- the data tier: a dataset object distributed over home stores ----
    let mut tier = DataTier::new(3, 4);
    let dataset = synth::friedman1(200, 6, 0.5, 77);
    let blob = dataset.to_bytes();
    let (v1, _) = tier.put("plant-telemetry", Bytes::from(blob.clone()));
    assert_eq!(v1, 1);
    let home = tier.home_name("plant-telemetry").to_string();

    // a client pulls the dataset from its home store and reconstructs it
    let reply = tier.fetch("plant-telemetry", None).expect("object exists");
    let pulled = match reply {
        coda::store::FetchReply::Full { data, .. } => Dataset::from_bytes(&data).unwrap(),
        other => panic!("first pull must be full, got {other:?}"),
    };
    assert_eq!(pulled.n_samples(), 200);

    // --- placement: should this client run the grid locally or in the cloud?
    let client = ComputeNode::client("plant-edge", 1.0);
    let cloud = ComputeNode::cloud("region-dc", 4.0, 8);
    let mut net = SimNetwork::new(20.0, 5_000.0);
    let task =
        AnalyticsTask { n_subtasks: 8, work_per_subtask: 400.0, input_bytes: blob.len() as u64 };
    let decision = Scheduler::place(&task, &client, &cloud, &net);
    assert_eq!(decision.placement, Placement::Cloud, "fast link + 8 VMs favours the cloud");
    let realized = Scheduler::execute(&decision, &task, &client, &cloud, &mut net);
    assert!(realized < client.execution_time(&task));

    // --- cooperative evaluation of the shared graph through the DARR ------
    let graph = TegBuilder::new()
        .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
        .add_models(vec![
            Box::new(LinearRegression::new()),
            Box::new(KnnRegressor::new(5)),
            Box::new(RandomForestRegressor::new(8)),
        ])
        .create_graph()
        .unwrap();
    let coop = run_cooperative(&graph, &pulled, CvStrategy::kfold(3), Metric::Rmse, 3, true);
    assert_eq!(coop.total_evaluations, coop.n_pipelines, "DARR eliminates redundancy");
    assert_eq!(coop.reused_results, 2 * coop.n_pipelines);

    // --- AI web services complement local capabilities (Fig. 1) ----------
    let mut services = vec![
        SimWebService::new("watson", &["nlu", "speech"], 80.0, 0.02, 100),
        SimWebService::new("cloud-vision", &["vision"], 60.0, 0.05, 10),
    ];
    let idx = route_capability(&services, "nlu").expect("nlu offered");
    assert_eq!(services[idx].name(), "watson");
    assert!(services[idx].call("nlu").is_some());
    assert!(route_capability(&services, "translation").is_none());

    // --- updates arrive; the trigger decides when to recompute ------------
    let mut monitor = ChangeMonitor::new(RecomputeTrigger::UpdateBytes(2 * blob.len() as u64));
    let mut recomputed = false;
    for round in 0..3u8 {
        let updated = synth::friedman1(200, 6, 0.5, 77 + round as u64 + 1);
        let bytes = updated.to_bytes();
        let n = bytes.len() as u64;
        tier.put("plant-telemetry", Bytes::from(bytes));
        if monitor.record_update(n, 0.0) {
            recomputed = true;
            // recomputation consults the tier's latest version
            let latest = tier.fetch("plant-telemetry", Some(v1)).expect("exists");
            assert!(latest.version() > v1);
        }
    }
    assert!(recomputed, "2x-size threshold must fire within three full rewrites");
    assert_eq!(tier.home_name("plant-telemetry"), home, "home store never moves");
}
