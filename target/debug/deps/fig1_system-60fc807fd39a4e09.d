/root/repo/target/debug/deps/fig1_system-60fc807fd39a4e09.d: tests/fig1_system.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_system-60fc807fd39a4e09.rmeta: tests/fig1_system.rs Cargo.toml

tests/fig1_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
