/root/repo/target/release/deps/coda_store-a271e7fe5a623bd9.d: crates/store/src/lib.rs crates/store/src/client.rs crates/store/src/delta.rs crates/store/src/home.rs crates/store/src/lease.rs crates/store/src/replication.rs crates/store/src/tier.rs crates/store/src/trigger.rs

/root/repo/target/release/deps/libcoda_store-a271e7fe5a623bd9.rlib: crates/store/src/lib.rs crates/store/src/client.rs crates/store/src/delta.rs crates/store/src/home.rs crates/store/src/lease.rs crates/store/src/replication.rs crates/store/src/tier.rs crates/store/src/trigger.rs

/root/repo/target/release/deps/libcoda_store-a271e7fe5a623bd9.rmeta: crates/store/src/lib.rs crates/store/src/client.rs crates/store/src/delta.rs crates/store/src/home.rs crates/store/src/lease.rs crates/store/src/replication.rs crates/store/src/tier.rs crates/store/src/trigger.rs

crates/store/src/lib.rs:
crates/store/src/client.rs:
crates/store/src/delta.rs:
crates/store/src/home.rs:
crates/store/src/lease.rs:
crates/store/src/replication.rs:
crates/store/src/tier.rs:
crates/store/src/trigger.rs:
