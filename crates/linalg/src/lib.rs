//! Dense linear-algebra kernels used throughout `coda`.
//!
//! This crate is deliberately small and dependency-free: it provides the
//! row-major [`Matrix`] type plus the decompositions the ML stack needs
//! (Cholesky, LU, QR, symmetric eigendecomposition) and a handful of
//! vector/statistics helpers.
//!
//! # Examples
//!
//! ```
//! use coda_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
//! let x = a.solve(&[4.0, 9.0]).unwrap();
//! assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
//! ```

pub mod decomp;
pub mod eigen;
pub mod matrix;
pub mod stats;

pub use decomp::{cholesky, cholesky_solve, lstsq, lu_solve, qr};
pub use eigen::{symmetric_eigen, Eigen};
pub use matrix::{Matrix, MatrixError};
pub use stats::{dot, mean, median, mode_value, norm2, percentile, std_dev, variance};
