//! Deterministic closed-loop load generation for the serving tier.
//!
//! `n_threads` submitter threads each multiplex a slice of the simulated
//! cooperative-client population over one connection to the tier. Every
//! thread runs its own splitmix64 stream seeded from `seed + thread`, so
//! the op sequence each thread issues is a pure function of the config —
//! replaying a seed replays the workload. Object keys are zipf-skewed
//! (precomputed CDF, exponent `zipf_s`): a handful of hot objects absorb
//! most of the traffic, which is what makes batching and admission
//! control earn their keep.
//!
//! The loop is *closed*: a thread submits, waits for the reply (or the
//! typed shed error), records the latency through [`coda_obs::Obs`], and
//! only then issues its next op — so offered load self-limits the way a
//! population of real cooperating clients does.

use std::sync::Arc;

use bytes::Bytes;
use coda_darr::ComputationKey;
use coda_obs::Obs;

use crate::request::{ServeError, ServeRequest, ServeResponse};
use crate::tier::ServeTier;

/// Histogram bounds (ms) for the `coda_serve_latency_ms` family. Every
/// producer of that family must register with these bounds — the registry
/// keeps whichever registration arrives first and silently drops the rest,
/// so a second bounds expression would never take effect (and the
/// `obs_contract` lint rejects it).
pub const SERVE_LATENCY_BOUNDS: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
];

/// Load-generator configuration. Weights are relative integer parts of a
/// put/pull/claim mix; claims that win are followed by a completion, so
/// cooperative dedup shows up in the workload for free.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Workload seed; same seed, same op sequence per thread.
    pub seed: u64,
    /// Simulated cooperative client population (multiplexed over threads).
    pub n_clients: usize,
    /// Operations per submitter thread.
    pub ops_per_thread: usize,
    /// Submitter threads (closed loops).
    pub n_threads: usize,
    /// Distinct object ids.
    pub key_space: usize,
    /// Zipf exponent for key popularity (0 = uniform).
    pub zipf_s: f64,
    /// Payload bytes per put.
    pub payload_len: usize,
    /// Relative weight of puts in the mix.
    pub put_weight: u32,
    /// Relative weight of pulls in the mix.
    pub pull_weight: u32,
    /// Relative weight of claims in the mix.
    pub claim_weight: u32,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            seed: 42,
            n_clients: 100_000,
            ops_per_thread: 25_000,
            n_threads: 4,
            key_space: 512,
            zipf_s: 1.1,
            payload_len: 256,
            put_weight: 4,
            pull_weight: 4,
            claim_weight: 2,
        }
    }
}

/// What a load run did, summed over submitter threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Requests admitted and completed.
    pub completed: u64,
    /// Requests shed by admission control (typed [`ServeError::Overloaded`]).
    pub shed: u64,
    /// Puts completed.
    pub puts: u64,
    /// Pulls completed.
    pub pulls: u64,
    /// Claims completed (any outcome).
    pub claims: u64,
    /// Completions published after won claims.
    pub completions: u64,
    /// Trigger firings observed in put replies.
    pub trigger_fired: u64,
}

/// splitmix64 — the same tiny deterministic PRNG the chaos crates use;
/// no external randomness, no wall clock.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A unit sample in [0, 1).
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Precomputed zipf CDF over `n` ranks with exponent `s`. Sampling is a
/// binary search over the CDF — O(log n) per draw, fully deterministic.
#[derive(Debug, Clone)]
struct ZipfCdf {
    cdf: Vec<f64>,
}

impl ZipfCdf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        for v in &mut cdf {
            *v /= total;
        }
        ZipfCdf { cdf }
    }

    fn sample(&self, state: &mut u64) -> usize {
        let u = unit(state);
        match self.cdf.binary_search_by(|p| match p.partial_cmp(&u) {
            Some(o) => o,
            None => std::cmp::Ordering::Less,
        }) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len().saturating_sub(1)),
        }
    }
}

/// Per-thread accumulator, merged into the [`LoadReport`] at join time.
#[derive(Debug, Default)]
struct ThreadTally {
    completed: u64,
    shed: u64,
    puts: u64,
    pulls: u64,
    claims: u64,
    completions: u64,
    trigger_fired: u64,
}

/// One submitter thread's closed loop.
#[allow(clippy::needless_pass_by_value)]
fn submitter(
    tier: Arc<ServeTier>,
    cfg: LoadGenConfig,
    thread: usize,
    obs: Option<Obs>,
) -> ThreadTally {
    let mut rng = cfg.seed.wrapping_add(thread as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let zipf = ZipfCdf::new(cfg.key_space.max(1), cfg.zipf_s);
    let total_weight = (cfg.put_weight + cfg.pull_weight + cfg.claim_weight).max(1);
    let clients_per_thread = (cfg.n_clients / cfg.n_threads.max(1)).max(1);
    let mut tally = ThreadTally::default();
    let latency =
        obs.as_ref().map(|o| o.registry().histogram("coda_serve_latency_ms", SERVE_LATENCY_BOUNDS));

    for _ in 0..cfg.ops_per_thread {
        let rank = zipf.sample(&mut rng);
        let client_idx =
            thread * clients_per_thread + (splitmix64(&mut rng) as usize) % clients_per_thread;
        let client = format!("client-{client_idx}");
        let roll = (splitmix64(&mut rng) % u64::from(total_weight)) as u32;
        let req = if roll < cfg.put_weight {
            let fill = (splitmix64(&mut rng) & 0xff) as u8;
            ServeRequest::Put {
                id: format!("obj-{rank}"),
                data: Bytes::from(vec![fill; cfg.payload_len]),
            }
        } else if roll < cfg.put_weight + cfg.pull_weight {
            ServeRequest::Pull { id: format!("obj-{rank}"), client_version: None }
        } else {
            ServeRequest::Claim {
                key: ComputationKey::new("serve-ds", 1, &format!("p{rank}"), "kfold(3)", "rmse"),
                client: client.clone(),
                duration: 1_000_000,
            }
        };

        let t0 = obs.as_ref().map(Obs::now_ms);
        let outcome = tier.submit(req);
        if let (Some(h), Some(start), Some(o)) = (&latency, t0, obs.as_ref()) {
            h.observe(o.now_ms() - start);
        }
        match outcome {
            Ok(ServeResponse::Put { trigger_fired, .. }) => {
                tally.completed += 1;
                tally.puts += 1;
                if trigger_fired {
                    tally.trigger_fired += 1;
                }
            }
            Ok(ServeResponse::Pull(_)) => {
                tally.completed += 1;
                tally.pulls += 1;
            }
            Ok(ServeResponse::Claim(outcome)) => {
                tally.completed += 1;
                tally.claims += 1;
                if outcome == coda_darr::ClaimOutcome::Claimed {
                    // the winning client publishes its result, cooperative
                    // style, so later claimers hit AlreadyComputed
                    let score = unit(&mut rng);
                    let done = tier.submit(ServeRequest::Complete {
                        key: ComputationKey::new(
                            "serve-ds",
                            1,
                            &format!("p{rank}"),
                            "kfold(3)",
                            "rmse",
                        ),
                        client,
                        score,
                        fold_scores: vec![score; 3],
                        explanation: format!("rank {rank} by thread {thread}"),
                    });
                    if done.is_ok() {
                        tally.completed += 1;
                        tally.completions += 1;
                    }
                }
            }
            Ok(_) => tally.completed += 1,
            Err(ServeError::Overloaded { .. }) => tally.shed += 1,
            Err(ServeError::ShardUnavailable { .. }) => break,
        }
    }
    tally
}

/// Runs the closed-loop workload against `tier` and sums the per-thread
/// tallies. Deterministic given `cfg` (thread *interleaving* varies, but
/// each thread's op sequence never does).
pub fn run_load(tier: &Arc<ServeTier>, cfg: &LoadGenConfig, obs: Option<&Obs>) -> LoadReport {
    let shed_before = tier.shed_total();
    let mut handles = Vec::with_capacity(cfg.n_threads);
    for t in 0..cfg.n_threads {
        let tier = Arc::clone(tier);
        let cfg = cfg.clone();
        let obs = obs.cloned();
        handles.push(std::thread::spawn(move || submitter(tier, cfg, t, obs)));
    }
    let mut report = LoadReport {
        completed: 0,
        shed: 0,
        puts: 0,
        pulls: 0,
        claims: 0,
        completions: 0,
        trigger_fired: 0,
    };
    for h in handles {
        if let Ok(tally) = h.join() {
            report.completed += tally.completed;
            report.shed += tally.shed;
            report.puts += tally.puts;
            report.pulls += tally.pulls;
            report.claims += tally.claims;
            report.completions += tally.completions;
            report.trigger_fired += tally.trigger_fired;
        }
    }
    // closed-loop submits that shed are also visible tier-side; sanity is
    // cheap, so keep the two books reconciled
    debug_assert!(tier.shed_total() - shed_before >= report.shed);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::ServeConfig;

    #[test]
    fn zipf_cdf_is_monotone_and_skewed() {
        let z = ZipfCdf::new(64, 1.1);
        for w in z.cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        let mut rng = 7u64;
        let mut counts = vec![0usize; 64];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[32] * 2, "rank 0 must be hot: {:?}", &counts[..8]);
    }

    #[test]
    fn same_seed_same_thread_sequence() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..100 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
    }

    #[test]
    fn load_run_completes_and_reconciles() {
        let obs = Obs::deterministic();
        let tier = Arc::new(ServeTier::start_obs(
            &ServeConfig { n_shards: 2, ..ServeConfig::default() },
            Some(&obs),
        ));
        let cfg = LoadGenConfig {
            n_clients: 1_000,
            ops_per_thread: 500,
            n_threads: 2,
            key_space: 32,
            ..LoadGenConfig::default()
        };
        let report = run_load(&tier, &cfg, Some(&obs));
        assert_eq!(report.shed, 0, "closed loop at 2 threads never overruns a 64-deep queue");
        assert!(report.completed >= 1_000, "every op must complete: {report:?}");
        assert!(report.puts > 0 && report.pulls > 0 && report.claims > 0, "mixed: {report:?}");
        let tier_report = match Arc::try_unwrap(tier) {
            Ok(t) => t.finish(),
            Err(_) => panic!("all submitters joined"),
        };
        assert_eq!(tier_report.total_ops(), report.completed);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("coda_serve_ops_total"), report.completed);
    }
}
