/root/repo/target/debug/deps/coda_darr-76e45b23de625a2b.d: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs

/root/repo/target/debug/deps/coda_darr-76e45b23de625a2b: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs

crates/darr/src/lib.rs:
crates/darr/src/coop.rs:
crates/darr/src/record.rs:
crates/darr/src/repo.rs:
