/root/repo/target/debug/deps/experiments-bec4de787233c977.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-bec4de787233c977: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
