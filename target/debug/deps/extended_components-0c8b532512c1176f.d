/root/repo/target/debug/deps/extended_components-0c8b532512c1176f.d: tests/extended_components.rs

/root/repo/target/debug/deps/extended_components-0c8b532512c1176f: tests/extended_components.rs

tests/extended_components.rs:
