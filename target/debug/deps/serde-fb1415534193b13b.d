/root/repo/target/debug/deps/serde-fb1415534193b13b.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-fb1415534193b13b: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
