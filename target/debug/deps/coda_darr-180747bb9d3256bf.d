/root/repo/target/debug/deps/coda_darr-180747bb9d3256bf.d: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs

/root/repo/target/debug/deps/coda_darr-180747bb9d3256bf: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs

crates/darr/src/lib.rs:
crates/darr/src/coop.rs:
crates/darr/src/record.rs:
crates/darr/src/repo.rs:
crates/darr/src/resilient.rs:
