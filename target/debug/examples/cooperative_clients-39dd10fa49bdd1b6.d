/root/repo/target/debug/examples/cooperative_clients-39dd10fa49bdd1b6.d: examples/cooperative_clients.rs Cargo.toml

/root/repo/target/debug/examples/libcooperative_clients-39dd10fa49bdd1b6.rmeta: examples/cooperative_clients.rs Cargo.toml

examples/cooperative_clients.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
