//! The experiment harness: regenerates every table and figure of the paper
//! (see DESIGN.md §4 for the experiment index). Each section prints the
//! paper's claim and the measured result.
//!
//! Run everything:   `cargo run --release -p coda-bench --bin experiments`
//! Run one:          `cargo run --release -p coda-bench --bin experiments -- --exp f3`
//! With metrics:     `cargo run --release -p coda-bench --bin experiments -- --exp d5 --metrics`

use bytes::Bytes;
use coda_bench::{listing1_graph, mutate_fraction, patterned_bytes, print_table, small_graph};
use coda_cluster::{run_cooperative, AnalyticsTask, ComputeNode, Scheduler, SimNetwork};
use coda_core::{Evaluator, Pipeline};
use coda_data::{synth, CvStrategy, Dataset, Metric, Transformer};
use coda_ml::LinearRegression;
use coda_obs::Obs;
use coda_store::{
    CachingClient, ChangeMonitor, DeltaCodec, HomeDataStore, PushMode, RecomputeTrigger,
};
use coda_templates::{
    AnomalyAnalysis, CohortAnalysis, FailurePredictionAnalysis, RootCauseAnalysis,
};
use coda_timeseries::{
    CascadedWindows, FlatWindowing, SeriesData, TimeSeriesPipelineBuilder, TsAsIid, TsAsIs,
    TsEvaluator, WindowConfig,
};

const EXPERIMENTS: &[(&str, &str)] = &[
    ("t1", "Table I: regression modeling-step catalog, exercised end to end"),
    ("t2", "Table II: time-series pipeline catalog, exercised end to end"),
    ("f1", "Fig. 1: local vs cloud placement across latency and VM count"),
    ("f2", "Fig. 2: cooperative analytics through the DARR"),
    ("f3", "Fig. 3: the 36-pipeline example graph"),
    ("f4", "Fig. 4: K-fold cross-validation"),
    ("f5", "Fig. 5: pipeline training/prediction semantics"),
    ("f6", "Figs. 6-10: the windowing transformers' shape laws"),
    ("f11", "Fig. 11: model comparison across series regimes"),
    ("f12", "Fig. 12: TimeSeriesSlidingSplit windows + leakage demo"),
    ("d1", "§III: delta encoding vs full transfer"),
    ("d2", "§III: pull/push/lease propagation costs"),
    ("d3", "§III: recomputation triggers"),
    ("d4", "robustness: cooperative run under injected faults"),
    ("d5", "prefix cache: cached vs uncached TEG evaluation speedup"),
    ("d6", "robustness: crash-stop failure, WAL replay and home failover"),
    ("d7", "serving tier: sharded multi-tenant sustained load (writes BENCH_serving.json)"),
    ("d8", "ops plane: flight recorder, SLO burn rates, exemplar cost profiles (writes OPS_REPORT.json)"),
    ("d9", "incident diagnosis: breach-triggered root-cause attribution vs injected ground truth (writes DIAG_REPORT.json)"),
    ("s1", "§IV-E: the four solution templates"),
    ("s2", "§II: censored failure-time analysis (Kaplan-Meier)"),
    ("a1", "ablation: delta history depth"),
    ("a2", "ablation: evaluator thread scaling"),
    ("a3", "ablation: forecast history window"),
    ("a4", "ablation: nested vs plain cross-validation"),
    ("a5", "ablation: retraining policies under drift"),
    ("a6", "§IV-C: DNN vs LSTM execution speed"),
    ("a7", "selective (successive-halving) vs exhaustive search"),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list" || a == "--help" || a == "-h") {
        println!("coda experiment harness — every table/figure of Iyengar et al., ICDCS 2019");
        println!("usage: experiments [--exp <id>] [--metrics] [--trace-out <path>] [--list]\n");
        println!("  --metrics          collect a unified MetricsRegistry snapshot across the run");
        println!("                     and dump it (Prometheus text + JSON) at the end");
        println!("  --trace-out PATH   trace the run and write a Chrome trace-event JSON file");
        println!("                     (load it at ui.perfetto.dev or chrome://tracing)\n");
        for (id, what) in EXPERIMENTS {
            println!("  {id:<4} {what}");
        }
        return;
    }
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_ascii_lowercase());
    if let Some(o) = &only {
        if !EXPERIMENTS.iter().any(|(id, _)| id == o) {
            eprintln!("unknown experiment id {o}; use --list to see the catalog");
            std::process::exit(2);
        }
    }
    let run = |id: &str| only.as_deref().is_none_or(|o| o == id);
    let trace_out: Option<String> = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_string());
    let obs = (args.iter().any(|a| a == "--metrics") || trace_out.is_some()).then(Obs::wall);

    println!("coda experiment harness — paper: Iyengar et al., ICDCS 2019");
    if run("t1") {
        exp_t1();
    }
    if run("t2") {
        exp_t2();
    }
    if run("f1") {
        exp_f1();
    }
    if run("f2") {
        exp_f2();
    }
    if run("f3") {
        exp_f3();
    }
    if run("f4") {
        exp_f4();
    }
    if run("f5") {
        exp_f5();
    }
    if run("f6") {
        exp_f6_f10();
    }
    if run("f11") {
        exp_f11();
    }
    if run("f12") {
        exp_f12();
    }
    if run("d1") {
        exp_d1();
    }
    if run("d2") {
        exp_d2();
    }
    if run("d3") {
        exp_d3();
    }
    if run("d4") {
        exp_d4(obs.as_ref());
    }
    if run("d5") {
        exp_d5(obs.as_ref());
    }
    if run("d6") {
        exp_d6(obs.as_ref());
    }
    if run("d7") {
        exp_d7(obs.as_ref());
    }
    if run("d8") {
        exp_d8();
    }
    if run("d9") {
        exp_d9();
    }
    if run("s1") {
        exp_s1();
    }
    if run("s2") {
        exp_s2();
    }
    if run("a1") {
        exp_a1();
    }
    if run("a2") {
        exp_a2();
    }
    if run("a3") {
        exp_a3();
    }
    if run("a4") {
        exp_a4();
    }
    if run("a5") {
        exp_a5();
    }
    if run("a6") {
        exp_a6();
    }
    if run("a7") {
        exp_a7();
    }

    if let Some(o) = &obs {
        if args.iter().any(|a| a == "--metrics") {
            println!("\n=== metrics snapshot (prometheus) ===");
            print!("{}", o.registry().render_prometheus());
            let json = o.registry().snapshot().to_json();
            println!("=== metrics snapshot (json) ===");
            println!("{json}");
            let parsed =
                coda_obs::MetricsSnapshot::from_json(&json).expect("snapshot JSON must round-trip");
            if run("d5") {
                assert!(
                    parsed.counter("coda_core_cache_hits") > 0,
                    "a cached evaluation ran, so cache-hit counters must be nonzero"
                );
            }
            if run("d6") {
                assert!(
                    parsed.counter("coda_cluster_failovers_total") > 0,
                    "the no-restart scenario promotes a replica, so failovers must be counted"
                );
                assert!(
                    parsed.counter("coda_darr_claims_reaped_total") > 0,
                    "the dead home's orphaned claim must be reaped and counted"
                );
            }
            if run("d7") {
                assert!(
                    parsed.counter("coda_serve_ops_total") > 0,
                    "the sustained load ran, so serving op counters must be nonzero"
                );
                assert!(
                    parsed.counter("coda_serve_batches") > 0,
                    "backlogged mailboxes must have produced at least one batch"
                );
            }
            println!(
                "metrics: {} counters, {} gauges, {} histograms; JSON snapshot parses back",
                parsed.counters.len(),
                parsed.gauges.len(),
                parsed.histograms.len()
            );
            if !parsed.histograms.is_empty() {
                println!("=== latency quantiles ===");
                for (name, h) in &parsed.histograms {
                    println!(
                        "{name}: p50={:.3} p95={:.3} p99={:.3} ms (count={})",
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                        h.count
                    );
                }
            }
        }
        if let Some(path) = &trace_out {
            let forest = o.forest();
            let chrome = forest.to_chrome_json();
            std::fs::write(path, &chrome).expect("trace file must be writable");
            // self-check: the exported file must load back into an
            // equivalent forest (what Perfetto will see is what we traced)
            let back = coda_obs::TraceForest::from_chrome_json(&chrome)
                .expect("exported trace must parse back");
            assert!(back.same_shape(&forest), "round-tripped trace must preserve the span forest");
            println!("\n=== trace export ===");
            println!(
                "wrote {path}: {} spans in {} traces ({} orphans)",
                forest.len(),
                forest.trace_ids().len(),
                forest.orphans().len()
            );
            for line in forest.render_summary().lines().take(8) {
                println!("{line}");
            }
        }
    }
}

/// T1 — Table I: the regression modeling-step catalog, exercised end to end.
fn exp_t1() {
    let rows = vec![
        vec!["Select Features".into(), "select_k_best (f-stat / corr / mutual-info), pca".into()],
        vec!["Feature Normalization".into(), "minmax_scaler, standard_scaler".into()],
        vec!["Feature Transformation".into(), "pca (covariance eigendecomposition)".into()],
        vec![
            "Model Training".into(),
            "random_forest, mlp_regressor, linear_regression (+tree, knn, gb, ridge)".into(),
        ],
        vec!["Model Evaluation".into(), "k-fold, monte-carlo, train-test, ts-sliding".into()],
        vec!["Model Score".into(), "rmse, mape (+mse, mae, median-ae, rmsle, r2)".into()],
    ];
    print_table("T1 — Table I component catalog (all implemented)", &["Step", "Components"], &rows);
    let ds = synth::friedman1(400, 10, 0.5, 1);
    let report = Evaluator::new(CvStrategy::kfold(5), Metric::Rmse)
        .with_threads(4)
        .evaluate_graph(&listing1_graph(), &ds)
        .expect("graph evaluates");
    let top: Vec<Vec<String>> = report
        .results
        .iter()
        .take(5)
        .map(|r| vec![r.spec.steps.join(" -> "), format!("{:.4}", r.mean_score)])
        .collect();
    print_table("T1 — top-5 paths on friedman1 (rmse, 5-fold)", &["Pipeline", "RMSE"], &top);
    println!("paper: data scientists iterate dozens of combinations; measured: {} paths evaluated automatically", report.results.len());
}

/// T2 — Table II: the time-series pipeline catalog, exercised end to end.
fn exp_t2() {
    let rows = vec![
        vec!["Data Scaling".into(), "minmax, robust, standard, no scaling".into()],
        vec!["Data Preprocessing".into(), "cascaded windows, flat windowing, ts-as-iid, ts-as-is".into()],
        vec![
            "Model Training".into(),
            "temporal: lstm(simple/deep), cnn(simple/deep), wavenet, seriesnet; iid: dnn(simple/deep); statistical: zero, ar, ari".into(),
        ],
        vec!["Model Evaluation".into(), "TimeSeriesSlidingSplit".into()],
        vec!["Model Score".into(), "rmse, mape".into()],
    ];
    print_table(
        "T2 — Table II component catalog (all implemented)",
        &["Step", "Components"],
        &rows,
    );
    let series = SeriesData::univariate(synth::trend_seasonal_series(500, 24.0, 0.4, 2));
    let graph = TimeSeriesPipelineBuilder::new(24, 1, 1)
        .with_deep_variants(false)
        .with_epochs(30)
        .with_seed(2)
        .build()
        .expect("fixed wiring");
    let report = TsEvaluator::sliding(300, 10, 60, 2, Metric::Rmse)
        .with_threads(8)
        .evaluate_graph(&graph, &series)
        .expect("series long enough");
    let top: Vec<Vec<String>> = report
        .results
        .iter()
        .filter(|r| r.is_ok())
        .take(6)
        .map(|r| vec![r.spec.steps.join(" -> "), format!("{:.4}", r.mean_score)])
        .collect();
    print_table(
        "T2 — top paths on trend+seasonal series (rmse, sliding split)",
        &["Pipeline", "RMSE"],
        &top,
    );
}

/// F1 — Fig. 1: local vs cloud placement across network latency and VM count.
fn exp_f1() {
    let client = ComputeNode::client("edge", 1.0);
    let task = AnalyticsTask { n_subtasks: 36, work_per_subtask: 100.0, input_bytes: 2_000_000 };
    let mut rows = Vec::new();
    for latency in [1.0, 10.0, 100.0, 1_000.0, 10_000.0] {
        for vms in [1usize, 4, 16] {
            let cloud = ComputeNode::cloud("dc", 4.0, vms);
            let net = SimNetwork::new(latency, 2_000.0);
            let d = Scheduler::place(&task, &client, &cloud, &net);
            rows.push(vec![
                format!("{latency}"),
                format!("{vms}"),
                format!("{:.0}", d.local_ms),
                d.cloud_ms.map(|c| format!("{c:.0}")).unwrap_or_else(|| "-".into()),
                format!("{:?}", d.placement),
            ]);
        }
    }
    // disconnected case
    let cloud = ComputeNode::cloud("dc", 4.0, 16);
    let mut net = SimNetwork::new(1.0, 2_000.0);
    net.disconnect("edge", "dc");
    let d = Scheduler::place(&task, &client, &cloud, &net);
    rows.push(vec![
        "disconnected".into(),
        "16".into(),
        format!("{:.0}", d.local_ms),
        "-".into(),
        format!("{:?}", d.placement),
    ]);
    print_table(
        "F1 — placement: local vs elastic cloud (36-pipeline grid)",
        &["latency ms", "VMs", "local ms", "cloud ms", "decision"],
        &rows,
    );
    println!("paper: client-side computation avoids latency and survives disconnection; cloud VMs scale out grids. Measured: crossover moves with latency and VM count; disconnection forces Local.");
}

/// F2 — Fig. 2: cooperative analytics through the DARR.
fn exp_f2() {
    let ds = synth::friedman1(250, 6, 0.5, 3);
    let graph = small_graph();
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let without = run_cooperative(&graph, &ds, CvStrategy::kfold(5), Metric::Rmse, n, false);
        let with = run_cooperative(&graph, &ds, CvStrategy::kfold(5), Metric::Rmse, n, true);
        rows.push(vec![
            n.to_string(),
            format!("{}", without.total_evaluations),
            format!("{}", without.wall_ms as u64),
            format!("{}", with.total_evaluations),
            format!("{}", with.reused_results),
            format!("{}", with.wall_ms as u64),
        ]);
    }
    print_table(
        "F2 — N clients x 8 pipelines, independent vs DARR-cooperative",
        &["clients", "evals (no DARR)", "wall ms", "evals (DARR)", "reused", "wall ms"],
        &rows,
    );
    println!("paper: clients share results and avoid redundant calculations. Measured: evaluations stay at the pipeline count with the DARR (N x without it).");
}

/// F3 — Fig. 3 / §IV-A: the 36-pipeline example graph.
fn exp_f3() {
    let graph = listing1_graph();
    let n = graph.enumerate_paths().len();
    println!("\n## F3 — Fig. 3 example graph");
    println!("paper: \"The total number of Pipelines for our working example ... is 36\"");
    println!(
        "measured: {} nodes, {} edges, {n} root->leaf pipelines",
        graph.n_nodes(),
        graph.n_edges()
    );
    assert_eq!(n, 36);
    let ds = synth::badly_scaled_regression(300, 7, 0.5, 4);
    let report = Evaluator::new(CvStrategy::kfold(5), Metric::Rmse)
        .with_threads(4)
        .evaluate_graph(&graph, &ds)
        .expect("graph evaluates");
    let best = report.best().expect("paths evaluated");
    println!(
        "best path on badly-scaled data: {} (rmse {:.4}); a scaled path wins: {}",
        best.spec.steps.join(" -> "),
        best.mean_score,
        best.spec.steps[0] != "noop"
    );
}

/// F4 — Fig. 4: K-fold cross-validation produces K models and K estimates.
fn exp_f4() {
    let ds = synth::linear_regression(200, 3, 0.3, 5);
    let pipeline = Pipeline::from_nodes(vec![coda_core::Node::auto(
        (Box::new(LinearRegression::new()) as coda_data::BoxedEstimator).into(),
    )]);
    let mut rows = Vec::new();
    for k in [3usize, 5, 10] {
        let eval = Evaluator::new(CvStrategy::kfold(k), Metric::Rmse);
        let scores = eval.evaluate_pipeline(&pipeline, &ds).expect("evaluates");
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        let sd = (scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
            / scores.len() as f64)
            .sqrt();
        rows.push(vec![
            k.to_string(),
            scores.len().to_string(),
            format!("{mean:.4}"),
            format!("{sd:.4}"),
        ]);
    }
    print_table(
        "F4 — K-fold CV: K models, K estimates, mean as final estimate",
        &["K", "estimates", "mean rmse", "std"],
        &rows,
    );
}

/// F5 — Fig. 5: training vs prediction operation sequences.
fn exp_f5() {
    use coda_data::{BoxedTransformer, ComponentError};
    use std::sync::{Arc, Mutex};

    #[derive(Debug, Clone)]
    struct Probe {
        label: String,
        log: Arc<Mutex<Vec<String>>>,
        fitted: bool,
    }
    impl Transformer for Probe {
        fn name(&self) -> &str {
            &self.label
        }
        fn fit(&mut self, _d: &Dataset) -> Result<(), ComponentError> {
            self.log.lock().unwrap().push(format!("{}.fit", self.label));
            self.fitted = true;
            Ok(())
        }
        fn transform(&self, d: &Dataset) -> Result<Dataset, ComponentError> {
            if !self.fitted {
                return Err(ComponentError::NotFitted(self.label.clone()));
            }
            self.log.lock().unwrap().push(format!("{}.transform", self.label));
            Ok(d.clone())
        }
        fn clone_box(&self) -> BoxedTransformer {
            Box::new(Probe { label: self.label.clone(), log: self.log.clone(), fitted: false })
        }
    }

    let log = Arc::new(Mutex::new(Vec::new()));
    let ds = synth::linear_regression(50, 2, 0.1, 6);
    let mut p = Pipeline::from_nodes(vec![
        coda_core::Node::auto(
            (Box::new(Probe { label: "robustscaler".into(), log: log.clone(), fitted: false })
                as BoxedTransformer)
                .into(),
        ),
        coda_core::Node::auto(
            (Box::new(Probe { label: "select_k".into(), log: log.clone(), fitted: false })
                as BoxedTransformer)
                .into(),
        ),
        coda_core::Node::auto(
            (Box::new(LinearRegression::new()) as coda_data::BoxedEstimator).into(),
        ),
    ]);
    p.fit(&ds).expect("fits");
    let fit_trace = log.lock().unwrap().join(", ");
    log.lock().unwrap().clear();
    p.predict(&ds).expect("predicts");
    let predict_trace = log.lock().unwrap().join(", ");
    println!("\n## F5 — Fig. 5 pipeline operation semantics");
    println!("paper: training = internal fit&transform then final fit; prediction = internal transform only");
    println!("measured fit trace:     {fit_trace}, (then estimator.fit)");
    println!("measured predict trace: {predict_trace}, (then estimator.predict)");
}

/// F6–F10 — Figs. 6-10: the windowing transformers' shape laws.
fn exp_f6_f10() {
    let l = 100;
    let v = 3;
    let p = 8;
    let series = SeriesData::new(synth::multivariate_sensors(l, v, 7), 0);
    let ds = series.to_dataset();
    let cfg = WindowConfig::new(p, 1);
    let cascaded = CascadedWindows::new(cfg).fit_transform(&ds).expect("windows");
    let flat = FlatWindowing::new(cfg).fit_transform(&ds).expect("windows");
    let iid = TsAsIid::new(cfg).fit_transform(&ds).expect("windows");
    let asis = TsAsIs::new(cfg).fit_transform(&ds).expect("windows");
    let rows = vec![
        vec![
            "CascadedWindows (Fig. 7)".into(),
            format!("{} x {}", cascaded.n_samples(), cascaded.n_features()),
            format!("L-p = {} windows of p*v = {}", l - p, p * v),
        ],
        vec![
            "FlatWindowing (Fig. 8)".into(),
            format!("{} x {}", flat.n_samples(), flat.n_features()),
            format!("same cells flattened to 1 x pv = {}", p * v),
        ],
        vec![
            "TS-as-IID (Fig. 9)".into(),
            format!("{} x {}", iid.n_samples(), iid.n_features()),
            format!("L-h = {} independent rows of v = {v}", l - 1),
        ],
        vec![
            "TS-as-is (Fig. 10)".into(),
            format!("{} x {}", asis.n_samples(), asis.n_features()),
            format!("target lags only (p = {p})"),
        ],
    ];
    print_table(
        "F6-F10 — windowing transformers on a 100 x 3 series (p=8, h=1)",
        &["Transformer", "measured shape", "paper's law"],
        &rows,
    );
    println!("flat == cascaded cell-for-cell: {}", flat == cascaded);
}

/// F11 — Fig. 11: the full model comparison across series regimes.
fn exp_f11() {
    let eval = TsEvaluator::sliding(300, 10, 80, 2, Metric::Rmse).with_threads(8);
    let graph = TimeSeriesPipelineBuilder::new(16, 1, 1)
        .with_deep_variants(false)
        .with_all_scalers(false)
        .with_epochs(50)
        .with_seed(8)
        .build()
        .expect("fixed wiring");
    let regimes: Vec<(&str, Vec<f64>)> = vec![
        (
            "seasonal (period 16)",
            (0..500).map(|t| (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin() * 3.0).collect(),
        ),
        ("AR(2) mean-reverting", synth::ar2_series(500, 0.5, 0.2, 1.0, 9)),
        ("random walk", synth::random_walk(500, 1.0, 10)),
    ];
    let families = [
        "lstm_simple",
        "cnn_simple",
        "wavenet",
        "seriesnet",
        "dnn_simple",
        "dnn_iid_simple",
        "zero_model",
        "ar_forecaster",
    ];
    let mut rows = Vec::new();
    for (name, series) in &regimes {
        let report = eval
            .evaluate_graph(&graph, &SeriesData::univariate(series.clone()))
            .expect("series long enough");
        let mut row = vec![name.to_string()];
        for f in families {
            row.push(report.score_for(f).map(|s| format!("{s:.3}")).unwrap_or_else(|| "-".into()));
        }
        row.push(report.best().map(|b| b.spec.steps.last().unwrap().clone()).unwrap_or_default());
        rows.push(row);
    }
    let mut headers = vec!["regime"];
    headers.extend(families);
    headers.push("winner");
    print_table("F11 — model RMSE by series regime (sliding split)", &headers, &rows);
    println!("paper's implied shape: temporal models win on structured series; the Zero baseline is near-unbeatable on a random walk.");
}

/// F12 — Fig. 12: sliding split vs naive K-fold on time series.
fn exp_f12() {
    let splits =
        CvStrategy::TimeSeriesSlidingSplit { train_size: 40, buffer: 5, validation_size: 15, k: 3 }
            .splits(100)
            .expect("fits");
    let rows: Vec<Vec<String>> = splits
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                (i + 1).to_string(),
                format!("[{}, {}]", s.train[0], s.train.last().unwrap()),
                format!("[{}, {}]", s.validation[0], s.validation.last().unwrap()),
            ]
        })
        .collect();
    print_table(
        "F12 — TimeSeriesSlidingSplit windows (train 40, buffer 5, val 15, k 3, n 100)",
        &["slide", "train range", "validation range"],
        &rows,
    );
    // leakage demonstration: on a random walk, i.i.d. K-fold interleaves
    // future and past, making persistence-style lag features look better
    // than they are out-of-sample.
    let walk = synth::random_walk(400, 1.0, 11);
    let lagged = TsAsIs::new(WindowConfig::new(4, 1))
        .fit_transform(&SeriesData::univariate(walk).to_dataset())
        .expect("windows");
    let pipeline = Pipeline::from_nodes(vec![coda_core::Node::auto(
        (Box::new(coda_timeseries::ArForecaster::new()) as coda_data::BoxedEstimator).into(),
    )]);
    let kfold_scores =
        Evaluator::new(CvStrategy::KFold { k: 5, shuffle: true, seed: 1 }, Metric::Rmse)
            .evaluate_pipeline(&pipeline, &lagged)
            .expect("evaluates");
    let sliding_scores = Evaluator::new(
        CvStrategy::TimeSeriesSlidingSplit {
            train_size: 200,
            buffer: 10,
            validation_size: 60,
            k: 3,
        },
        Metric::Rmse,
    )
    .evaluate_pipeline(&pipeline, &lagged)
    .expect("evaluates");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "AR on a random walk: shuffled 5-fold rmse {:.3} vs sliding-split rmse {:.3} (sliding is the honest, typically harder estimate)",
        mean(&kfold_scores),
        mean(&sliding_scores)
    );
}

/// D1 — §III delta encoding: wire bytes vs update fraction.
fn exp_d1() {
    let size = 262_144; // 256 KiB object
    let base = patterned_bytes(size, 1);
    let mut rows = Vec::new();
    for fraction in [0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.9] {
        let contiguous = mutate_fraction(&base, fraction);
        let scattered = coda_bench::mutate_fraction_scattered(&base, fraction);
        let d_cont = DeltaCodec::encode(&base, &contiguous, 1, 2);
        let d_scat = DeltaCodec::encode(&base, &scattered, 1, 2);
        let ratio = d_cont.wire_size() as f64 / size as f64;
        rows.push(vec![
            format!("{:.1}%", fraction * 100.0),
            size.to_string(),
            d_cont.wire_size().to_string(),
            format!("{:.3}", ratio),
            d_scat.wire_size().to_string(),
            if ratio < 0.5 { "delta" } else { "full" }.into(),
        ]);
    }
    print_table(
        "D1 — delta vs full transfer, 256 KiB object",
        &[
            "changed",
            "full bytes",
            "delta (contiguous)",
            "ratio",
            "delta (scattered)",
            "store sends",
        ],
        &rows,
    );
    println!("paper: \"this delta may be considerably smaller than version 3 of o1\" — measured: true until the changed fraction crosses the advantage threshold, where the store falls back to full transfers.");
}

/// D2 — §III pull/push/lease modes: message and byte costs.
fn exp_d2() {
    let size = 65_536;
    let n_updates = 20;
    let modes: Vec<(&str, Option<PushMode>)> = vec![
        ("pull per update", None),
        ("push full", Some(PushMode::Full)),
        ("push delta", Some(PushMode::Delta)),
        ("notify only", Some(PushMode::NotifyOnly)),
    ];
    let mut rows = Vec::new();
    for (name, mode) in modes {
        let mut store = HomeDataStore::new("home", 4);
        let mut client = CachingClient::new("c");
        let mut blob = patterned_bytes(size, 2);
        store.put("o", Bytes::from(blob.clone()));
        client.pull(&mut store, "o").expect("pull");
        if let Some(m) = mode {
            store.subscribe("c", "o", m, 1_000_000);
        }
        store.reset_stats();
        let before = client.bytes_received;
        for i in 0..n_updates {
            blob[i * 64] ^= 0xFF;
            let (_, pushes) = store.put("o", Bytes::from(blob.clone()));
            for p in &pushes {
                client.apply_push(p).expect("apply");
            }
            if mode.is_none() {
                client.pull(&mut store, "o").expect("pull");
            }
        }
        // notify-only: client fetches once at the end (when it needs data)
        if mode == Some(PushMode::NotifyOnly) {
            client.pull(&mut store, "o").expect("pull");
        }
        let stats = store.stats();
        rows.push(vec![
            name.into(),
            stats.messages.to_string(),
            (client.bytes_received - before).to_string(),
            client.held_version("o").unwrap().to_string(),
        ]);
    }
    print_table(
        &format!("D2 — update propagation over {n_updates} small updates to a 64 KiB object"),
        &["mode", "store msgs", "client bytes", "final version"],
        &rows,
    );
    println!("paper: push full/delta/notify trade immediacy for bandwidth; delta and notify-only cut bytes by orders of magnitude.");
}

/// D3 — §III recomputation triggers.
fn exp_d3() {
    let policies: Vec<(&str, RecomputeTrigger)> = vec![
        ("count >= 5", RecomputeTrigger::UpdateCount(5)),
        ("bytes >= 32768", RecomputeTrigger::UpdateBytes(32_768)),
        ("app: drift > 2.0", RecomputeTrigger::AppSpecific(Box::new(|s| s.magnitude > 2.0))),
    ];
    let mut rows = Vec::new();
    for (name, trigger) in policies {
        let mut monitor = ChangeMonitor::new(trigger);
        let mut fired_at = Vec::new();
        // 50 updates of 4 KiB; drift accumulates slowly then spikes at 30
        for i in 1..=50u64 {
            let magnitude = if i == 30 { 2.5 } else { 0.05 };
            if monitor.record_update(4096, magnitude) {
                fired_at.push(i);
            }
        }
        rows.push(vec![name.into(), monitor.recomputations.to_string(), format!("{fired_at:?}")]);
    }
    print_table(
        "D3 — recompute triggers over 50 updates (4 KiB each, drift spike at #30)",
        &["policy", "recomputations", "fired at update #"],
        &rows,
    );
    println!("paper: app-specific triggers are \"the best way\" — measured: they fire once, exactly at the drift spike, while count/bytes policies fire on a fixed cadence.");
}

/// D4 — robustness: the seeded chaos driver sweeps fault intensity over a
/// 4-client cooperative run and reports what the resilience machinery did.
fn exp_d4(obs: Option<&Obs>) {
    use coda_cluster::{run_chaos_coop, run_chaos_coop_obs, ChaosCoopConfig};
    let base = ChaosCoopConfig {
        seed: 17,
        n_clients: 4,
        n_keys: 16,
        drop_probability: 0.0,
        darr_partition: None,
        crash: None,
        claim_duration: 200,
        max_rounds: 10_000,
    };
    let scenarios: Vec<(&str, ChaosCoopConfig)> = vec![
        ("fault-free", base),
        ("20% drops", ChaosCoopConfig { drop_probability: 0.2, ..base }),
        (
            "drops + crash",
            ChaosCoopConfig { drop_probability: 0.2, crash: Some((2, 150.0, 650.0)), ..base },
        ),
        (
            "drops + crash + partition",
            ChaosCoopConfig {
                drop_probability: 0.2,
                crash: Some((2, 150.0, 650.0)),
                darr_partition: Some((300.0, 700.0)),
                ..base
            },
        ),
        (
            "40% drops + crash + partition",
            ChaosCoopConfig {
                drop_probability: 0.4,
                crash: Some((2, 150.0, 650.0)),
                darr_partition: Some((300.0, 700.0)),
                ..base
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg) in &scenarios {
        let r = run_chaos_coop_obs(cfg, obs);
        assert_eq!(r, run_chaos_coop(cfg), "same seed must replay identically");
        rows.push(vec![
            name.to_string(),
            format!("{}/{}", r.completed, r.n_keys),
            r.computed.to_string(),
            r.reused.to_string(),
            r.journaled.to_string(),
            r.replayed.to_string(),
            r.duplicates.to_string(),
            r.takeovers.to_string(),
            r.retry.retries.to_string(),
            format!("{:.0}", r.retry.total_backoff_ms),
            r.faults.dropped.to_string(),
        ]);
    }
    print_table(
        "D4 — chaos: 4 clients x 16 evaluations under injected faults (seed 17)",
        &[
            "scenario",
            "done",
            "computed",
            "reused",
            "journaled",
            "replayed",
            "dups",
            "takeovers",
            "retries",
            "backoff ms",
            "dropped",
        ],
        &rows,
    );
    println!("shape: every scenario completes all 16 evaluations; faults shift work from reuse to retries, journals and takeovers, and every duplicate computation is accounted — none are silent. Each row is verified to replay bit-identically from its seed.");
}

/// D5 — shared-prefix transform caching: cached vs uncached wall-clock on
/// fan-out TEGs, by path count and grid size. Every fan-out path shares a
/// 3-stage transformer prefix, so the cache fits it once per fold instead
/// of once per path per fold.
fn exp_d5(obs: Option<&Obs>) {
    use coda_bench::fan_out_graph;
    use coda_core::ParamGrid;

    let ds = synth::friedman1(1500, 30, 0.4, 55);
    let cv = CvStrategy::kfold(5);
    let time_eval = |cached: bool, graph: &coda_core::Teg, grid: Option<&ParamGrid>| {
        let mut eval = Evaluator::new(cv.clone(), Metric::Rmse).with_prefix_cache(cached);
        if let Some(o) = obs {
            eval = eval.with_obs(o.clone());
        }
        let start = std::time::Instant::now();
        let report = match grid {
            Some(g) => eval.evaluate_graph_with_grid(graph, &ds, g),
            None => eval.evaluate_graph(graph, &ds),
        }
        .expect("fan-out graph evaluates");
        (start.elapsed().as_secs_f64() * 1000.0, report)
    };

    let mut rows = Vec::new();
    for n_paths in [2usize, 4, 8, 16] {
        let graph = fan_out_graph(n_paths);
        let (uncached_ms, base) = time_eval(false, &graph, None);
        let (cached_ms, report) = time_eval(true, &graph, None);
        for (a, b) in base.results.iter().zip(&report.results) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.mean_score.to_bits(), b.mean_score.to_bits(), "cached ≡ uncached");
        }
        let stats = report.cache.expect("cached run reports stats");
        assert!(stats.hits > 0, "fan-out must produce cache hits");
        rows.push(vec![
            n_paths.to_string(),
            "—".to_string(),
            format!("{uncached_ms:.0}"),
            format!("{cached_ms:.0}"),
            format!("{:.2}x", uncached_ms / cached_ms),
            format!("{}/{}", stats.hits, stats.lookups()),
            format!("{:.0}%", stats.hit_rate() * 100.0),
        ]);
    }
    // grid sweep over the estimator only: the transformer prefix stays
    // shared across every assignment, so hits scale with grid size too
    for grid_size in [2usize, 4] {
        let graph = fan_out_graph(4);
        let mut grid = ParamGrid::new();
        grid.add(
            "ridge_regression__alpha",
            (0..grid_size).map(|i| (0.01 * 10f64.powi(i as i32)).into()).collect(),
        );
        let (uncached_ms, base) = time_eval(false, &graph, Some(&grid));
        let (cached_ms, report) = time_eval(true, &graph, Some(&grid));
        for (a, b) in base.results.iter().zip(&report.results) {
            assert_eq!(a.mean_score.to_bits(), b.mean_score.to_bits(), "cached ≡ uncached");
        }
        let stats = report.cache.expect("cached run reports stats");
        assert!(stats.hits > 0, "grid fan-out must produce cache hits");
        rows.push(vec![
            "4".to_string(),
            grid_size.to_string(),
            format!("{uncached_ms:.0}"),
            format!("{cached_ms:.0}"),
            format!("{:.2}x", uncached_ms / cached_ms),
            format!("{}/{}", stats.hits, stats.lookups()),
            format!("{:.0}%", stats.hit_rate() * 100.0),
        ]);
    }
    print_table(
        "D5 — prefix cache: fan-out TEG (3-stage shared prefix), 1500x30 friedman1, 5-fold CV",
        &["paths", "grid", "uncached ms", "cached ms", "speedup", "hits/lookups", "hit rate"],
        &rows,
    );
    println!("shape: speedup grows with fan-out (more paths amortize each prefix fit) and holds under estimator-only grids; reports are verified bit-identical to the uncached run in every row.");
}

/// D6 — crash-stop failure handling: a two-node home/replica pair works
/// through a cooperative put + claim worklist while the chaos plan kills the
/// home at a WAL operation boundary. With a scheduled restart the node
/// replays its WAL byte-identically and rejoins; without one the phi-accrual
/// detector drives a lease-gated failover and the dead home's orphaned DARR
/// claim is reaped and taken over. Every scenario must land on the no-crash
/// digest.
fn exp_d6(obs: Option<&Obs>) {
    use coda_chaos::CrashPlan;
    use coda_cluster::{run_crash_recovery, run_crash_recovery_obs, CrashRecoveryConfig};

    let base = CrashRecoveryConfig::default();
    let baseline = run_crash_recovery(&base);
    assert_eq!(baseline.failovers, 0, "the crash-free run must not move the home role");

    let scenarios: Vec<(&str, CrashRecoveryConfig)> = vec![
        ("crash-free", base.clone()),
        (
            "crash + restart",
            CrashRecoveryConfig {
                plan: CrashPlan::new().with_crash_at("node-0", 10, Some(500.0)),
                ..base.clone()
            },
        ),
        (
            "crash, no restart",
            CrashRecoveryConfig {
                plan: CrashPlan::new().with_crash_at("node-0", 9, None),
                ..base.clone()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg) in &scenarios {
        let r = run_crash_recovery_obs(cfg, obs);
        assert_eq!(r, run_crash_recovery(cfg), "same seed must replay identically");
        assert_eq!(r.digest, baseline.digest, "{name}: must converge to the no-crash state");
        assert_eq!(r.recovery_mismatches, 0, "{name}: WAL replay must be byte-identical");
        rows.push(vec![
            name.to_string(),
            r.completed.to_string(),
            format!("{}/{}", r.crashes, r.restarts),
            r.wal_replayed_records.to_string(),
            r.byte_identical_recoveries.to_string(),
            format!("{}/{}", r.suspicions, r.deaths),
            r.failovers.to_string(),
            r.reaped_claims.to_string(),
            r.takeovers.to_string(),
            r.final_home.clone(),
        ]);
    }
    print_table(
        "D6 — crash recovery: 2-node home/replica pair, 8-item worklist (seed 7)",
        &[
            "scenario",
            "done",
            "crash/restart",
            "replayed",
            "byte-ident",
            "susp/dead",
            "failovers",
            "reaped",
            "takeovers",
            "final home",
        ],
        &rows,
    );
    println!("shape: every scenario converges to the crash-free digest; a restarted home replays its WAL to byte-identical state and rejoins as replica, while an unrecovered crash fails over only after the detector's dead verdict AND home-lease expiry, then reaps the orphaned claim.");
}

/// D7 — serving tier: zipf-skewed sustained load against the sharded
/// single-writer tier, emitting the `BENCH_serving.json` ratchet baseline.
fn exp_d7(obs: Option<&Obs>) {
    let seed: u64 = std::env::var("SERVE_SEED")
        .ok()
        .map(|s| s.parse().expect("SERVE_SEED must be an integer"))
        .unwrap_or(7);
    let r = coda_bench::run_serving_bench(seed, obs);

    assert_eq!(r.shed, 0, "the closed loop keeps at most one request in flight per thread");
    assert!(
        r.per_shard_ops.iter().all(|&ops| ops > 0),
        "zipf traffic over {} keys must reach every shard: {:?}",
        512,
        r.per_shard_ops
    );
    assert!(
        r.total_ops >= (r.n_threads * 50_000) as u64,
        "every submitted op (plus cooperative completions) must be applied"
    );
    assert!(r.batches > 0 && r.trigger_firings > 0);

    let rows: Vec<Vec<String>> = r
        .per_shard_ops
        .iter()
        .enumerate()
        .map(|(i, &ops)| {
            vec![
                format!("shard-{i}"),
                ops.to_string(),
                format!("{:.1}%", 100.0 * ops as f64 / r.total_ops as f64),
            ]
        })
        .collect();
    print_table(
        &format!(
            "D7 — serving tier: {} clients, {} shards, zipf(s=1.1) over 512 keys (seed {seed})",
            r.n_clients, r.n_shards
        ),
        &["shard", "ops applied", "share"],
        &rows,
    );
    println!(
        "throughput: {:.0} ops/s ({} ops in {:.0} ms); latency p50={:.4} p95={:.4} p99={:.4} ms",
        r.throughput_ops_per_sec, r.total_ops, r.elapsed_ms, r.p50_ms, r.p95_ms, r.p99_ms
    );
    println!(
        "batching: {} batches, {:.2} ops/batch mean; {} recompute-trigger firings; {} shed",
        r.batches, r.mean_batch, r.trigger_firings, r.shed
    );
    std::fs::write("BENCH_serving.json", r.to_json()).expect("BENCH_serving.json must be writable");
    println!("wrote BENCH_serving.json (ratchet baseline for bench_gate)");
    println!("shape: hash-routing spreads the zipf head across shards (no shard starves), the closed loop never trips admission control, and batching amortizes mailbox wakeups under backlog.");
}

/// D8 — the ops plane: a deterministic clean/fault pair of serving-tier
/// scenarios observed through the flight recorder, burn-rate SLO engine,
/// and exemplar-sampled cost profiles. Writes `OPS_REPORT.json` (both
/// scenarios) and `COST_PROFILE.json` (the fault scenario's per-operator
/// self-times); both artifacts are byte-identical across same-seed runs.
fn exp_d8() {
    let seed: u64 = std::env::var("OPS_SEED")
        .ok()
        .map(|s| s.parse().expect("OPS_SEED must be an integer"))
        .unwrap_or(7);
    let report = coda_bench::run_ops_report(seed);

    assert_eq!(report.clean.burn_events, 0, "the healthy run must not page anyone");
    assert_eq!(report.clean.total_breaches, 0);
    assert!(report.fault.burn_events >= 1, "the fault run must fire slo.burn alerts");
    assert!(report.fault.serve_shed > 0, "held shards must shed the burst");

    let mut rows = Vec::new();
    for scenario in [&report.clean, &report.fault] {
        for s in &scenario.slo.statuses {
            rows.push(vec![
                scenario.name.clone(),
                s.slo.clone(),
                s.evaluations.to_string(),
                s.breaches.to_string(),
                format!("{:.2}", s.max_long_burn),
                format!("{:.2}", s.max_short_burn),
            ]);
        }
    }
    print_table(
        &format!("D8 — SLO burn rates over {} windows (seed {seed})", report.clean.windows),
        &["scenario", "slo", "evals", "breaches", "max long burn", "max short burn"],
        &rows,
    );
    println!(
        "flight: {} timeline windows retained; tail sampling kept {}/{} traces ({} of {} events)",
        report.fault.timeline.len(),
        report.fault.traces_kept,
        report.fault.traces_seen,
        report.fault.events_after,
        report.fault.events_before,
    );
    for cp in report.fault.critical_paths.iter().take(3) {
        println!("critical path: {} ({} @ {:.0} ms)", cp.path, cp.trace, cp.at_ms);
    }
    std::fs::write("OPS_REPORT.json", report.to_json()).expect("OPS_REPORT.json must be writable");
    std::fs::write("COST_PROFILE.json", report.fault.cost.to_json())
        .expect("COST_PROFILE.json must be writable");
    println!("wrote OPS_REPORT.json and COST_PROFILE.json (deterministic for a fixed seed)");
    println!("shape: the clean scenario never burns while every injected fault — shed bursts, a latency tail, failing OLS paths, an unrecovered home crash — pushes its declared SLO over both burn windows.");
}

/// D9 — from burn to blame: the diagnosis engine replays the D8 pair and
/// two targeted faults (single hot shard, single slow operator), then
/// scores each incident report against the injected ground truth. Writes
/// `DIAG_REPORT.json`, byte-identical across same-seed runs and across
/// serving shard counts.
fn exp_d9() {
    let seed: u64 = std::env::var("DIAG_SEED")
        .ok()
        .map(|s| s.parse().expect("DIAG_SEED must be an integer"))
        .unwrap_or(7);
    let bundle = coda_bench::run_diag_report(seed, 2);

    assert_eq!(bundle.clean.incidents, 0, "the healthy run must diagnose to zero incidents");
    assert!(bundle.fault.incidents > 0, "the fault run must raise incidents");
    assert!(bundle.all_attributed(), "every scenario must attribute to its injected cause");

    let mut rows = Vec::new();
    for s in [&bundle.clean, &bundle.fault, &bundle.hot_shard, &bundle.slow_operator] {
        let top = s.top_suspects.first().cloned().unwrap_or_else(|| "-".to_string());
        rows.push(vec![
            s.name.clone(),
            s.incidents.to_string(),
            s.injected.first().cloned().unwrap_or_else(|| "-".to_string()),
            top,
            if s.attributed == 1 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(
        &format!("D9 — incident diagnosis vs injected ground truth (seed {seed})"),
        &["scenario", "incidents", "injected cause", "top suspect", "attributed"],
        &rows,
    );
    for inc in &bundle.slow_operator.report.incidents {
        if !inc.critical_path.is_empty() {
            println!("critical path ({}): {}", inc.slo, inc.critical_path.join(" > "));
        }
    }
    std::fs::write("DIAG_REPORT.json", bundle.to_json())
        .expect("DIAG_REPORT.json must be writable");
    println!("wrote DIAG_REPORT.json (deterministic for a fixed seed, any shard count)");
    println!("shape: the clean run stays silent, the D8 fault families all surface as suspects, and each targeted fault pins its injected cause — the hot shard by its queue-wait split, the slow operator by its spec-labeled eval path.");
}

/// S1 — §IV-E solution templates on synthetic industrial data.
fn exp_s1() {
    let fleet = synth::failure_prediction_data(40, 120, 10, 12);
    let fpa = FailurePredictionAnalysis::new()
        .with_fast_settings()
        .with_threads(4)
        .run(&fleet)
        .expect("labeled data");
    let (process, causal) = synth::root_cause_data(500, 8, 3, 13);
    let rca = RootCauseAnalysis::new().run(&process).expect("labeled data");
    let causal_names: Vec<String> = causal.iter().map(|c| format!("x{c}")).collect();
    let top3: Vec<String> = rca.top_factors(3).iter().map(|s| s.to_string()).collect();
    let recovered = causal_names.iter().filter(|c| top3.contains(c)).count();
    let (sensor, truth) = synth::anomaly_data(2000, 4, 0.03, 14);
    let anomalies =
        AnomalyAnalysis::new().fit(&sensor).expect("fits").detect(&sensor).expect("detects");
    let truth_f: Vec<f64> = truth.iter().map(|&t| if t { 1.0 } else { 0.0 }).collect();
    let flags_f: Vec<f64> = anomalies.flags.iter().map(|&f| if f { 1.0 } else { 0.0 }).collect();
    let anomaly_f1 = coda_data::metrics::f1_score(&truth_f, &flags_f, 1.0).expect("computable");
    let (assets, cohort_truth) = synth::cohort_data(120, 4, 6, 15);
    let cohorts = CohortAnalysis::new(4).run(&assets).expect("clusters");
    let rows = vec![
        vec![
            "Failure Prediction".into(),
            format!("F1 {:.3}", fpa.f1),
            format!("best: {}", fpa.best_pipeline.join(" -> ")),
        ],
        vec![
            "Root Cause".into(),
            format!("R2 {:.3}, {recovered}/3 causal factors in top-3", rca.explained_r2),
            format!("top: {top3:?}"),
        ],
        vec![
            "Anomaly".into(),
            format!("F1 {anomaly_f1:.3}"),
            format!("flagged {:.1}%", anomalies.flagged_fraction * 100.0),
        ],
        vec![
            "Cohort".into(),
            format!("purity {:.3}", cohorts.purity_against(&cohort_truth)),
            format!("sizes {:?}", cohorts.sizes),
        ],
    ];
    print_table(
        "S1 — solution templates on synthetic industrial data",
        &["Template", "Quality", "Detail"],
        &rows,
    );
}

/// A1 — ablation: delta history depth vs transfer mix. Clients lag by a
/// varying number of versions; a deeper history keeps more of them on the
/// cheap delta path.
fn exp_a1() {
    let object_size = 65_536usize;
    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 8] {
        let mut store = HomeDataStore::new("home", depth);
        let mut blob = patterned_bytes(object_size, 3);
        store.put("o", Bytes::from(blob.clone()));
        // 8 versions
        for i in 0..8usize {
            blob[i * 128] ^= 0xFF;
            store.put("o", Bytes::from(blob.clone()));
        }
        store.reset_stats();
        // clients holding versions 1..=8 all sync to version 9
        for held in 1..=8u64 {
            store.fetch("o", Some(held)).expect("infallible");
        }
        let stats = store.stats();
        rows.push(vec![
            depth.to_string(),
            stats.delta_transfers.to_string(),
            stats.full_transfers.to_string(),
            stats.bytes.to_string(),
        ]);
    }
    print_table(
        "A1 — ablation: history depth vs transfer mix (8 lagging clients, 64 KiB object)",
        &["history depth", "delta transfers", "full transfers", "bytes"],
        &rows,
    );
    println!("design choice: the store precomputes d(o, k-i, k) only for retained versions; deeper history trades memory for bandwidth.");
}

/// A2 — ablation: parallel path evaluation thread scaling on the 36-path
/// Listing-1 graph.
fn exp_a2() {
    let ds = synth::friedman1(800, 10, 0.5, 21);
    let graph = listing1_graph();
    let mut rows = Vec::new();
    let mut base_ms = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let eval = Evaluator::new(CvStrategy::kfold(3), Metric::Rmse).with_threads(threads);
        let start = std::time::Instant::now();
        let report = eval.evaluate_graph(&graph, &ds).expect("graph evaluates");
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        if threads == 1 {
            base_ms = ms;
        }
        rows.push(vec![
            threads.to_string(),
            format!("{ms:.0}"),
            format!("{:.2}x", base_ms / ms),
            report.n_ok().to_string(),
        ]);
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    print_table(
        &format!("A2 — ablation: evaluator thread scaling (36 paths, 3-fold CV, host has {cores} core(s))"),
        &["threads", "wall ms", "speedup", "paths ok"],
        &rows,
    );
    println!("paper: \"parameter optimizations can be done via parallel invocations\" — expected speedup saturates at min(threads, cores, paths); on this {cores}-core host the parallel path is exercised for correctness (identical reports at every thread count) rather than for throughput.");
}

/// A3 — ablation: history window length for forecasting a seasonal series.
fn exp_a3() {
    let period = 16usize;
    let series = synth::trend_seasonal_series(600, period as f64, 1.5, 24);
    let mut rows = Vec::new();
    for p in [2usize, 4, 8, 16, 32] {
        let lagged = TsAsIs::new(WindowConfig::new(p, 1))
            .fit_transform(&SeriesData::univariate(series.clone()).to_dataset())
            .expect("windows");
        let pipeline = Pipeline::from_nodes(vec![coda_core::Node::auto(
            (Box::new(coda_timeseries::ArForecaster::new()) as coda_data::BoxedEstimator).into(),
        )]);
        let scores = Evaluator::new(
            CvStrategy::TimeSeriesSlidingSplit {
                train_size: 300,
                buffer: 10,
                validation_size: 80,
                k: 2,
            },
            Metric::Rmse,
        )
        .evaluate_pipeline(&pipeline, &lagged)
        .expect("evaluates");
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        rows.push(vec![
            p.to_string(),
            format!("{mean:.4}"),
            if p >= period { "covers one period".into() } else { String::new() },
        ]);
    }
    print_table(
        &format!("A3 — ablation: AR history window vs RMSE (seasonal series, period {period})"),
        &["history p", "rmse", ""],
        &rows,
    );
    println!("design choice: the pipeline builder's history window must reach the dominant period; error collapses once p covers it.");
}

/// A4 — nested vs plain cross-validation: the optimism of tuning and
/// reporting on the same folds (§IV-B's Nested K-fold), averaged over
/// repeated draws so the selection bias is visible above fold noise.
fn exp_a4() {
    use coda_ml::KnnRegressor;
    let grid_values: Vec<coda_data::ParamValue> = (1..=15).map(|k| (k as usize).into()).collect();
    let mut grid = coda_core::ParamGrid::new();
    grid.add("knn_regressor__k", grid_values);
    let pipeline = Pipeline::from_nodes(vec![coda_core::Node::auto(
        (Box::new(KnnRegressor::new(1)) as coda_data::BoxedEstimator).into(),
    )]);
    let graph = coda_core::TegBuilder::new()
        .add_models(vec![Box::new(KnnRegressor::new(1))])
        .create_graph()
        .expect("single node");
    let mut plain_sum = 0.0;
    let mut nested_sum = 0.0;
    let mut truth_sum = 0.0;
    let reps = 8u64;
    for seed in 0..reps {
        let ds = synth::friedman1(120, 5, 2.0, 600 + seed);
        let fresh = synth::friedman1(600, 5, 2.0, 700 + seed);
        let eval = Evaluator::new(CvStrategy::kfold(4), Metric::Rmse);
        let plain = eval.evaluate_graph_with_grid(&graph, &ds, &grid).expect("evaluates");
        plain_sum += plain.best().expect("paths evaluated").mean_score;
        let nested =
            eval.nested_evaluate(&pipeline, &ds, &grid, CvStrategy::kfold(3)).expect("evaluates");
        nested_sum += nested.outer_mean();
        let params = nested.consensus_params().expect("folds ran").clone();
        let mut deployed = pipeline.fresh_clone();
        deployed.apply_matching_params(&params).expect("grid params valid");
        deployed.fit(&ds).expect("fits");
        let pred = deployed.predict(&fresh).expect("predicts");
        truth_sum += coda_data::metrics::rmse(fresh.target().unwrap(), &pred).expect("computable");
    }
    let n = reps as f64;
    let rows = vec![
        vec!["plain grid-search CV (selection folds)".into(), format!("{:.4}", plain_sum / n)],
        vec!["nested CV outer estimate".into(), format!("{:.4}", nested_sum / n)],
        vec!["true error on fresh data".into(), format!("{:.4}", truth_sum / n)],
    ];
    print_table(
        "A4 — nested vs plain CV (15-point kNN grid, n=120, mean of 8 draws, rmse)",
        &["estimate", "rmse"],
        &rows,
    );
    println!(
        "shape: plain reports the winner's own selection folds and is optimistic; nested's outer estimate is higher (honest). Measured selection bias: {:.1}% (fresh-data error is lower than both because the deployed model refits on all n=120 samples while CV folds train on 90).",
        ((nested_sum - plain_sum) / nested_sum) * 100.0
    );
}

/// A5 — retraining policy trade-off (§II's lifecycle discussion), measured.
fn exp_a5() {
    use coda_cluster::{ModelLifecycle, RetrainPolicy};
    use coda_ml::LinearRegression;
    let make_batch = |n: usize, slope: f64, seed: u64| {
        let base = synth::linear_regression(n, 1, 0.0, seed);
        let y: Vec<f64> = base.features().col(0).iter().map(|v| slope * v).collect();
        Dataset::new(base.features().clone()).with_target(y).expect("lengths match")
    };
    let mut rows = Vec::new();
    for (name, policy) in [
        ("never", RetrainPolicy::Never),
        ("every batch", RetrainPolicy::EveryNBatches(1)),
        ("every 4 batches", RetrainPolicy::EveryNBatches(4)),
        ("on drift 25%", RetrainPolicy::OnDrift { tolerance_ratio: 0.25, window: 2 }),
    ] {
        let pipeline = Pipeline::from_nodes(vec![coda_core::Node::auto(
            (Box::new(LinearRegression::new()) as coda_data::BoxedEstimator).into(),
        )]);
        let mut lc =
            ModelLifecycle::deploy(pipeline, &make_batch(300, 2.0, 31), Metric::Rmse, policy)
                .expect("deploys");
        for i in 0..16u64 {
            let slope = if i < 8 { 2.0 } else { -1.0 }; // concept drift at batch 8
            lc.process_batch(&make_batch(150, slope, 400 + i)).expect("batch processes");
        }
        rows.push(vec![
            name.into(),
            format!("{:.3}", lc.lifetime_error()),
            lc.retrain_count.to_string(),
        ]);
    }
    print_table(
        "A5 — retraining policies under concept drift (16 batches, drift at #8)",
        &["policy", "lifetime rmse", "retrains"],
        &rows,
    );
    println!("paper: \"Too frequent retraining can result in high overhead, while too infrequent retraining can result in obsolete models\" — the drift policy reaches cadence-level error at a fraction of the retrains.");
}

/// A6 — §IV-C3's explicit performance claim: "One of the advantage standard
/// DNNs offer over LSTMs is their much faster speed of execution", with CNNs
/// "providing faster performance when compared to LSTMs" (§IV-C2).
fn exp_a6() {
    use coda_data::Estimator;
    use coda_timeseries::{CnnForecaster, DnnForecaster, LstmForecaster};
    let p = 24;
    let series = SeriesData::univariate(synth::trend_seasonal_series(400, 24.0, 0.5, 41));
    let windowed = CascadedWindows::new(WindowConfig::new(p, 1))
        .fit_transform(&series.to_dataset())
        .expect("windows");
    let epochs = 20usize;
    let time_fit = |mut m: Box<dyn Estimator>| -> (f64, f64) {
        let start = std::time::Instant::now();
        m.fit(&windowed).expect("fits");
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        let pred = m.predict(&windowed).expect("predicts");
        let rmse = coda_data::metrics::rmse(windowed.target().unwrap(), &pred).expect("computable");
        (ms, rmse)
    };
    let jobs: Vec<(&str, Box<dyn Estimator>)> = vec![
        ("dnn_simple", Box::new(DnnForecaster::simple(p).with_epochs(epochs))),
        ("cnn_simple", Box::new(CnnForecaster::simple(p, 1).with_epochs(epochs))),
        ("lstm_simple", Box::new(LstmForecaster::simple(p, 1).with_epochs(epochs))),
        ("lstm_deep", Box::new(LstmForecaster::deep(p, 1).with_epochs(epochs))),
    ];
    let mut dnn_ms = 0.0;
    let mut lstm_ms = 0.0;
    let mut rows = Vec::new();
    for (name, model) in jobs {
        let (ms, rmse) = time_fit(model);
        if name == "dnn_simple" {
            dnn_ms = ms;
        }
        if name == "lstm_simple" {
            lstm_ms = ms;
        }
        rows.push(vec![name.into(), format!("{ms:.0}"), format!("{rmse:.3}")]);
    }
    print_table(
        &format!("A6 — training speed, {epochs} epochs on 376 windows of p={p} (same data)"),
        &["model", "fit ms", "train rmse"],
        &rows,
    );
    println!(
        "paper: standard DNNs are \"much faster\" than LSTMs — measured: the simple LSTM costs {:.0}x the simple DNN to train; CNN sits between.",
        lstm_ms / dnn_ms.max(1.0)
    );
}

/// A7 — selective testing (the paper's title and §III: "the total number of
/// possible calculations … is generally too large to exhaustively
/// determine"): successive halving vs exhaustive evaluation.
fn exp_a7() {
    let ds = synth::friedman1(800, 8, 0.8, 51);
    let graph = listing1_graph();
    let eval = Evaluator::new(CvStrategy::kfold(4), Metric::Rmse);
    let start = std::time::Instant::now();
    let exhaustive = eval.evaluate_graph(&graph, &ds).expect("graph evaluates");
    let exhaustive_ms = start.elapsed().as_secs_f64() * 1000.0;
    let exhaustive_cost = 36 * 4 * ds.n_samples();
    let start = std::time::Instant::now();
    let halving = eval.successive_halving(&graph, &ds, 80, 3).expect("search succeeds");
    let halving_ms = start.elapsed().as_secs_f64() * 1000.0;
    let rows = vec![
        vec![
            "exhaustive (36 paths, 4-fold)".into(),
            exhaustive_cost.to_string(),
            format!("{exhaustive_ms:.0}"),
            exhaustive.best().expect("paths ok").spec.steps.join(" -> "),
            format!("{:.4}", exhaustive.best().expect("paths ok").mean_score),
        ],
        vec![
            "successive halving".into(),
            halving.samples_spent.to_string(),
            format!("{halving_ms:.0}"),
            halving.best().expect("finalists").spec.steps.join(" -> "),
            format!("{:.4}", halving.best().expect("finalists").mean_score),
        ],
    ];
    print_table(
        "A7 — selective vs exhaustive path evaluation (friedman1, n=800)",
        &["strategy", "sample-evals", "wall ms", "winner", "winner rmse"],
        &rows,
    );
    let rounds: Vec<String> = halving
        .rounds
        .iter()
        .map(|r| format!("round {}: {} survivors @ {} samples", r.round, r.survivors, r.samples))
        .collect();
    println!("halving schedule: {}", rounds.join("; "));
    println!(
        "shape: selective testing reaches a same-quality winner at {:.0}% of the exhaustive sample budget.",
        100.0 * halving.samples_spent as f64 / exhaustive_cost as f64
    );
}

/// S2 — censored failure-time analysis (§II: "the issue of censored data"):
/// Kaplan-Meier estimation vs the naive mean of observed failures.
fn exp_s2() {
    use coda_templates::FailureTimeAnalysis;
    let fta = FailureTimeAnalysis::new();
    let true_mean = 50.0;
    let true_median = true_mean * std::f64::consts::LN_2;
    let mut rows = Vec::new();
    for study_end in [30.0, 60.0, 120.0] {
        let (durations, observed) = synth::failure_times(2000, true_mean, study_end, 61);
        let censored = observed.iter().filter(|&&o| !o).count() as f64 / observed.len() as f64;
        let report = fta.run(durations, observed).expect("valid survival data");
        rows.push(vec![
            format!("{study_end}"),
            format!("{:.0}%", censored * 100.0),
            report
                .median_time_to_failure
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "not estimable".into()),
            format!("{true_median:.1}"),
            format!("{:.1}", report.naive_mean_failure_time),
        ]);
    }
    print_table(
        "S2 — Kaplan-Meier vs naive estimates under censoring (true mean lifetime 50)",
        &["study end", "censored", "KM median", "true median", "naive mean of failures"],
        &rows,
    );
    let short = synth::failure_times(400, 20.0, 80.0, 62);
    let long = synth::failure_times(400, 60.0, 80.0, 63);
    let (chi2, differs) = fta.compare_cohorts(short, long).expect("valid cohorts");
    println!(
        "log-rank test between mean-20 and mean-60 cohorts: chi2 = {chi2:.1}, differs at 0.05: {differs}"
    );
    println!("shape: the KM median stays near the truth at every censoring level while the naive mean collapses toward the study cutoff.");
}
