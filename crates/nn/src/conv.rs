//! 1-D convolution and pooling layers for sequence models (the CNN /
//! WaveNet / SeriesNet estimators of §IV-C2).
//!
//! Sequence rows are flattened time-major: cell `(t, c)` of a `len x ch`
//! window lives at column `t * ch + c`.

use coda_linalg::Matrix;

use crate::layer::{Layer, NnRng};

/// 1-D convolution with optional dilation and causal (left) padding.
///
/// With `causal = true` the output length equals the input length and output
/// step `t` only sees inputs at steps `≤ t` — the WaveNet dilated causal
/// convolution. With `causal = false` the convolution is "valid" and the
/// output length is `in_len − (kernel − 1) · dilation`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_len: usize,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    dilation: usize,
    causal: bool,
    weights: Matrix, // (kernel * in_ch) x out_ch
    bias: Matrix,    // 1 x out_ch
    grad_w: Matrix,
    grad_b: Matrix,
    input: Option<Matrix>,
}

impl Conv1d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or a valid convolution would produce
    /// an empty output.
    pub fn new(
        in_len: usize,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        dilation: usize,
        causal: bool,
        seed: u64,
    ) -> Self {
        assert!(in_len > 0 && in_ch > 0 && out_ch > 0 && kernel > 0 && dilation > 0);
        if !causal {
            assert!(
                in_len > (kernel - 1) * dilation,
                "valid convolution output would be empty: len {in_len}, kernel {kernel}, dilation {dilation}"
            );
        }
        let mut rng = NnRng::new(seed.wrapping_add(0xC0));
        let fan_in = (kernel * in_ch) as f64;
        let scale = (2.0 / fan_in).sqrt();
        let mut weights = Matrix::zeros(kernel * in_ch, out_ch);
        for v in weights.as_mut_slice() {
            *v = rng.normal() * scale;
        }
        Conv1d {
            in_len,
            in_ch,
            out_ch,
            kernel,
            dilation,
            causal,
            weights,
            bias: Matrix::zeros(1, out_ch),
            grad_w: Matrix::zeros(kernel * in_ch, out_ch),
            grad_b: Matrix::zeros(1, out_ch),
            input: None,
        }
    }

    /// Output sequence length.
    pub fn out_len(&self) -> usize {
        if self.causal {
            self.in_len
        } else {
            self.in_len - (self.kernel - 1) * self.dilation
        }
    }

    /// Output width in flattened columns (`out_len * out_ch`).
    pub fn out_width(&self) -> usize {
        self.out_len() * self.out_ch
    }

    /// For output step `t` and kernel tap `k`, the input step, or `None` when
    /// the tap falls into causal padding.
    fn input_step(&self, t: usize, k: usize) -> Option<usize> {
        if self.causal {
            let shift = (self.kernel - 1 - k) * self.dilation;
            t.checked_sub(shift)
        } else {
            Some(t + k * self.dilation)
        }
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_len * self.in_ch,
            "conv1d expects {} columns, got {}",
            self.in_len * self.in_ch,
            input.cols()
        );
        if training {
            self.input = Some(input.clone());
        }
        let out_len = self.out_len();
        let mut out = Matrix::zeros(input.rows(), out_len * self.out_ch);
        for r in 0..input.rows() {
            let row = input.row(r);
            for t in 0..out_len {
                for o in 0..self.out_ch {
                    let mut acc = self.bias[(0, o)];
                    for k in 0..self.kernel {
                        if let Some(ts) = self.input_step(t, k) {
                            for i in 0..self.in_ch {
                                acc += self.weights[(k * self.in_ch + i, o)]
                                    * row[ts * self.in_ch + i];
                            }
                        }
                    }
                    out[(r, t * self.out_ch + o)] = acc;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        // backward with no stored activation: no gradient to propagate
        let Some(input) = self.input.as_ref() else {
            return Matrix::zeros(grad_output.rows(), self.in_len * self.in_ch);
        };
        let out_len = self.out_len();
        let mut grad_in = Matrix::zeros(input.rows(), input.cols());
        for r in 0..input.rows() {
            let row = input.row(r);
            for t in 0..out_len {
                for o in 0..self.out_ch {
                    let g = grad_output[(r, t * self.out_ch + o)];
                    if g == 0.0 {
                        continue;
                    }
                    self.grad_b[(0, o)] += g;
                    for k in 0..self.kernel {
                        if let Some(ts) = self.input_step(t, k) {
                            for i in 0..self.in_ch {
                                self.grad_w[(k * self.in_ch + i, o)] +=
                                    g * row[ts * self.in_ch + i];
                                grad_in[(r, ts * self.in_ch + i)] +=
                                    g * self.weights[(k * self.in_ch + i, o)];
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Matrix, &mut Matrix)> {
        vec![(&mut self.weights, &mut self.grad_w), (&mut self.bias, &mut self.grad_b)]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Non-overlapping 1-D max pooling (stride = pool size), per channel.
#[derive(Debug, Clone)]
pub struct MaxPool1d {
    in_len: usize,
    ch: usize,
    pool: usize,
    argmax: Option<Vec<usize>>, // flattened (rows x out cols) -> input column
    in_rows: usize,
}

impl MaxPool1d {
    /// Creates a pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `pool == 0` or `pool > in_len`.
    pub fn new(in_len: usize, ch: usize, pool: usize) -> Self {
        assert!(pool > 0 && pool <= in_len, "invalid pool size");
        MaxPool1d { in_len, ch, pool, argmax: None, in_rows: 0 }
    }

    /// Output sequence length (`in_len / pool`, floor).
    pub fn out_len(&self) -> usize {
        self.in_len / self.pool
    }

    /// Output width in flattened columns.
    pub fn out_width(&self) -> usize {
        self.out_len() * self.ch
    }
}

impl Layer for MaxPool1d {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        assert_eq!(input.cols(), self.in_len * self.ch, "maxpool1d input width mismatch");
        let out_len = self.out_len();
        let mut out = Matrix::zeros(input.rows(), out_len * self.ch);
        let mut argmax = vec![0usize; input.rows() * out_len * self.ch];
        for r in 0..input.rows() {
            let row = input.row(r);
            for t in 0..out_len {
                for c in 0..self.ch {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_col = 0usize;
                    for p in 0..self.pool {
                        let col = (t * self.pool + p) * self.ch + c;
                        if row[col] > best {
                            best = row[col];
                            best_col = col;
                        }
                    }
                    let oc = t * self.ch + c;
                    out[(r, oc)] = best;
                    argmax[r * out_len * self.ch + oc] = best_col;
                }
            }
        }
        if training {
            self.argmax = Some(argmax);
            self.in_rows = input.rows();
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        // backward with no stored argmax: no gradient to propagate
        let Some(argmax) = self.argmax.as_ref() else {
            return Matrix::zeros(grad_output.rows(), self.in_len * self.ch);
        };
        let out_w = self.out_len() * self.ch;
        let mut grad_in = Matrix::zeros(self.in_rows, self.in_len * self.ch);
        for r in 0..self.in_rows {
            for oc in 0..out_w {
                let col = argmax[r * out_w + oc];
                grad_in[(r, col)] += grad_output[(r, oc)];
            }
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling over the time axis: `len x ch` → `ch`.
#[derive(Debug, Clone)]
pub struct GlobalAvgPool1d {
    in_len: usize,
    ch: usize,
    in_rows: usize,
}

impl GlobalAvgPool1d {
    /// Creates a global-average pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_len: usize, ch: usize) -> Self {
        assert!(in_len > 0 && ch > 0);
        GlobalAvgPool1d { in_len, ch, in_rows: 0 }
    }
}

impl Layer for GlobalAvgPool1d {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        assert_eq!(input.cols(), self.in_len * self.ch, "gap1d input width mismatch");
        if training {
            self.in_rows = input.rows();
        }
        let mut out = Matrix::zeros(input.rows(), self.ch);
        for r in 0..input.rows() {
            let row = input.row(r);
            for t in 0..self.in_len {
                for c in 0..self.ch {
                    out[(r, c)] += row[t * self.ch + c];
                }
            }
            for c in 0..self.ch {
                out[(r, c)] /= self.in_len as f64;
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad_in = Matrix::zeros(self.in_rows, self.in_len * self.ch);
        let inv = 1.0 / self.in_len as f64;
        for r in 0..self.in_rows {
            for t in 0..self.in_len {
                for c in 0..self.ch {
                    grad_in[(r, t * self.ch + c)] = grad_output[(r, c)] * inv;
                }
            }
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_conv_known_values() {
        // single channel, kernel 2, weights [1, -1] computes differences
        let mut conv = Conv1d::new(4, 1, 1, 2, 1, false, 1);
        conv.weights[(0, 0)] = -1.0;
        conv.weights[(1, 0)] = 1.0;
        let x = Matrix::from_rows(&[&[1.0, 3.0, 6.0, 10.0]]);
        let out = conv.forward(&x, false);
        assert_eq!(out.shape(), (1, 3));
        assert_eq!(out.as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn causal_conv_preserves_length_and_causality() {
        let mut conv = Conv1d::new(5, 1, 1, 2, 1, true, 2);
        conv.weights[(0, 0)] = 0.0; // tap on t-1
        conv.weights[(1, 0)] = 1.0; // tap on t
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0]]);
        let out = conv.forward(&x, false);
        assert_eq!(out.shape(), (1, 5));
        // with only the "current" tap active, output = input
        assert_eq!(out.as_slice(), x.as_slice());
        // now use only the past tap: output is the input shifted right
        conv.weights[(0, 0)] = 1.0;
        conv.weights[(1, 0)] = 0.0;
        let out = conv.forward(&x, false);
        assert_eq!(out.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn dilated_causal_reaches_back_dilation_steps() {
        let mut conv = Conv1d::new(6, 1, 1, 2, 2, true, 3);
        conv.weights[(0, 0)] = 1.0; // tap on t-2
        conv.weights[(1, 0)] = 0.0;
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]);
        let out = conv.forward(&x, false);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn conv_gradient_matches_finite_difference() {
        let mut conv = Conv1d::new(5, 2, 3, 2, 1, true, 4);
        let mut x = Matrix::zeros(2, 10);
        for (i, v) in x.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f64 * 0.37).sin();
        }
        let eps = 1e-6;
        conv.zero_grads();
        let out = conv.forward(&x, true);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        conv.backward(&ones);
        let analytic = conv.grad_w[(1, 2)];
        let orig = conv.weights[(1, 2)];
        conv.weights[(1, 2)] = orig + eps;
        let plus: f64 = conv.forward(&x, false).as_slice().iter().sum();
        conv.weights[(1, 2)] = orig - eps;
        let minus: f64 = conv.forward(&x, false).as_slice().iter().sum();
        conv.weights[(1, 2)] = orig;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((analytic - numeric).abs() < 1e-4, "analytic {analytic} numeric {numeric}");
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference() {
        let mut conv = Conv1d::new(4, 1, 2, 2, 1, false, 5);
        let x = Matrix::from_rows(&[&[0.5, -0.2, 0.8, 0.1]]);
        let out = conv.forward(&x, true);
        let ones = Matrix::filled(out.rows(), out.cols(), 1.0);
        let gin = conv.backward(&ones);
        let eps = 1e-6;
        let mut xp = x.clone();
        xp[(0, 1)] += eps;
        let plus: f64 = conv.forward(&xp, false).as_slice().iter().sum();
        let mut xm = x.clone();
        xm[(0, 1)] -= eps;
        let minus: f64 = conv.forward(&xm, false).as_slice().iter().sum();
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((gin[(0, 1)] - numeric).abs() < 1e-4);
    }

    #[test]
    fn maxpool_forward_backward() {
        let mut pool = MaxPool1d::new(4, 1, 2);
        let x = Matrix::from_rows(&[&[1.0, 5.0, 2.0, 0.5]]);
        let out = pool.forward(&x, true);
        assert_eq!(out.as_slice(), &[5.0, 2.0]);
        let g = pool.backward(&Matrix::from_rows(&[&[1.0, 2.0]]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn maxpool_multichannel() {
        // len 2, ch 2, pool 2: columns are [t0c0, t0c1, t1c0, t1c1]
        let mut pool = MaxPool1d::new(2, 2, 2);
        let x = Matrix::from_rows(&[&[1.0, 9.0, 4.0, 3.0]]);
        let out = pool.forward(&x, false);
        assert_eq!(out.as_slice(), &[4.0, 9.0]);
    }

    #[test]
    fn gap_average_and_gradient() {
        let mut gap = GlobalAvgPool1d::new(3, 2);
        let x = Matrix::from_rows(&[&[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]]);
        let out = gap.forward(&x, true);
        assert_eq!(out.as_slice(), &[2.0, 20.0]);
        let g = gap.backward(&Matrix::from_rows(&[&[3.0, 6.0]]));
        assert_eq!(g.as_slice(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn out_helpers() {
        let conv = Conv1d::new(10, 2, 4, 3, 2, false, 6);
        assert_eq!(conv.out_len(), 6);
        assert_eq!(conv.out_width(), 24);
        let causal = Conv1d::new(10, 2, 4, 3, 2, true, 6);
        assert_eq!(causal.out_len(), 10);
        let pool = MaxPool1d::new(7, 3, 2);
        assert_eq!(pool.out_len(), 3);
        assert_eq!(pool.out_width(), 9);
    }

    #[test]
    fn invalid_configs_panic() {
        assert!(std::panic::catch_unwind(|| Conv1d::new(3, 1, 1, 5, 1, false, 0)).is_err());
        assert!(std::panic::catch_unwind(|| MaxPool1d::new(3, 1, 4)).is_err());
    }
}
