/root/repo/target/debug/deps/coda_timeseries-9d5f3b358ac4bc82.d: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_timeseries-9d5f3b358ac4bc82.rmeta: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs Cargo.toml

crates/timeseries/src/lib.rs:
crates/timeseries/src/deep.rs:
crates/timeseries/src/forecast.rs:
crates/timeseries/src/models.rs:
crates/timeseries/src/pipeline.rs:
crates/timeseries/src/series.rs:
crates/timeseries/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
