/root/repo/target/release/deps/coda_nn-acca35aecd5fa436.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/estimators.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/network.rs crates/nn/src/optim.rs crates/nn/src/residual.rs

/root/repo/target/release/deps/libcoda_nn-acca35aecd5fa436.rlib: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/estimators.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/network.rs crates/nn/src/optim.rs crates/nn/src/residual.rs

/root/repo/target/release/deps/libcoda_nn-acca35aecd5fa436.rmeta: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/estimators.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/network.rs crates/nn/src/optim.rs crates/nn/src/residual.rs

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/estimators.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/network.rs:
crates/nn/src/optim.rs:
crates/nn/src/residual.rs:
