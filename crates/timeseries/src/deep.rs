//! Deep-learning forecasters (§IV-C2/3): LSTM, CNN, WaveNet, SeriesNet and
//! standard-DNN estimators over windowed datasets.
//!
//! Temporal models consume `CascadedWindows` output and interpret its
//! columns as a `(history, vars)` time-major grid; the DNN forecaster
//! consumes `FlatWindowing` / `TsAsIid` output as an unordered feature bag.
//! Each family offers the paper's *simple* and *deep* architecture variants.

use coda_data::{BoxedEstimator, ComponentError, Dataset, Estimator, ParamValue, TaskKind};
use coda_linalg::Matrix;
use coda_nn::{
    Activation, Adam, Conv1d, Dense, Dropout, GlobalAvgPool1d, Layer, Loss, Lstm, MaxPool1d,
    Residual, Sequential,
};

/// Extracts the final timestep's channels from a time-major sequence —
/// WaveNet's forecast head reads only the last (fully-receptive) position.
#[derive(Debug, Clone)]
struct TakeLast1d {
    len: usize,
    ch: usize,
    in_rows: usize,
}

impl TakeLast1d {
    fn new(len: usize, ch: usize) -> Self {
        assert!(len > 0 && ch > 0);
        TakeLast1d { len, ch, in_rows: 0 }
    }
}

impl Layer for TakeLast1d {
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        assert_eq!(input.cols(), self.len * self.ch, "take_last width mismatch");
        if training {
            self.in_rows = input.rows();
        }
        let mut out = Matrix::zeros(input.rows(), self.ch);
        let start = (self.len - 1) * self.ch;
        for r in 0..input.rows() {
            out.row_mut(r).copy_from_slice(&input.row(r)[start..start + self.ch]);
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut grad_in = Matrix::zeros(self.in_rows, self.len * self.ch);
        let start = (self.len - 1) * self.ch;
        for r in 0..self.in_rows {
            grad_in.row_mut(r)[start..start + self.ch].copy_from_slice(grad_output.row(r));
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Shared training configuration for the deep forecasters.
#[derive(Debug, Clone, Copy)]
struct TrainCfg {
    epochs: usize,
    batch_size: usize,
    learning_rate: f64,
    seed: u64,
}

impl Default for TrainCfg {
    fn default() -> Self {
        TrainCfg { epochs: 120, batch_size: 32, learning_rate: 0.01, seed: 0 }
    }
}

fn set_train_param(
    cfg: &mut TrainCfg,
    component: &str,
    param: &str,
    value: ParamValue,
) -> Result<(), ComponentError> {
    let bad = |reason: &str| ComponentError::InvalidParam {
        component: component.to_string(),
        param: param.to_string(),
        reason: reason.to_string(),
    };
    match param {
        "epochs" => {
            cfg.epochs = value
                .as_usize()
                .filter(|&x| x > 0)
                .ok_or_else(|| bad("must be a positive integer"))?;
            Ok(())
        }
        "learning_rate" => {
            cfg.learning_rate =
                value.as_f64().filter(|&x| x > 0.0).ok_or_else(|| bad("must be positive"))?;
            Ok(())
        }
        "batch_size" => {
            cfg.batch_size = value
                .as_usize()
                .filter(|&x| x > 0)
                .ok_or_else(|| bad("must be a positive integer"))?;
            Ok(())
        }
        "seed" => {
            cfg.seed = value.as_i64().map(|x| x as u64).ok_or_else(|| bad("must be an integer"))?;
            Ok(())
        }
        _ => Err(ComponentError::UnknownParam {
            component: component.to_string(),
            param: param.to_string(),
        }),
    }
}

fn check_width(expected: usize, data: &Dataset, name: &str) -> Result<(), ComponentError> {
    if data.n_features() != expected {
        return Err(ComponentError::InvalidInput(format!(
            "{name} expects {expected} columns, input has {}",
            data.n_features()
        )));
    }
    Ok(())
}

fn fit_net(net: &mut Sequential, data: &Dataset, cfg: &TrainCfg) -> Result<(), ComponentError> {
    let y = data.target_required()?;
    let ty = Matrix::from_vec(y.len(), 1, y.to_vec());
    let mut opt = Adam::new(cfg.learning_rate);
    net.fit(
        data.features(),
        &ty,
        Loss::Mse,
        &mut opt,
        cfg.epochs,
        cfg.batch_size.min(data.n_samples().max(1)),
        cfg.seed,
    );
    Ok(())
}

macro_rules! deep_forecaster_common {
    ($name:ident, $display:expr) => {
        impl $name {
            /// Sets the training epoch count.
            pub fn with_epochs(mut self, epochs: usize) -> Self {
                self.cfg.epochs = epochs.max(1);
                self
            }

            /// Sets the initialization/shuffle seed.
            pub fn with_seed(mut self, seed: u64) -> Self {
                self.cfg.seed = seed;
                self
            }

            /// Sets the Adam learning rate.
            ///
            /// # Panics
            ///
            /// Panics if `lr <= 0`.
            pub fn with_learning_rate(mut self, lr: f64) -> Self {
                assert!(lr > 0.0, "learning rate must be positive");
                self.cfg.learning_rate = lr;
                self
            }
        }

        impl Estimator for $name {
            fn name(&self) -> &str {
                $display
            }

            fn task(&self) -> TaskKind {
                TaskKind::Forecasting
            }

            fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
                set_train_param(&mut self.cfg, $display, param, value)
            }

            fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
                check_width(self.expected_width(), data, $display)?;
                let mut net = self.build_net()?;
                fit_net(&mut net, data, &self.cfg)?;
                self.net = Some(net);
                Ok(())
            }

            fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
                let net = self
                    .net
                    .as_ref()
                    .ok_or_else(|| ComponentError::NotFitted($display.to_string()))?;
                check_width(self.expected_width(), data, $display)?;
                let mut net = net.clone();
                Ok(net.predict(data.features()).col(0))
            }

            fn clone_box(&self) -> BoxedEstimator {
                let mut fresh = self.clone();
                fresh.net = None;
                Box::new(fresh)
            }
        }
    };
}

/// LSTM forecaster: simple (1 LSTM layer + dropout) or deep (4 stacked LSTM
/// layers, each with dropout), finished by a linear dense head — the two
/// architectures of §IV-C2.
#[derive(Debug, Clone)]
pub struct LstmForecaster {
    history: usize,
    vars: usize,
    hidden: usize,
    deep: bool,
    cfg: TrainCfg,
    net: Option<Sequential>,
}

impl LstmForecaster {
    /// The simple architecture.
    pub fn simple(history: usize, vars: usize) -> Self {
        LstmForecaster {
            history,
            vars,
            hidden: 16,
            deep: false,
            cfg: TrainCfg::default(),
            net: None,
        }
    }

    /// The deep (4-layer) architecture.
    pub fn deep(history: usize, vars: usize) -> Self {
        let mut m = Self::simple(history, vars);
        m.deep = true;
        m
    }

    fn expected_width(&self) -> usize {
        self.history * self.vars
    }

    fn build_net(&self) -> Result<Sequential, ComponentError> {
        let s = self.cfg.seed;
        let h = self.hidden;
        let net = if self.deep {
            Sequential::new()
                .push(Lstm::new(self.history, self.vars, h, s).returning_sequences())
                .push(Dropout::new(0.1, s + 1))
                .push(Lstm::new(self.history, h, h, s + 2).returning_sequences())
                .push(Dropout::new(0.1, s + 3))
                .push(Lstm::new(self.history, h, h, s + 4).returning_sequences())
                .push(Dropout::new(0.1, s + 5))
                .push(Lstm::new(self.history, h, h, s + 6))
                .push(Dropout::new(0.1, s + 7))
                .push(Dense::new(h, 1, s + 8))
        } else {
            Sequential::new()
                .push(Lstm::new(self.history, self.vars, h, s))
                .push(Dropout::new(0.1, s + 1))
                .push(Dense::new(h, 1, s + 2))
        };
        // recurrent nets: clip gradients against explosion (§IV-C2)
        Ok(net.with_grad_clip(5.0))
    }
}

deep_forecaster_common!(LstmForecaster, "lstm_forecaster");

/// CNN forecaster (§IV-C2): 1-D convolution, max pooling, a dense ReLU
/// layer and a linear head; the deep variant stacks two conv/pool blocks.
#[derive(Debug, Clone)]
pub struct CnnForecaster {
    history: usize,
    vars: usize,
    filters: usize,
    deep: bool,
    cfg: TrainCfg,
    net: Option<Sequential>,
}

impl CnnForecaster {
    /// The simple architecture (one conv/pool block).
    pub fn simple(history: usize, vars: usize) -> Self {
        CnnForecaster {
            history,
            vars,
            filters: 8,
            deep: false,
            cfg: TrainCfg::default(),
            net: None,
        }
    }

    /// The deep architecture (two conv/pool blocks).
    pub fn deep(history: usize, vars: usize) -> Self {
        let mut m = Self::simple(history, vars);
        m.deep = true;
        m
    }

    fn expected_width(&self) -> usize {
        self.history * self.vars
    }

    fn build_net(&self) -> Result<Sequential, ComponentError> {
        let s = self.cfg.seed;
        let f = self.filters;
        let need = if self.deep { 10 } else { 4 };
        if self.history < need {
            return Err(ComponentError::InvalidInput(format!(
                "cnn_forecaster needs a history window of at least {need}, got {}",
                self.history
            )));
        }
        let conv1 = Conv1d::new(self.history, self.vars, f, 3, 1, false, s);
        let len1 = conv1.out_len();
        let pool1 = MaxPool1d::new(len1, f, 2);
        let len1p = pool1.out_len();
        let mut net = Sequential::new().push(conv1).push(Activation::relu()).push(pool1);
        let (final_len, final_ch) = if self.deep {
            let conv2 = Conv1d::new(len1p, f, f * 2, 3, 1, false, s + 1);
            let len2 = conv2.out_len();
            let pool2 = MaxPool1d::new(len2, f * 2, 2);
            let len2p = pool2.out_len();
            net = net.push(conv2).push(Activation::relu()).push(pool2);
            (len2p, f * 2)
        } else {
            (len1p, f)
        };
        let flat = final_len * final_ch;
        Ok(net.push(Dense::new(flat, 16, s + 2)).push(Activation::relu()).push(Dense::new(
            16,
            1,
            s + 3,
        )))
    }
}

deep_forecaster_common!(CnnForecaster, "cnn_forecaster");

/// WaveNet-style forecaster (§IV-C2): a stack of dilated causal
/// convolutions (dilations 1, 2, 4, …) with ReLU, read out at the last
/// (fully receptive) timestep.
#[derive(Debug, Clone)]
pub struct WaveNetForecaster {
    history: usize,
    vars: usize,
    channels: usize,
    n_blocks: usize,
    cfg: TrainCfg,
    net: Option<Sequential>,
}

impl WaveNetForecaster {
    /// Creates a WaveNet forecaster with three dilated blocks (1, 2, 4).
    pub fn new(history: usize, vars: usize) -> Self {
        WaveNetForecaster {
            history,
            vars,
            channels: 8,
            n_blocks: 3,
            cfg: TrainCfg::default(),
            net: None,
        }
    }

    fn expected_width(&self) -> usize {
        self.history * self.vars
    }

    fn build_net(&self) -> Result<Sequential, ComponentError> {
        let s = self.cfg.seed;
        let c = self.channels;
        let mut net = Sequential::new()
            .push(Conv1d::new(self.history, self.vars, c, 1, 1, true, s))
            .push(Activation::relu());
        for b in 0..self.n_blocks {
            let dilation = 1usize << b;
            net = net
                .push(Conv1d::new(self.history, c, c, 2, dilation, true, s + 1 + b as u64))
                .push(Activation::relu());
        }
        Ok(net.push(TakeLast1d::new(self.history, c)).push(Dense::new(c, 1, s + 100)))
    }
}

deep_forecaster_common!(WaveNetForecaster, "wavenet_forecaster");

/// SeriesNet-style forecaster (§IV-C2): WaveNet dilated causal blocks with
/// residual skip connections, global average pooling and a linear head.
#[derive(Debug, Clone)]
pub struct SeriesNetForecaster {
    history: usize,
    vars: usize,
    channels: usize,
    n_blocks: usize,
    cfg: TrainCfg,
    net: Option<Sequential>,
}

impl SeriesNetForecaster {
    /// Creates a SeriesNet forecaster with four residual dilated blocks
    /// (dilations 1, 2, 4, 8).
    pub fn new(history: usize, vars: usize) -> Self {
        SeriesNetForecaster {
            history,
            vars,
            channels: 8,
            n_blocks: 4,
            cfg: TrainCfg::default(),
            net: None,
        }
    }

    fn expected_width(&self) -> usize {
        self.history * self.vars
    }

    fn build_net(&self) -> Result<Sequential, ComponentError> {
        let s = self.cfg.seed;
        let c = self.channels;
        let mut net =
            Sequential::new().push(Conv1d::new(self.history, self.vars, c, 1, 1, true, s));
        for b in 0..self.n_blocks {
            let dilation = 1usize << b;
            net = net.push(Residual::new(vec![
                Box::new(Conv1d::new(self.history, c, c, 2, dilation, true, s + 1 + b as u64)),
                Box::new(Activation::tanh()),
            ]));
        }
        Ok(net.push(GlobalAvgPool1d::new(self.history, c)).push(Dense::new(c, 1, s + 100)))
    }
}

deep_forecaster_common!(SeriesNetForecaster, "seriesnet_forecaster");

/// Standard-DNN forecaster (§IV-C3): treats windowed/transactional input as
/// IID features. Simple = 2 hidden layers + dropout, deep = 4.
#[derive(Debug, Clone)]
pub struct DnnForecaster {
    in_dim: usize,
    width: usize,
    deep: bool,
    cfg: TrainCfg,
    net: Option<Sequential>,
}

impl DnnForecaster {
    /// The simple architecture over `in_dim` input features.
    pub fn simple(in_dim: usize) -> Self {
        DnnForecaster { in_dim, width: 32, deep: false, cfg: TrainCfg::default(), net: None }
    }

    /// The deep (4 hidden layer) architecture.
    pub fn deep(in_dim: usize) -> Self {
        let mut m = Self::simple(in_dim);
        m.deep = true;
        m
    }

    fn expected_width(&self) -> usize {
        self.in_dim
    }

    fn build_net(&self) -> Result<Sequential, ComponentError> {
        let s = self.cfg.seed;
        let w = self.width;
        let sizes: Vec<usize> = if self.deep { vec![w, w, w / 2, w / 2] } else { vec![w, w / 2] };
        let mut net = Sequential::new();
        let mut cur = self.in_dim;
        for (i, h) in sizes.into_iter().enumerate() {
            let h = h.max(2);
            net = net
                .push(Dense::new(cur, h, s + i as u64 * 13))
                .push(Activation::relu())
                .push(Dropout::new(0.1, s + 50 + i as u64));
            cur = h;
        }
        Ok(net.push(Dense::new(cur, 1, s + 999)))
    }
}

deep_forecaster_common!(DnnForecaster, "dnn_forecaster");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesData;
    use crate::window::{CascadedWindows, TsAsIs, WindowConfig};
    use coda_data::{metrics, synth, Transformer};

    fn windowed(series: Vec<f64>, p: usize) -> Dataset {
        let ds = SeriesData::univariate(series).to_dataset();
        CascadedWindows::new(WindowConfig::new(p, 1)).fit_transform(&ds).unwrap()
    }

    /// RMSE of a fitted forecaster vs the zero baseline on a sine wave.
    fn beats_zero(mut model: impl Estimator, p: usize) -> (f64, f64) {
        let series: Vec<f64> =
            (0..360).map(|i| (2.0 * std::f64::consts::PI * i as f64 / 24.0).sin() * 3.0).collect();
        let data = windowed(series.clone(), p);
        let (train, test) = data.chronological_split(0.25);
        model.fit(&train).unwrap();
        let rmse = metrics::rmse(test.target().unwrap(), &model.predict(&test).unwrap()).unwrap();
        // zero baseline via TsAsIs lags
        let lag_ds = TsAsIs::new(WindowConfig::new(p, 1))
            .fit_transform(&SeriesData::univariate(series).to_dataset())
            .unwrap();
        let (ztrain, ztest) = lag_ds.chronological_split(0.25);
        let mut z = crate::models::ZeroModel::new();
        z.fit(&ztrain).unwrap();
        let zero_rmse =
            metrics::rmse(ztest.target().unwrap(), &z.predict(&ztest).unwrap()).unwrap();
        (rmse, zero_rmse)
    }

    #[test]
    fn lstm_beats_zero_on_sine() {
        let m = LstmForecaster::simple(12, 1).with_epochs(80).with_seed(1);
        let (rmse, zero) = beats_zero(m, 12);
        assert!(rmse < zero, "lstm {rmse:.4} vs zero {zero:.4}");
    }

    #[test]
    fn cnn_beats_zero_on_sine() {
        let m = CnnForecaster::simple(12, 1).with_epochs(100).with_seed(2);
        let (rmse, zero) = beats_zero(m, 12);
        assert!(rmse < zero, "cnn {rmse:.4} vs zero {zero:.4}");
    }

    #[test]
    fn wavenet_beats_zero_on_sine() {
        let m = WaveNetForecaster::new(12, 1).with_epochs(100).with_seed(3);
        let (rmse, zero) = beats_zero(m, 12);
        assert!(rmse < zero, "wavenet {rmse:.4} vs zero {zero:.4}");
    }

    #[test]
    fn seriesnet_beats_zero_on_sine() {
        let m = SeriesNetForecaster::new(12, 1).with_epochs(100).with_seed(4);
        let (rmse, zero) = beats_zero(m, 12);
        assert!(rmse < zero, "seriesnet {rmse:.4} vs zero {zero:.4}");
    }

    #[test]
    fn dnn_beats_zero_on_sine() {
        let m = DnnForecaster::simple(12).with_epochs(150).with_seed(5);
        let (rmse, zero) = beats_zero(m, 12);
        assert!(rmse < zero, "dnn {rmse:.4} vs zero {zero:.4}");
    }

    #[test]
    fn deep_variants_fit() {
        let data = windowed(synth::trend_seasonal_series(200, 24.0, 0.2, 21), 12);
        let mut deep_lstm = LstmForecaster::deep(12, 1).with_epochs(5);
        deep_lstm.fit(&data).unwrap();
        assert_eq!(deep_lstm.predict(&data).unwrap().len(), data.n_samples());
        let mut deep_cnn = CnnForecaster::deep(12, 1).with_epochs(5);
        deep_cnn.fit(&data).unwrap();
        let mut deep_dnn = DnnForecaster::deep(12).with_epochs(5);
        deep_dnn.fit(&data).unwrap();
    }

    #[test]
    fn width_mismatch_rejected() {
        let data = windowed(synth::trend_seasonal_series(100, 24.0, 0.2, 22), 8);
        let mut m = LstmForecaster::simple(12, 1).with_epochs(2);
        assert!(m.fit(&data).is_err());
        let mut ok = LstmForecaster::simple(8, 1).with_epochs(2);
        ok.fit(&data).unwrap();
        let wrong = windowed(synth::trend_seasonal_series(100, 24.0, 0.2, 23), 10);
        assert!(ok.predict(&wrong).is_err());
    }

    #[test]
    fn cnn_history_too_short() {
        let mut m = CnnForecaster::deep(6, 1);
        let data = windowed(synth::trend_seasonal_series(100, 24.0, 0.2, 24), 6);
        assert!(m.fit(&data).is_err());
    }

    #[test]
    fn not_fitted_and_params() {
        let data = windowed(synth::trend_seasonal_series(60, 24.0, 0.2, 25), 6);
        assert!(WaveNetForecaster::new(6, 1).predict(&data).is_err());
        let mut m = DnnForecaster::simple(6);
        m.set_param("epochs", ParamValue::from(10usize)).unwrap();
        m.set_param("learning_rate", ParamValue::from(0.02)).unwrap();
        m.set_param("batch_size", ParamValue::from(16usize)).unwrap();
        m.set_param("seed", ParamValue::from(9i64)).unwrap();
        assert!(m.set_param("epochs", ParamValue::from(0usize)).is_err());
        assert!(m.set_param("zzz", ParamValue::from(1usize)).is_err());
    }

    #[test]
    fn clone_box_is_unfitted() {
        let data = windowed(synth::trend_seasonal_series(80, 24.0, 0.2, 26), 6);
        let mut m = DnnForecaster::simple(6).with_epochs(3);
        m.fit(&data).unwrap();
        let cloned = m.clone_box();
        assert!(cloned.predict(&data).is_err());
    }
}
