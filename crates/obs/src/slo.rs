//! Declared service-level objectives evaluated as multi-window burn rates
//! over a [`FlightRecorder`] timeline (the Google-SRE multi-window,
//! multi-burn-rate alerting rule).
//!
//! An [`SloSpec`] names a signal (a bad/good counter ratio, the fraction
//! of a latency histogram above a threshold, or a raw occurrence budget)
//! and an error-budget objective. The [`SloEngine`] re-evaluates every
//! declared SLO each time the flight recorder closes a window: the *burn
//! rate* is how fast the error budget is being consumed relative to the
//! objective (burn 1.0 = exactly on budget), computed over both a long
//! and a short window of recent flight history. An alert fires only when
//! **both** exceed the factor — the long window filters noise, the short
//! window proves the problem is still happening — emitting a
//! deterministic `slo.burn` trace event and flipping the SLO's shared
//! [`BurnState`], the hook an admission-control edge can consult.
//!
//! Everything is a pure function of the timeline, so same-seed runs
//! produce byte-identical [`SloReport`]s.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use serde::impl_serde_struct;

use crate::flight::{FlightRecorder, FlightWindow};
use crate::trace::Tracer;

/// What an SLO measures over each flight window.
#[derive(Debug, Clone)]
pub enum SloSignal {
    /// Bad-event fraction: `bad / (bad + good)` over two counters (e.g.
    /// shed requests vs completed requests).
    EventRatio {
        /// Counter of bad events.
        bad: String,
        /// Counter of good events.
        good: String,
    },
    /// Fraction of a histogram's observations above `threshold_ms`
    /// (bucket-resolution: an observation counts as bad when its whole
    /// bucket lies above the threshold).
    LatencyAbove {
        /// Histogram name.
        histogram: String,
        /// The latency objective's threshold.
        threshold_ms: f64,
    },
    /// A raw occurrence budget: `allowed_per_window` occurrences of a
    /// counter are tolerated per level-0 window; the burn rate is
    /// occurrences over allowance (fractional budgets like `0.5` make a
    /// single occurrence a breach at factor 1).
    Occurrence {
        /// Counter of occurrences (e.g. failovers).
        counter: String,
        /// Budgeted occurrences per level-0 window (must be > 0).
        allowed_per_window: f64,
    },
}

/// One declared objective.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Stable SLO name (lands in `slo.burn` events and the report).
    pub name: String,
    /// What to measure.
    pub signal: SloSignal,
    /// Allowed bad fraction (the error budget); ignored by
    /// [`SloSignal::Occurrence`], whose budget is `allowed_per_window`.
    pub objective: f64,
}

/// The evaluation windows, counted in flight-timeline windows.
#[derive(Debug, Clone)]
pub struct BurnWindows {
    /// Long window length (smooths noise).
    pub long_windows: usize,
    /// Short window length (proves the burn is current).
    pub short_windows: usize,
    /// Burn-rate threshold both windows must exceed to alert.
    pub factor: f64,
}

impl Default for BurnWindows {
    fn default() -> Self {
        BurnWindows { long_windows: 12, short_windows: 3, factor: 2.0 }
    }
}

/// Lock-free burn state shared with consumers (e.g. a serving tier's
/// admission edge): the latest long-window burn rate and whether the SLO
/// is currently breaching.
#[derive(Debug, Default)]
pub struct BurnState {
    breached: AtomicBool,
    burn_bits: AtomicU64,
}

impl BurnState {
    /// Creates a quiescent state (burn 0, not breached).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the SLO breached at the latest evaluation.
    pub fn breached(&self) -> bool {
        self.breached.load(Ordering::Relaxed)
    }

    /// The latest long-window burn rate.
    pub fn burn(&self) -> f64 {
        f64::from_bits(self.burn_bits.load(Ordering::Relaxed))
    }

    /// Overwrites the published state. Normally called by
    /// [`SloEngine::step`] at window boundaries; public so drivers and
    /// tests can force a consumer-visible breach without a full timeline.
    pub fn update(&self, burn: f64, breached: bool) {
        self.burn_bits.store(burn.to_bits(), Ordering::Relaxed);
        self.breached.store(breached, Ordering::Relaxed);
    }
}

/// One evaluation of one SLO at one window boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SloEvaluation {
    /// The SLO evaluated.
    pub slo: String,
    /// The window boundary (end of the newest window), milliseconds.
    pub at_ms: f64,
    /// Burn rate over the long window.
    pub long_burn: f64,
    /// Burn rate over the short window.
    pub short_burn: f64,
    /// Whether both burns exceeded the factor.
    pub breached: bool,
}

impl_serde_struct!(SloEvaluation { slo, at_ms, long_burn, short_burn, breached });

/// Per-SLO rollup across all evaluations.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The SLO.
    pub slo: String,
    /// Evaluations performed.
    pub evaluations: u64,
    /// Evaluations that breached.
    pub breaches: u64,
    /// Worst long-window burn observed.
    pub max_long_burn: f64,
    /// Worst short-window burn observed.
    pub max_short_burn: f64,
}

impl_serde_struct!(SloStatus { slo, evaluations, breaches, max_long_burn, max_short_burn });

/// Everything the engine concluded — the deterministic JSON artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Per-SLO rollups, in declaration order.
    pub statuses: Vec<SloStatus>,
    /// Every evaluation, in time then declaration order.
    pub evaluations: Vec<SloEvaluation>,
}

impl_serde_struct!(SloReport { statuses, evaluations });

/// One contiguous run of breached evaluations for a single SLO — the unit
/// the diagnosis layer turns into an incident.
#[derive(Debug, Clone, PartialEq)]
pub struct BreachRun {
    /// The breaching SLO.
    pub slo: String,
    /// Boundary time of the first breached evaluation, milliseconds.
    pub first_ms: f64,
    /// Boundary time of the last breached evaluation in the run.
    pub last_ms: f64,
    /// Breached evaluations in the run.
    pub evaluations: u64,
    /// Worst long-window burn inside the run.
    pub max_long_burn: f64,
    /// Worst short-window burn inside the run.
    pub max_short_burn: f64,
}

impl SloReport {
    /// Total breaches across all SLOs.
    pub fn total_breaches(&self) -> u64 {
        self.statuses.iter().map(|s| s.breaches).sum()
    }

    /// Contiguous breach runs, grouped per SLO in declaration order and
    /// chronological within each SLO: consecutive breached evaluations
    /// collapse into one run; a clean evaluation in between splits runs.
    pub fn breach_runs(&self) -> Vec<BreachRun> {
        let mut runs = Vec::new();
        for status in &self.statuses {
            let mut current: Option<BreachRun> = None;
            for e in self.evaluations.iter().filter(|e| e.slo == status.slo) {
                if e.breached {
                    let run = current.get_or_insert(BreachRun {
                        slo: status.slo.clone(),
                        first_ms: e.at_ms,
                        last_ms: e.at_ms,
                        evaluations: 0,
                        max_long_burn: 0.0,
                        max_short_burn: 0.0,
                    });
                    run.last_ms = e.at_ms;
                    run.evaluations += 1;
                    run.max_long_burn = run.max_long_burn.max(e.long_burn);
                    run.max_short_burn = run.max_short_burn.max(e.short_burn);
                } else if let Some(run) = current.take() {
                    runs.push(run);
                }
            }
            if let Some(run) = current.take() {
                runs.push(run);
            }
        }
        runs
    }

    /// Serializes to deterministic JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error message on malformed input.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let value = serde_json::parse(s).map_err(|e| e.to_string())?;
        serde::Deserialize::from_value(&value)
    }
}

/// The bad fraction of `signal` over a set of flight windows, plus the
/// divisor that turns it into a burn rate.
fn burn_over(signal: &SloSignal, objective: f64, windows: &[&FlightWindow]) -> f64 {
    match signal {
        SloSignal::EventRatio { bad, good } => {
            let bad_n: u64 = windows.iter().map(|w| w.delta.counter(bad)).sum();
            let good_n: u64 = windows.iter().map(|w| w.delta.counter(good)).sum();
            let total = bad_n + good_n;
            if total == 0 || objective <= 0.0 {
                return 0.0;
            }
            (bad_n as f64 / total as f64) / objective
        }
        SloSignal::LatencyAbove { histogram, threshold_ms } => {
            let mut above = 0u64;
            let mut total = 0u64;
            for w in windows {
                if let Some(h) = w.delta.histograms.get(histogram) {
                    total += h.count;
                    for (i, n) in h.counts.iter().enumerate() {
                        // the bucket's lower edge: bound[i-1], or 0 for the
                        // first; a bucket is "above" when even its lower
                        // edge clears the threshold
                        let lower = if i == 0 { 0.0 } else { h.bounds[i - 1] };
                        if lower >= *threshold_ms {
                            above += n;
                        }
                    }
                }
            }
            if total == 0 || objective <= 0.0 {
                return 0.0;
            }
            (above as f64 / total as f64) / objective
        }
        SloSignal::Occurrence { counter, allowed_per_window } => {
            let n: u64 = windows.iter().map(|w| w.delta.counter(counter)).sum();
            let spanned: u64 = windows.iter().map(|w| w.windows).sum();
            let allowance = allowed_per_window * spanned as f64;
            if allowance <= 0.0 {
                return if n > 0 { f64::INFINITY } else { 0.0 };
            }
            n as f64 / allowance
        }
    }
}

/// Evaluates declared SLOs against a flight timeline and maintains the
/// shared per-SLO [`BurnState`]s.
#[derive(Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    windows: BurnWindows,
    states: Vec<Arc<BurnState>>,
    evaluations: Vec<SloEvaluation>,
    last_eval_ms: Option<f64>,
}

impl SloEngine {
    /// Creates an engine over `specs` with the given burn windows.
    pub fn new(specs: Vec<SloSpec>, windows: BurnWindows) -> Self {
        let states = specs.iter().map(|_| Arc::new(BurnState::new())).collect();
        SloEngine { specs, windows, states, evaluations: Vec::new(), last_eval_ms: None }
    }

    /// The shared burn state for SLO `name` — hand this to a consumer
    /// (e.g. `ServeConfig::burn_admission`) to let it react to breaches.
    pub fn burn_state(&self, name: &str) -> Option<Arc<BurnState>> {
        self.specs.iter().position(|s| s.name == name).map(|i| Arc::clone(&self.states[i]))
    }

    /// Evaluates every SLO at the recorder's newest window boundary (a
    /// no-op when no new window has closed since the last step). On a
    /// breach, emits a deterministic `slo.burn` event stamped with the
    /// boundary time when a tracer is given. Returns breaches fired by
    /// this step.
    pub fn step(&mut self, recorder: &FlightRecorder, tracer: Option<&Tracer>) -> u64 {
        let timeline = recorder.timeline();
        let Some(newest) = timeline.last() else { return 0 };
        let at_ms = newest.end_ms;
        if self.last_eval_ms == Some(at_ms) {
            return 0;
        }
        self.last_eval_ms = Some(at_ms);
        let long_slice = tail(&timeline, self.windows.long_windows);
        let short_slice = tail(&timeline, self.windows.short_windows);
        let mut fired = 0;
        for (spec, state) in self.specs.iter().zip(&self.states) {
            let long_burn = burn_over(&spec.signal, spec.objective, long_slice);
            let short_burn = burn_over(&spec.signal, spec.objective, short_slice);
            let breached = long_burn >= self.windows.factor && short_burn >= self.windows.factor;
            state.update(long_burn, breached);
            if breached {
                fired += 1;
                if let Some(t) = tracer {
                    t.event_at(
                        at_ms,
                        "slo.burn",
                        &[
                            ("slo", &spec.name),
                            ("long_burn", &format!("{long_burn:.3}")),
                            ("short_burn", &format!("{short_burn:.3}")),
                        ],
                    );
                }
            }
            self.evaluations.push(SloEvaluation {
                slo: spec.name.clone(),
                at_ms,
                long_burn,
                short_burn,
                breached,
            });
        }
        fired
    }

    /// The accumulated report.
    pub fn report(&self) -> SloReport {
        let statuses = self
            .specs
            .iter()
            .map(|spec| {
                let mine = self.evaluations.iter().filter(|e| e.slo == spec.name);
                let mut status = SloStatus {
                    slo: spec.name.clone(),
                    evaluations: 0,
                    breaches: 0,
                    max_long_burn: 0.0,
                    max_short_burn: 0.0,
                };
                for e in mine {
                    status.evaluations += 1;
                    if e.breached {
                        status.breaches += 1;
                    }
                    status.max_long_burn = status.max_long_burn.max(e.long_burn);
                    status.max_short_burn = status.max_short_burn.max(e.short_burn);
                }
                status
            })
            .collect();
        SloReport { statuses, evaluations: self.evaluations.clone() }
    }
}

/// The last `n` windows of a timeline (all of it when shorter).
fn tail<'a, 'w>(timeline: &'a [&'w FlightWindow], n: usize) -> &'a [&'w FlightWindow] {
    &timeline[timeline.len().saturating_sub(n)..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::flight::FlightConfig;
    use crate::metrics::MetricsRegistry;

    fn shed_slo() -> SloSpec {
        SloSpec {
            name: "serve-shed-rate".to_string(),
            signal: SloSignal::EventRatio {
                bad: "coda_serve_shed_total".to_string(),
                good: "coda_serve_ops_total".to_string(),
            },
            objective: 0.05,
        }
    }

    fn engine_and_recorder(specs: Vec<SloSpec>) -> (SloEngine, FlightRecorder, MetricsRegistry) {
        let windows = BurnWindows { long_windows: 4, short_windows: 2, factor: 2.0 };
        let cfg = FlightConfig { window_ms: 10.0, level_capacity: 16, merge: 4, levels: 2 };
        (SloEngine::new(specs, windows), FlightRecorder::new(cfg), MetricsRegistry::new())
    }

    #[test]
    fn healthy_traffic_never_burns() {
        let (mut engine, mut rec, reg) = engine_and_recorder(vec![shed_slo()]);
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=6 {
            reg.count("coda_serve_ops_total", 100);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
            assert_eq!(engine.step(&rec, None), 0);
        }
        let report = engine.report();
        assert_eq!(report.total_breaches(), 0);
        assert_eq!(report.statuses[0].evaluations, 6);
        assert_eq!(report.statuses[0].max_long_burn, 0.0);
    }

    #[test]
    fn sustained_sheds_breach_both_windows_and_emit_events() {
        let clock = std::sync::Arc::new(ManualClock::new());
        let tracer = Tracer::new(clock as std::sync::Arc<dyn Clock>);
        let (mut engine, mut rec, reg) = engine_and_recorder(vec![shed_slo()]);
        rec.tick(0.0, &reg.snapshot());
        let mut fired = 0;
        for i in 1..=4 {
            // 30% shed rate against a 5% objective: burn 6 > factor 2
            reg.count("coda_serve_ops_total", 70);
            reg.count("coda_serve_shed_total", 30);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
            fired += engine.step(&rec, Some(&tracer));
        }
        assert!(fired >= 1, "sustained overload must alert");
        let report = engine.report();
        assert!(report.total_breaches() >= 1);
        assert!(report.statuses[0].max_long_burn > 2.0);
        let log = tracer.render_log();
        assert!(log.contains("slo.burn"), "breaches must land in the trace: {log}");
        assert!(log.contains("slo=serve-shed-rate"));
    }

    #[test]
    fn a_transient_spike_needs_the_short_window_too() {
        let (mut engine, mut rec, reg) = engine_and_recorder(vec![shed_slo()]);
        rec.tick(0.0, &reg.snapshot());
        // one bad window, then recovery: by the time the long window
        // accumulates the spike, the short window is clean again
        reg.count("coda_serve_ops_total", 50);
        reg.count("coda_serve_shed_total", 50);
        rec.tick(10.0, &reg.snapshot());
        let mut fired = engine.step(&rec, None);
        for i in 2..=5 {
            reg.count("coda_serve_ops_total", 100);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
            let step = engine.step(&rec, None);
            if i >= 3 {
                assert_eq!(step, 0, "window {i}: spike aged out of the short window");
            }
            fired += step;
        }
        // while the spike sits inside the 2-deep short window it may alert,
        // but once it ages out the long window's stale history alone never
        // re-alerts — that is the point of the second window
        let report = engine.report();
        assert_eq!(report.total_breaches(), fired);
        // at t=40 the 4-deep long window still covers the spike but the
        // 2-deep short window is clean: burning memory without an alert
        let at_40 = report.evaluations.iter().find(|e| e.at_ms == 40.0).expect("evaluated");
        assert!(at_40.long_burn > 0.0, "the long window still remembers the spike");
        assert!(!at_40.breached, "yet no alert fires without short-window corroboration");
    }

    #[test]
    fn latency_and_occurrence_signals_burn() {
        let latency = SloSpec {
            name: "serve-p99".to_string(),
            signal: SloSignal::LatencyAbove {
                histogram: "coda_serve_latency_ms".to_string(),
                threshold_ms: 10.0,
            },
            objective: 0.01,
        };
        let failover = SloSpec {
            name: "failovers".to_string(),
            signal: SloSignal::Occurrence {
                counter: "coda_cluster_failovers_total".to_string(),
                allowed_per_window: 0.25,
            },
            objective: 1.0,
        };
        let (mut engine, mut rec, reg) = engine_and_recorder(vec![latency, failover]);
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=3 {
            // every observation lands past 10ms, and a failover per window
            reg.observe_ms("coda_serve_latency_ms", 50.0);
            reg.count("coda_cluster_failovers_total", 1);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
            engine.step(&rec, None);
        }
        let report = engine.report();
        for status in &report.statuses {
            assert!(status.breaches >= 1, "{} must breach: {status:?}", status.slo);
        }
    }

    #[test]
    fn burn_state_flips_for_consumers_and_report_roundtrips() {
        let (mut engine, mut rec, reg) = engine_and_recorder(vec![shed_slo()]);
        let state = engine.burn_state("serve-shed-rate").expect("declared");
        assert!(engine.burn_state("absent").is_none());
        assert!(!state.breached());
        rec.tick(0.0, &reg.snapshot());
        for i in 1..=3 {
            reg.count("coda_serve_shed_total", 100);
            rec.tick(i as f64 * 10.0, &reg.snapshot());
            engine.step(&rec, None);
        }
        assert!(state.breached(), "the shared hook must flip on breach");
        assert!(state.burn() > 2.0);
        let report = engine.report();
        let back = SloReport::from_json(&report.to_json()).expect("report JSON parses");
        assert_eq!(back, report);
    }

    #[test]
    fn empty_report_roundtrips_and_yields_no_breach_runs() {
        // an engine that never stepped: zero evaluations, zero breaches —
        // the report must still render and parse, and diagnosis must see
        // no breach runs in it
        let (engine, _rec, _reg) = engine_and_recorder(vec![shed_slo()]);
        let report = engine.report();
        assert!(report.evaluations.is_empty());
        assert_eq!(report.total_breaches(), 0);
        let back = SloReport::from_json(&report.to_json()).expect("empty report JSON parses");
        assert_eq!(back, report);
        assert!(report.breach_runs().is_empty());
    }
}
