//! Neural-network substrate for `coda`.
//!
//! The paper's time-series prediction pipeline uses Keras/TensorFlow deep
//! networks (LSTM, CNN, WaveNet, SeriesNet, standard DNNs). This crate
//! rebuilds that substrate from scratch: explicitly backpropagated layers
//! over the dense [`coda_linalg::Matrix`] type, composed by [`Sequential`],
//! trained with SGD or Adam.
//!
//! Sequence inputs are represented as flattened rows in **time-major**
//! layout: a window of `len` timesteps with `ch` channels occupies
//! `len * ch` columns, cell `(t, c)` at column `t * ch + c` — exactly the
//! flattening the paper's `FlatWindowing` transformer produces (Fig. 8).
//!
//! # Examples
//!
//! ```
//! use coda_nn::{Dense, Activation, Sequential, Loss, Adam};
//! use coda_linalg::Matrix;
//!
//! // learn y = x1 + x2 on a tiny network
//! let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0], &[0.0, 0.5], &[2.0, 2.0]]);
//! let y = Matrix::from_rows(&[&[3.0], &[4.0], &[0.5], &[4.0]]);
//! let mut net = Sequential::new()
//!     .push(Dense::new(2, 8, 1))
//!     .push(Activation::relu())
//!     .push(Dense::new(8, 1, 2));
//! let mut opt = Adam::new(0.01);
//! for _ in 0..300 {
//!     net.train_batch(&x, &y, Loss::Mse, &mut opt);
//! }
//! let pred = net.predict(&x);
//! assert!((pred[(0, 0)] - 3.0).abs() < 0.3);
//! ```

pub mod conv;
pub mod estimators;
pub mod layer;
pub mod loss;
pub mod lstm;
pub mod network;
pub mod optim;
pub mod residual;

pub use conv::{Conv1d, GlobalAvgPool1d, MaxPool1d};
pub use estimators::{MlpClassifier, MlpRegressor};
pub use layer::{Activation, Dense, Dropout, Layer};
pub use loss::Loss;
pub use lstm::Lstm;
pub use network::Sequential;
pub use optim::{Adam, Optimizer, Sgd};
pub use residual::Residual;
