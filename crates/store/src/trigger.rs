//! Recomputation triggers (paper §III): decide when data has changed enough
//! to warrant re-running analytics. Three policies, exactly as listed:
//! update **count** threshold, update **size** threshold, and an
//! **application-specific** predicate over the accumulated change.

use std::fmt;

use coda_obs::Obs;

/// Accumulated change since the last recomputation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateStats {
    /// Updates observed.
    pub count: u64,
    /// Total updated bytes observed.
    pub bytes: u64,
    /// Application-supplied magnitude of change (e.g. drift score).
    pub magnitude: f64,
}

/// When to recompute analytics over changing data.
pub enum RecomputeTrigger {
    /// Recompute after this many updates.
    UpdateCount(u64),
    /// Recompute after this many updated bytes.
    UpdateBytes(u64),
    /// Application-specific: recompute when the predicate holds. The paper
    /// calls this "the best way … however harder to implement".
    AppSpecific(Box<dyn Fn(&UpdateStats) -> bool + Send + Sync>),
}

impl fmt::Debug for RecomputeTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecomputeTrigger::UpdateCount(n) => write!(f, "UpdateCount({n})"),
            RecomputeTrigger::UpdateBytes(n) => write!(f, "UpdateBytes({n})"),
            RecomputeTrigger::AppSpecific(_) => write!(f, "AppSpecific(..)"),
        }
    }
}

impl RecomputeTrigger {
    /// True when the accumulated change warrants recomputation.
    pub fn should_recompute(&self, stats: &UpdateStats) -> bool {
        match self {
            RecomputeTrigger::UpdateCount(n) => stats.count >= *n,
            RecomputeTrigger::UpdateBytes(n) => stats.bytes >= *n,
            RecomputeTrigger::AppSpecific(pred) => pred(stats),
        }
    }
}

/// Tracks change since the last recomputation and fires the trigger.
pub struct ChangeMonitor {
    trigger: RecomputeTrigger,
    stats: UpdateStats,
    /// Number of recomputations fired.
    pub recomputations: u64,
    obs: Option<Obs>,
}

impl fmt::Debug for ChangeMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ChangeMonitor({:?}, pending {:?}, fired {})",
            self.trigger, self.stats, self.recomputations
        )
    }
}

impl ChangeMonitor {
    /// Creates a monitor with the given policy.
    pub fn new(trigger: RecomputeTrigger) -> Self {
        ChangeMonitor { trigger, stats: UpdateStats::default(), recomputations: 0, obs: None }
    }

    /// Attaches an observability handle: every recorded update increments
    /// `coda_store_trigger_updates` and every firing increments
    /// `coda_store_trigger_firings`.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// Accumulated change since the last recomputation.
    pub fn pending(&self) -> UpdateStats {
        self.stats
    }

    /// Records one update; returns true when analytics should be recomputed
    /// now (and resets the accumulator).
    pub fn record_update(&mut self, bytes: u64, magnitude: f64) -> bool {
        self.stats.count += 1;
        self.stats.bytes += bytes;
        self.stats.magnitude += magnitude;
        if let Some(o) = &self.obs {
            o.count("coda_store_trigger_updates", 1);
        }
        if self.trigger.should_recompute(&self.stats) {
            self.stats = UpdateStats::default();
            self.recomputations += 1;
            if let Some(o) = &self.obs {
                o.count("coda_store_trigger_firings", 1);
            }
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_trigger_fires_every_n() {
        let mut m = ChangeMonitor::new(RecomputeTrigger::UpdateCount(3));
        assert!(!m.record_update(10, 0.0));
        assert!(!m.record_update(10, 0.0));
        assert!(m.record_update(10, 0.0));
        // accumulator reset
        assert!(!m.record_update(10, 0.0));
        assert_eq!(m.recomputations, 1);
        assert_eq!(m.pending().count, 1);
    }

    #[test]
    fn bytes_trigger_fires_on_volume() {
        let mut m = ChangeMonitor::new(RecomputeTrigger::UpdateBytes(100));
        assert!(!m.record_update(60, 0.0));
        assert!(m.record_update(60, 0.0)); // 120 >= 100
        assert!(!m.record_update(99, 0.0));
        assert!(m.record_update(1, 0.0));
        assert_eq!(m.recomputations, 2);
    }

    #[test]
    fn app_specific_trigger_uses_magnitude() {
        let trigger = RecomputeTrigger::AppSpecific(Box::new(|s: &UpdateStats| s.magnitude > 1.0));
        let mut m = ChangeMonitor::new(trigger);
        assert!(!m.record_update(1_000_000, 0.5)); // big but low-drift
        assert!(m.record_update(1, 0.6)); // cumulative drift 1.1
    }

    #[test]
    fn one_update_can_fire_immediately() {
        let mut m = ChangeMonitor::new(RecomputeTrigger::UpdateCount(1));
        assert!(m.record_update(0, 0.0));
        assert!(m.record_update(0, 0.0));
        assert_eq!(m.recomputations, 2);
    }

    #[test]
    fn count_trigger_fires_at_exact_threshold() {
        // ">= n", not "> n": the nth update itself fires (Paper §III,
        // "recompute after this many updates").
        let mut m = ChangeMonitor::new(RecomputeTrigger::UpdateCount(2));
        assert!(!m.record_update(0, 0.0));
        assert!(m.record_update(0, 0.0));
    }

    #[test]
    fn bytes_trigger_fires_at_exact_threshold() {
        let mut m = ChangeMonitor::new(RecomputeTrigger::UpdateBytes(100));
        assert!(!m.record_update(99, 0.0));
        assert!(m.record_update(1, 0.0), "accumulated bytes == threshold fires");
        assert_eq!(m.pending(), UpdateStats::default(), "firing resets the accumulator");
    }

    #[test]
    fn zero_byte_updates_never_fire_bytes_trigger() {
        let mut m = ChangeMonitor::new(RecomputeTrigger::UpdateBytes(1));
        for _ in 0..10 {
            assert!(!m.record_update(0, 1.0));
        }
        assert_eq!(m.pending().count, 10, "updates still accumulate");
        assert_eq!(m.recomputations, 0);
    }

    #[test]
    fn app_specific_can_combine_count_and_bytes() {
        // The paper calls app-specific triggers "the best way": the
        // predicate sees the whole accumulated UpdateStats at once.
        let trigger = RecomputeTrigger::AppSpecific(Box::new(|s: &UpdateStats| {
            s.count >= 2 && s.bytes >= 50
        }));
        let mut m = ChangeMonitor::new(trigger);
        assert!(!m.record_update(100, 0.0), "bytes alone insufficient");
        assert!(m.record_update(1, 0.0), "count joined in");
        assert!(!m.record_update(10, 0.0));
        assert!(!m.record_update(10, 0.0), "bytes below 50 after reset");
        assert_eq!(m.recomputations, 1);
    }

    #[test]
    fn app_specific_magnitude_resets_after_fire() {
        let trigger = RecomputeTrigger::AppSpecific(Box::new(|s: &UpdateStats| s.magnitude > 1.0));
        let mut m = ChangeMonitor::new(trigger);
        assert!(m.record_update(0, 1.5));
        assert!(!m.record_update(0, 0.9), "drift accumulator restarted from zero");
        assert_eq!(m.recomputations, 1);
    }

    #[test]
    fn monitor_publishes_updates_and_firings() {
        let obs = coda_obs::Obs::deterministic();
        let mut m = ChangeMonitor::new(RecomputeTrigger::UpdateCount(2));
        m.attach_obs(obs.clone());
        for _ in 0..5 {
            m.record_update(8, 0.0);
        }
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("coda_store_trigger_updates"), 5);
        assert_eq!(snap.counter("coda_store_trigger_firings"), 2);
    }

    #[test]
    fn debug_impls() {
        let m = ChangeMonitor::new(RecomputeTrigger::UpdateBytes(5));
        assert!(format!("{m:?}").contains("UpdateBytes"));
        let t = RecomputeTrigger::AppSpecific(Box::new(|_| false));
        assert!(format!("{t:?}").contains("AppSpecific"));
    }
}
