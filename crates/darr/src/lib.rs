//! The Data Analytics Results Repository — DARR (paper §III, Fig. 2).
//!
//! Multiple clients cooperating on the same data set store their analytics
//! results here, keyed by *exactly what was computed*: dataset id and
//! version, pipeline spec (steps + parameters), cross-validation
//! configuration, and metric. Before computing, a client consults the DARR;
//! results already present are reused, untried computations are *claimed*
//! so no two clients run the same one, and results for stale dataset
//! versions are ignored.
//!
//! # Examples
//!
//! ```
//! use coda_darr::{ComputationKey, Darr};
//!
//! let darr = Darr::new();
//! let key = ComputationKey::new("sensors", 3, "scaler>model", "kfold(5)", "rmse");
//! // first client claims the computation…
//! assert!(darr.try_claim(&key, "client-a", 100).is_claimed());
//! // …a second client cannot
//! assert!(!darr.try_claim(&key, "client-b", 100).is_claimed());
//! darr.complete(&key, "client-a", 0.42, vec![0.4, 0.44], "explanation");
//! // now everyone reuses the stored result
//! assert_eq!(darr.lookup(&key).unwrap().score, 0.42);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod coop;
pub mod record;
pub mod repo;
pub mod resilient;

pub use coop::{CoopOutcome, CoopSummary, CooperativeClient, RetryReport};
pub use record::{AnalyticsRecord, ComputationKey};
pub use repo::{ClaimOutcome, Darr, DarrStats};
pub use resilient::{DarrLink, ResilientClient, ResilientSummary, WriteBehindJournal};
