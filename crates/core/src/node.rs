//! Graph vertices: named Transform or Estimate operations (paper §IV).

use std::fmt;

use coda_data::{BoxedEstimator, BoxedTransformer, ComponentError, ParamValue};

/// The operation a vertex performs: one of the paper's two operation types.
pub enum Component {
    /// A Transform operation (`_.transform`): rewrites data items.
    Transform(BoxedTransformer),
    /// An Estimate operation (`_.fit`): trains a model, then predicts.
    Estimate(BoxedEstimator),
}

impl Component {
    /// The component's stable name.
    pub fn name(&self) -> &str {
        match self {
            Component::Transform(t) => t.name(),
            Component::Estimate(e) => e.name(),
        }
    }

    /// True for Estimate operations.
    pub fn is_estimator(&self) -> bool {
        matches!(self, Component::Estimate(_))
    }

    /// Sets a bare-named parameter on the wrapped component.
    ///
    /// # Errors
    ///
    /// Propagates [`ComponentError::UnknownParam`] /
    /// [`ComponentError::InvalidParam`] from the component.
    pub fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match self {
            Component::Transform(t) => t.set_param(param, value),
            Component::Estimate(e) => e.set_param(param, value),
        }
    }
}

impl Clone for Component {
    fn clone(&self) -> Self {
        match self {
            Component::Transform(t) => Component::Transform(t.clone_box()),
            Component::Estimate(e) => Component::Estimate(e.clone_box()),
        }
    }
}

impl fmt::Debug for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::Transform(t) => write!(f, "Transform({})", t.name()),
            Component::Estimate(e) => write!(f, "Estimate({})", e.name()),
        }
    }
}

impl From<BoxedTransformer> for Component {
    fn from(t: BoxedTransformer) -> Self {
        Component::Transform(t)
    }
}

impl From<BoxedEstimator> for Component {
    fn from(e: BoxedEstimator) -> Self {
        Component::Estimate(e)
    }
}

/// A named graph vertex: the `(name_i, operation_i)` tuple of §IV.
///
/// Names are unique within a graph and serve as the placeholder through
/// which external parameters are supplied (`pca__n_components`).
#[derive(Debug, Clone)]
pub struct Node {
    name: String,
    component: Component,
}

impl Node {
    /// Creates a node with an explicit name.
    pub fn new<S: Into<String>>(name: S, component: Component) -> Self {
        Node { name: name.into(), component }
    }

    /// Creates a node named after its component.
    pub fn auto(component: Component) -> Self {
        let name = component.name().to_string();
        Node { name, component }
    }

    /// The node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's operation.
    pub fn component(&self) -> &Component {
        &self.component
    }

    /// Mutable access to the node's operation.
    pub fn component_mut(&mut self) -> &mut Component {
        &mut self.component
    }

    /// Renames the node (used for deduplication during graph construction).
    pub(crate) fn set_name(&mut self, name: String) {
        self.name = name;
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={:?}", self.name, self.component)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::NoOp;

    #[test]
    fn component_kinds() {
        let t: Component = (Box::new(NoOp::new()) as BoxedTransformer).into();
        assert!(!t.is_estimator());
        assert_eq!(t.name(), "noop");
        let cloned = t.clone();
        assert_eq!(cloned.name(), "noop");
        assert!(format!("{t:?}").contains("noop"));
    }

    #[test]
    fn node_naming() {
        let t: Component = (Box::new(NoOp::new()) as BoxedTransformer).into();
        let n = Node::new("skip", t);
        assert_eq!(n.name(), "skip");
        let auto = Node::auto((Box::new(NoOp::new()) as BoxedTransformer).into());
        assert_eq!(auto.name(), "noop");
        assert!(auto.to_string().contains("noop"));
    }

    #[test]
    fn set_param_unknown_propagates() {
        let mut c: Component = (Box::new(NoOp::new()) as BoxedTransformer).into();
        assert!(c.set_param("x", ParamValue::from(1.0)).is_err());
    }
}
