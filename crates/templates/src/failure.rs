//! Failure Prediction Analysis: "leverage historical sensor data and failure
//! logs to build machine learning models to predict imminent failures"
//! (§IV-E).

use coda_core::{Evaluator, TegBuilder};
use coda_data::{CvStrategy, Dataset, Metric, NoOp};
use coda_ml::{
    DecisionTreeClassifier, GaussianNb, KnnClassifier, LogisticRegression, RandomForestClassifier,
    StandardScaler,
};

use crate::TemplateError;

/// Result of a failure-prediction run.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Winning pipeline (node names).
    pub best_pipeline: Vec<String>,
    /// Cross-validated F1 of the winner (positive class = imminent failure).
    pub f1: f64,
    /// Factors ranked by importance, most important first:
    /// `(factor name, normalized importance)`.
    pub factor_ranking: Vec<(String, f64)>,
    /// All evaluated paths: `(pipeline, mean F1)`, ranked.
    pub leaderboard: Vec<(String, f64)>,
}

/// The Failure Prediction Analysis template.
#[derive(Debug, Clone)]
pub struct FailurePredictionAnalysis {
    folds: usize,
    forest_trees: usize,
    threads: usize,
}

impl FailurePredictionAnalysis {
    /// Creates the template with production defaults (5-fold CV, 30 trees).
    pub fn new() -> Self {
        FailurePredictionAnalysis { folds: 5, forest_trees: 30, threads: 1 }
    }

    /// Lighter settings for quick runs and tests.
    pub fn with_fast_settings(mut self) -> Self {
        self.folds = 3;
        self.forest_trees = 8;
        self
    }

    /// Evaluates paths in parallel over `n` threads.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_threads(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.threads = n;
        self
    }

    /// Runs the template on labeled sensor data (target: 1.0 = failure
    /// within the horizon).
    ///
    /// # Errors
    ///
    /// [`TemplateError::InvalidData`] for unlabeled or single-class data,
    /// [`TemplateError::Evaluation`] when no pipeline evaluates.
    pub fn run(&self, data: &Dataset) -> Result<FailureReport, TemplateError> {
        let y = data
            .target()
            .ok_or_else(|| TemplateError::InvalidData("failure labels required".to_string()))?;
        if !y.contains(&1.0) || !y.contains(&0.0) {
            return Err(TemplateError::InvalidData(
                "need both failure and healthy samples".to_string(),
            ));
        }
        let graph = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
            .add_models(vec![
                Box::new(LogisticRegression::new()),
                Box::new(DecisionTreeClassifier::new()),
                Box::new(RandomForestClassifier::new(self.forest_trees)),
                Box::new(GaussianNb::new()),
                Box::new(KnnClassifier::new(5)),
            ])
            .create_graph()
            .map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        // stratified folds: failure labels are rare (§II), so plain K-fold
        // risks near-empty positive validation folds
        let evaluator =
            Evaluator::new(CvStrategy::StratifiedKFold { k: self.folds, seed: 7 }, Metric::F1)
                .with_threads(self.threads);
        let report = evaluator
            .evaluate_graph(&graph, data)
            .map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        let best = report
            .best()
            .ok_or_else(|| TemplateError::Evaluation("no pipeline succeeded".to_string()))?;
        // factor ranking from an interpretable surrogate (random forest)
        let mut rf = RandomForestClassifier::new(self.forest_trees);
        use coda_data::Estimator;
        rf.fit(data).map_err(|e| TemplateError::Evaluation(e.to_string()))?;
        let importances = rf.feature_importances().unwrap_or_default();
        let mut factor_ranking: Vec<(String, f64)> =
            data.feature_names().iter().cloned().zip(importances).collect();
        factor_ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        Ok(FailureReport {
            best_pipeline: best.spec.steps.clone(),
            f1: best.mean_score,
            factor_ranking,
            leaderboard: report
                .results
                .iter()
                .filter(|r| r.is_ok())
                .map(|r| (r.spec.steps.join(" -> "), r.mean_score))
                .collect(),
        })
    }
}

impl Default for FailurePredictionAnalysis {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::synth;

    #[test]
    fn predicts_failures_better_than_chance() {
        let data = synth::failure_prediction_data(15, 70, 10, 41);
        let report = FailurePredictionAnalysis::new().with_fast_settings().run(&data).unwrap();
        assert!(report.f1 > 0.4, "f1 = {}", report.f1);
        assert!(!report.leaderboard.is_empty());
        assert_eq!(report.best_pipeline.len(), 2);
    }

    #[test]
    fn degradation_signals_rank_above_load() {
        // temperature and vibration track wear; load is pure noise
        let data = synth::failure_prediction_data(22, 70, 10, 42);
        let report = FailurePredictionAnalysis::new().with_fast_settings().run(&data).unwrap();
        let rank_of =
            |name: &str| report.factor_ranking.iter().position(|(n, _)| n == name).unwrap();
        assert!(rank_of("load") > rank_of("temperature"));
        assert!(rank_of("load") > rank_of("vibration"));
    }

    #[test]
    fn parallel_matches_serial_winner() {
        let data = synth::failure_prediction_data(12, 60, 10, 43);
        let serial = FailurePredictionAnalysis::new().with_fast_settings().run(&data).unwrap();
        let parallel = FailurePredictionAnalysis::new()
            .with_fast_settings()
            .with_threads(4)
            .run(&data)
            .unwrap();
        assert_eq!(serial.best_pipeline, parallel.best_pipeline);
        assert!((serial.f1 - parallel.f1).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_data() {
        let unlabeled = coda_data::Dataset::new(coda_linalg::Matrix::zeros(10, 2));
        assert!(matches!(
            FailurePredictionAnalysis::new().run(&unlabeled),
            Err(TemplateError::InvalidData(_))
        ));
        let single_class = coda_data::Dataset::new(coda_linalg::Matrix::zeros(10, 2))
            .with_target(vec![0.0; 10])
            .unwrap();
        assert!(matches!(
            FailurePredictionAnalysis::new().run(&single_class),
            Err(TemplateError::InvalidData(_))
        ));
    }
}
