/root/repo/target/debug/deps/coda_store-6e369a7ac21fe8cc.d: crates/store/src/lib.rs crates/store/src/client.rs crates/store/src/delta.rs crates/store/src/home.rs crates/store/src/lease.rs crates/store/src/replication.rs crates/store/src/tier.rs crates/store/src/trigger.rs

/root/repo/target/debug/deps/libcoda_store-6e369a7ac21fe8cc.rlib: crates/store/src/lib.rs crates/store/src/client.rs crates/store/src/delta.rs crates/store/src/home.rs crates/store/src/lease.rs crates/store/src/replication.rs crates/store/src/tier.rs crates/store/src/trigger.rs

/root/repo/target/debug/deps/libcoda_store-6e369a7ac21fe8cc.rmeta: crates/store/src/lib.rs crates/store/src/client.rs crates/store/src/delta.rs crates/store/src/home.rs crates/store/src/lease.rs crates/store/src/replication.rs crates/store/src/tier.rs crates/store/src/trigger.rs

crates/store/src/lib.rs:
crates/store/src/client.rs:
crates/store/src/delta.rs:
crates/store/src/home.rs:
crates/store/src/lease.rs:
crates/store/src/replication.rs:
crates/store/src/tier.rs:
crates/store/src/trigger.rs:
