//! Property-based tests for the prefix cache (proptest): over arbitrary
//! small TEGs, grids, and CV configurations, a cached evaluation must
//! report exactly what an uncached one does, and thread count must never
//! change a report, cached or not.

mod common;

use coda::data::{BoxedEstimator, BoxedTransformer, CvStrategy, Metric, NoOp};
use coda::graph::{Evaluator, ParamGrid, Teg, TegBuilder};
use coda::ml::{KnnRegressor, Pca, RidgeRegression, ScoreFunction, SelectKBest, StandardScaler};
use common::{assert_reports_identical, dataset};
use proptest::prelude::*;

/// Builds a small TEG from drawn shape parameters: an optional scaler
/// stage, a selector stage with `n_selectors` choices, and `n_models`
/// ridge/knn models — up to 2 × 3 × 4 = 24 paths.
fn build_teg(with_scaler: bool, n_selectors: usize, n_models: usize) -> Teg {
    let mut b = TegBuilder::new();
    if with_scaler {
        b = b.add_feature_scalers(vec![Box::new(StandardScaler::new()) as BoxedTransformer]);
    }
    let mut selectors: Vec<BoxedTransformer> = vec![Box::new(Pca::new(3))];
    if n_selectors >= 2 {
        selectors.push(Box::new(SelectKBest::new(3, ScoreFunction::FRegression)));
    }
    if n_selectors >= 3 {
        selectors.push(Box::new(NoOp::new()));
    }
    let models: Vec<BoxedEstimator> = (0..n_models)
        .map(|i| {
            if i % 2 == 0 {
                Box::new(RidgeRegression::new(0.1 * (i + 1) as f64)) as BoxedEstimator
            } else {
                Box::new(KnnRegressor::new(2 * i + 1))
            }
        })
        .collect();
    b.add_feature_selectors(selectors).add_models(models).create_graph().expect("acyclic")
}

/// Builds a grid from drawn sweep sizes (0 disables that sweep).
fn build_grid(pca_values: usize, knn_values: usize) -> ParamGrid {
    let mut grid = ParamGrid::new();
    if pca_values > 0 {
        grid.add("pca__n_components", (0..pca_values).map(|i| (i + 2).into()).collect());
    }
    if knn_values > 0 {
        grid.add("knn_regressor__k", (0..knn_values).map(|i| (2 * i + 3).into()).collect());
    }
    grid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 1: on arbitrary small TEGs, grids, and CV configs the
    /// cached report has identical path ranking and fold scores to the
    /// uncached one.
    #[test]
    fn cached_report_equals_uncached(
        with_scaler in any::<bool>(),
        n_selectors in 1usize..4,
        n_models in 1usize..5,
        k in 2usize..6,
        shuffle in any::<bool>(),
        seed in 0u64..1000,
        pca_values in 0usize..3,
        knn_values in 0usize..3,
    ) {
        let graph = build_teg(with_scaler, n_selectors, n_models);
        let ds = dataset(seed);
        let cv = CvStrategy::KFold { k, shuffle, seed };
        let grid = build_grid(pca_values, knn_values);
        let uncached = Evaluator::new(cv.clone(), Metric::Rmse)
            .evaluate_graph_with_grid(&graph, &ds, &grid)
            .unwrap();
        let cached = Evaluator::new(cv, Metric::Rmse)
            .with_prefix_cache(true)
            .evaluate_graph_with_grid(&graph, &ds, &grid)
            .unwrap();
        assert_reports_identical(&uncached, &cached);
        let stats = cached.cache.expect("cached run reports stats");
        prop_assert_eq!(stats.refits_avoided, stats.hits);
    }

    /// Satellite 2: thread count never changes the report — for
    /// n ∈ {1, 2, 8}, cached and uncached runs all agree.
    #[test]
    fn thread_count_never_changes_report(
        with_scaler in any::<bool>(),
        n_selectors in 1usize..4,
        n_models in 1usize..5,
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        let graph = build_teg(with_scaler, n_selectors, n_models);
        let ds = dataset(seed);
        let cv = CvStrategy::kfold(k);
        let baseline = Evaluator::new(cv.clone(), Metric::Rmse)
            .evaluate_graph(&graph, &ds)
            .unwrap();
        for cached in [false, true] {
            for threads in [1usize, 2, 8] {
                let mut eval = Evaluator::new(cv.clone(), Metric::Rmse)
                    .with_prefix_cache(cached);
                if threads > 1 {
                    eval = eval.with_threads(threads);
                }
                let report = eval.evaluate_graph(&graph, &ds).unwrap();
                assert_reports_identical(&baseline, &report);
            }
        }
    }

    /// Cached accounting is structural: hits + misses equals the graph's
    /// total prefix visits × folds, and misses equals distinct prefixes ×
    /// folds (no grid), for any graph shape and thread count.
    #[test]
    fn cache_accounting_matches_graph_structure(
        with_scaler in any::<bool>(),
        n_selectors in 1usize..4,
        n_models in 1usize..5,
        k in 2usize..5,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let graph = build_teg(with_scaler, n_selectors, n_models);
        let ds = dataset(seed);
        let (distinct, visits) = graph.transform_prefix_counts();
        let mut eval = Evaluator::new(CvStrategy::kfold(k), Metric::Rmse)
            .with_prefix_cache(true);
        if threads > 1 {
            eval = eval.with_threads(threads);
        }
        let stats = eval.evaluate_graph(&graph, &ds).unwrap().cache.unwrap();
        prop_assert_eq!(stats.misses, (distinct * k) as u64);
        prop_assert_eq!(stats.hits + stats.misses, (visits * k) as u64);
    }
}
