/root/repo/target/debug/deps/coda_chaos-9772967e5c632cb7.d: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/retry.rs

/root/repo/target/debug/deps/coda_chaos-9772967e5c632cb7: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/retry.rs

crates/chaos/src/lib.rs:
crates/chaos/src/fault.rs:
crates/chaos/src/retry.rs:
