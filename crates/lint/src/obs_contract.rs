//! Observability contract: statically extracts every metric
//! registration/observation name, label key, help text, histogram bounds
//! expression and span/event name in the workspace into a canonical
//! [`ObsSchema`] (committed as `OBS_SCHEMA.json`), and checks the surface
//! for the interface-drift failure modes that unchecked stringly-typed
//! metrics invite:
//!
//! - **consumed-but-never-produced** — a `coda_*` name read from a
//!   snapshot, asserted by a smoke test, or referenced by an SLO spec that
//!   no code path ever registers/observes;
//! - **help-but-never-observed** — `set_help` on a name nothing increments
//!   (the lazy-registration analog of registered-but-never-observed);
//! - **kind conflicts** — one name used as both a counter and a histogram;
//! - **bounds conflicts** — one histogram family registered with two
//!   different bounds expressions (first registration wins silently at
//!   runtime, so the loser's buckets never exist);
//! - **label-set mismatches** — one base name split by two different label
//!   keys (`{shard=…}` in one crate, `{spec=…}` in another);
//! - **case/underscore collisions** — names that differ only by case or
//!   `_` placement, which dashboards and `name_parts` treat as distinct;
//! - **unproduced keep_event names** — a tail-sampling policy pinning an
//!   event name nothing emits keeps nothing.
//!
//! All of the above are [`Rule::ObsContract`] (baselineable). Drift between
//! the extracted schema and the committed one is [`Rule::ObsSchemaDrift`]
//! and is **never** baselineable: regenerate with
//! `cargo run -p coda-lint -- --write-obs-schema OBS_SCHEMA.json`, review,
//! commit.

use std::collections::BTreeMap;

use serde::impl_serde_struct;

use crate::items::matching_paren;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::{Finding, Rule};

/// One metric family in the schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricSchema {
    /// `counter` | `gauge` | `histogram` (first by sort order on conflict —
    /// conflicts are also findings).
    pub kind: String,
    /// Help text from `set_help`, empty when never set.
    pub help: String,
    /// Label keys the family is split by (`labeled_name` second argument).
    pub labels: Vec<String>,
    /// Distinct bounds expressions seen at `histogram(name, bounds)` sites.
    pub bounds: Vec<String>,
}

impl_serde_struct!(MetricSchema { kind, help, labels, bounds });

/// The whole extracted observability surface, canonically ordered.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSchema {
    /// Format version (currently 1).
    pub version: u64,
    /// Metric name → family schema.
    pub metrics: BTreeMap<String, MetricSchema>,
    /// Every span name passed to `span`/`span_child`/`span_with_parent`/
    /// `begin_span`.
    pub spans: Vec<String>,
    /// Every event name passed to `event`/`event_in`/`event_at`.
    pub events: Vec<String>,
}

impl_serde_struct!(ObsSchema { version, metrics, spans, events });

impl ObsSchema {
    /// Canonical pretty JSON: keys sorted (BTreeMap), two-space indent,
    /// trailing newline — byte-identical across extractions by
    /// construction.
    pub fn to_pretty_json(&self) -> String {
        let mut out = String::new();
        render(&serde::Serialize::to_value(self), 0, &mut out);
        out.push('\n');
        out
    }

    /// Parses a committed schema file.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid schema JSON.
    pub fn parse(text: &str) -> Result<ObsSchema, String> {
        let value = serde_json::parse(text).map_err(|e| format!("bad schema JSON: {e}"))?;
        serde::Deserialize::from_value(&value).map_err(|e| format!("bad schema shape: {e}"))
    }
}

fn render(v: &serde::Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    match v {
        serde::Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&serde_json::to_string(k).unwrap_or_default());
                out.push_str(": ");
                render(val, indent + 1, out);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        serde::Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render(item, indent, out);
            }
            out.push(']');
        }
        other => out.push_str(&serde_json::to_string(other).unwrap_or_default()),
    }
}

/// Where something was seen, for finding placement.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Site {
    file: String,
    line: u32,
}

/// Everything extracted before checking.
#[derive(Debug, Default)]
struct Extraction {
    /// name → kind → first site.
    kinds: BTreeMap<String, BTreeMap<&'static str, Site>>,
    /// name → help text (first wins) + site.
    helps: BTreeMap<String, (String, Site)>,
    /// name → label key → first site.
    labels: BTreeMap<String, BTreeMap<String, Site>>,
    /// name → bounds expression → first site.
    bounds: BTreeMap<String, BTreeMap<String, Site>>,
    /// Loose references (snapshot reads, SLO specs, asserts): name → sites.
    refs: BTreeMap<String, Vec<Site>>,
    /// Span names → first site.
    spans: BTreeMap<String, Site>,
    /// Event names → first site.
    events: BTreeMap<String, Site>,
    /// `keep_event` pins: name → site.
    keeps: BTreeMap<String, Site>,
}

/// Snapshot-side receivers: `.counter("x")` on one of these reads a parsed
/// snapshot instead of registering on the live registry.
const SNAPSHOT_RECEIVERS: &[&str] = &["snap", "snapshot", "parsed", "delta", "before", "after"];

/// Extracts the observability surface and checks the contract. Returns the
/// canonical schema and the findings.
pub fn check(files: &[SourceFile]) -> (ObsSchema, Vec<Finding>) {
    let mut ex = Extraction::default();
    for sf in files {
        extract(sf, &mut ex);
    }
    let schema = assemble(&ex);
    let findings = contract_findings(&ex);
    (schema, findings)
}

fn extract(sf: &SourceFile, ex: &mut Extraction) {
    let toks = &sf.tokens;
    // Str arg positions already claimed by a classified call, so the
    // catch-all reference scan does not double-count producer names
    let mut claimed = vec![false; toks.len()];

    for i in 0..toks.len() {
        let t = &toks[i];
        if sf.in_test(i) {
            continue;
        }
        if t.kind != TokKind::Ident || !matches!(toks.get(i + 1), Some(p) if p.is_punct('(')) {
            continue;
        }
        let close = matching_paren(toks, i + 1, toks.len());
        let strs: Vec<usize> =
            (i + 2..close).filter(|&j| toks[j].kind == TokKind::Str && !sf.in_test(j)).collect();
        // span/event/keep_event names are direct arguments; strings nested
        // in brackets or inner calls are field keys (`&[("client", c)]`),
        // not names — a dynamic-name call registers nothing
        let top_strs: Vec<usize> = {
            let mut depth = 0i32;
            let mut out = Vec::new();
            for (j, t) in toks.iter().enumerate().take(close).skip(i + 2) {
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.kind == TokKind::Str && !sf.in_test(j) {
                    out.push(j);
                }
            }
            out
        };
        let site = |j: usize| Site { file: sf.rel.clone(), line: toks[j].line };

        let kind: Option<&'static str> = match t.text.as_str() {
            "count" | "counter" | "obs_count" => Some("counter"),
            "gauge" => Some("gauge"),
            "histogram" | "observe_ms" => Some("histogram"),
            _ => None,
        };
        if let Some(kind) = kind {
            // every metric-shaped string in the call is a produced name —
            // conditional-name sites pick at runtime
            // (`count(if ok { "coda_a" } else { "coda_b" }, 1)`)
            let names: Vec<(usize, String)> =
                strs.iter().filter_map(|&j| metric_name(&toks[j].text).map(|n| (j, n))).collect();
            if names.is_empty() {
                continue;
            }
            let snapshot_read = t.is_ident("counter") && is_snapshot_receiver(toks, i);
            for (name_j, name) in names {
                claimed[name_j] = true;
                if snapshot_read {
                    ex.refs.entry(name).or_default().push(site(name_j));
                    continue;
                }
                ex.kinds
                    .entry(name.clone())
                    .or_default()
                    .entry(kind)
                    .or_insert_with(|| site(name_j));
                if t.is_ident("histogram") {
                    // second top-level argument is the bounds expression
                    if let Some(b) = bounds_expr(toks, i + 1, close) {
                        ex.bounds.entry(name).or_default().entry(b).or_insert_with(|| site(name_j));
                    }
                } else if t.is_ident("observe_ms") {
                    ex.bounds
                        .entry(name)
                        .or_default()
                        .entry("DEFAULT_MS_BOUNDS".to_string())
                        .or_insert_with(|| site(name_j));
                }
            }
            continue;
        }
        match t.text.as_str() {
            "set_help" => {
                if let [name_j, help_j, ..] = strs[..] {
                    if let Some(name) = metric_name(&toks[name_j].text) {
                        claimed[name_j] = true;
                        claimed[help_j] = true;
                        ex.helps
                            .entry(name)
                            .or_insert_with(|| (toks[help_j].text.clone(), site(name_j)));
                    }
                }
            }
            "labeled_name" => {
                if let [name_j, label_j, ..] = strs[..] {
                    if let Some(name) = metric_name(&toks[name_j].text) {
                        claimed[name_j] = true;
                        claimed[label_j] = true;
                        ex.labels
                            .entry(name)
                            .or_default()
                            .entry(toks[label_j].text.clone())
                            .or_insert_with(|| site(label_j));
                    }
                }
            }
            "span" | "span_child" | "span_with_parent" | "begin_span" => {
                if let Some(&name_j) = top_strs.first() {
                    if let Some(name) = obs_name(&toks[name_j].text) {
                        claimed[name_j] = true;
                        ex.spans.entry(name).or_insert_with(|| site(name_j));
                    }
                }
            }
            "event" | "event_in" | "event_at" => {
                if let Some(&name_j) = top_strs.first() {
                    if let Some(name) = obs_name(&toks[name_j].text) {
                        claimed[name_j] = true;
                        ex.events.entry(name).or_insert_with(|| site(name_j));
                    }
                }
            }
            "keep_event" => {
                if let Some(&name_j) = top_strs.first() {
                    if let Some(name) = obs_name(&toks[name_j].text) {
                        claimed[name_j] = true;
                        ex.keeps.entry(name).or_insert_with(|| site(name_j));
                    }
                }
            }
            _ => {}
        }
    }

    // catch-all: every unclaimed `coda_*` string literal in non-test code is
    // a reference to the metric surface (snapshot indexing, SLO specs,
    // smoke asserts) and must resolve against a produced family
    for (j, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Str && !claimed[j] && !sf.in_test(j) {
            if let Some(name) = metric_name(&t.text) {
                ex.refs.entry(name).or_default().push(Site { file: sf.rel.clone(), line: t.line });
            }
        }
    }
}

/// A full metric name: `coda_<something>`, label suffix stripped.
fn metric_name(s: &str) -> Option<String> {
    let base = s.split('{').next().unwrap_or(s);
    let rest = base.strip_prefix("coda_")?;
    if rest.is_empty()
        || !rest.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        || rest.ends_with('_')
    {
        return None;
    }
    Some(base.to_string())
}

/// A span/event name: dotted lowercase identifier path (`slo.burn`).
fn obs_name(s: &str) -> Option<String> {
    if s.is_empty()
        || !s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
    {
        return None;
    }
    Some(s.to_string())
}

/// Whether the call receiver at the ident `i` is a parsed snapshot.
fn is_snapshot_receiver(toks: &[crate::lexer::Tok], i: usize) -> bool {
    if i == 0 || !toks[i - 1].is_punct('.') {
        return false;
    }
    let mut j = i - 1;
    while j > 0 {
        let p = &toks[j - 1];
        if p.kind == TokKind::Ident {
            if SNAPSHOT_RECEIVERS.contains(&p.text.as_str()) {
                return true;
            }
            if j >= 2 && toks[j - 2].is_punct('.') {
                j -= 2;
                continue;
            }
        }
        break;
    }
    false
}

/// The second top-level argument of a call, rendered, when it is a simple
/// ident or path (`DEFAULT_MS_BOUNDS`); `None` for computed bounds.
fn bounds_expr(toks: &[crate::lexer::Tok], open: usize, close: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut arg = 0usize;
    let mut parts: Vec<String> = Vec::new();
    for t in &toks[open + 1..close] {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            arg += 1;
            if arg > 1 {
                break;
            }
            continue;
        }
        if arg == 1 && depth == 0 {
            if t.kind == TokKind::Ident {
                parts.push(t.text.clone());
            } else if !(t.is_punct('&') || t.is_punct(':')) {
                return None; // computed expression
            }
        }
    }
    (!parts.is_empty()).then(|| parts.join("::"))
}

fn assemble(ex: &Extraction) -> ObsSchema {
    let mut metrics: BTreeMap<String, MetricSchema> = BTreeMap::new();
    let mut names: Vec<&String> = ex.kinds.keys().collect();
    names.extend(ex.helps.keys());
    names.extend(ex.labels.keys());
    names.extend(ex.bounds.keys());
    names.sort();
    names.dedup();
    for name in names {
        let kind = ex
            .kinds
            .get(name)
            .and_then(|ks| ks.keys().next().copied())
            .unwrap_or("help-only")
            .to_string();
        let help = ex.helps.get(name).map(|(h, _)| h.clone()).unwrap_or_default();
        let labels: Vec<String> =
            ex.labels.get(name).map(|ls| ls.keys().cloned().collect()).unwrap_or_default();
        let bounds: Vec<String> =
            ex.bounds.get(name).map(|bs| bs.keys().cloned().collect()).unwrap_or_default();
        metrics.insert(name.clone(), MetricSchema { kind, help, labels, bounds });
    }
    ObsSchema {
        version: 1,
        metrics,
        spans: ex.spans.keys().cloned().collect(),
        events: ex.events.keys().cloned().collect(),
    }
}

fn contract_findings(ex: &Extraction) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    let push = |out: &mut Vec<Finding>, site: &Site, message: String| {
        out.push(Finding {
            rule: Rule::ObsContract,
            file: site.file.clone(),
            line: site.line,
            message,
        });
    };

    // consumed-but-never-produced
    for (name, sites) in &ex.refs {
        if !ex.kinds.contains_key(name) {
            if let Some(site) = sites.iter().min() {
                push(
                    &mut out,
                    site,
                    format!(
                        "metric `{name}` is consumed here but never registered or observed \
                         anywhere in the workspace"
                    ),
                );
            }
        }
    }
    // help-but-never-observed
    for (name, (_, site)) in &ex.helps {
        if !ex.kinds.contains_key(name) {
            push(
                &mut out,
                site,
                format!(
                    "metric `{name}` has help text but is never observed — registered-but-\
                     never-observed names rot into dashboard ghosts"
                ),
            );
        }
    }
    // kind conflicts
    for (name, kinds) in &ex.kinds {
        if kinds.len() > 1 {
            let list: Vec<&str> = kinds.keys().copied().collect();
            if let Some(site) = kinds.values().min() {
                push(
                    &mut out,
                    site,
                    format!("metric `{name}` is used as multiple kinds: {}", list.join(" and ")),
                );
            }
        }
    }
    // bounds conflicts
    for (name, bounds) in &ex.bounds {
        if bounds.len() > 1 {
            let list: Vec<&str> = bounds.keys().map(String::as_str).collect();
            if let Some(site) = bounds.values().min() {
                push(
                    &mut out,
                    site,
                    format!(
                        "histogram `{name}` is registered with conflicting bounds ({}) — \
                         first registration wins silently, the loser's buckets never exist",
                        list.join(" vs ")
                    ),
                );
            }
        }
    }
    // label-set mismatches
    for (name, labels) in &ex.labels {
        if labels.len() > 1 {
            let list: Vec<&str> = labels.keys().map(String::as_str).collect();
            if let Some(site) = labels.values().min() {
                push(
                    &mut out,
                    site,
                    format!(
                        "metric `{name}` is split by conflicting label keys ({}) — one \
                         family must use one label set",
                        list.join(" vs ")
                    ),
                );
            }
        }
    }
    // case/underscore collisions
    let mut by_norm: BTreeMap<String, Vec<&String>> = BTreeMap::new();
    for name in ex.kinds.keys() {
        by_norm.entry(name.to_lowercase().replace('_', "")).or_default().push(name);
    }
    for group in by_norm.values() {
        if group.len() > 1 {
            let second = group[1];
            if let Some(site) = ex.kinds[second].values().min() {
                push(
                    &mut out,
                    site,
                    format!(
                        "metric names {} differ only by case/underscores — dashboards \
                         will treat them as distinct series",
                        group.iter().map(|n| format!("`{n}`")).collect::<Vec<_>>().join(", ")
                    ),
                );
            }
        }
    }
    // keep_event pins that nothing emits
    for (name, site) in &ex.keeps {
        if !ex.events.contains_key(name) && !ex.spans.contains_key(name) {
            push(
                &mut out,
                site,
                format!(
                    "tail-sampling policy pins event `{name}` but nothing in the workspace \
                     emits it — the pin keeps nothing"
                ),
            );
        }
    }
    out
}

/// Diffs the freshly extracted schema against the committed one. Any
/// difference is an [`Rule::ObsSchemaDrift`] finding (never baselineable).
pub fn drift(committed: &ObsSchema, current: &ObsSchema) -> Vec<Finding> {
    let mut msgs: Vec<String> = Vec::new();
    for (name, m) in &current.metrics {
        match committed.metrics.get(name) {
            None => msgs.push(format!("metric `{name}` added")),
            Some(old) if old != m => msgs.push(format!(
                "metric `{name}` changed (kind {} → {}, labels [{}] → [{}], bounds [{}] → [{}])",
                old.kind,
                m.kind,
                old.labels.join(","),
                m.labels.join(","),
                old.bounds.join(","),
                m.bounds.join(",")
            )),
            Some(_) => {}
        }
    }
    for name in committed.metrics.keys() {
        if !current.metrics.contains_key(name) {
            msgs.push(format!("metric `{name}` removed"));
        }
    }
    for (what, old, new) in
        [("span", &committed.spans, &current.spans), ("event", &committed.events, &current.events)]
    {
        for n in new.iter().filter(|n| !old.contains(n)) {
            msgs.push(format!("{what} `{n}` added"));
        }
        for n in old.iter().filter(|n| !new.contains(n)) {
            msgs.push(format!("{what} `{n}` removed"));
        }
    }
    msgs.sort();
    msgs.iter()
        .map(|m| Finding {
            rule: Rule::ObsSchemaDrift,
            file: "OBS_SCHEMA.json".to_string(),
            line: 1,
            message: format!(
                "{m} — the observability surface drifted from the committed schema; \
                 regenerate with `--write-obs-schema OBS_SCHEMA.json`, review, commit"
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CrateKind;

    fn run(src: &str) -> (ObsSchema, Vec<Finding>) {
        check(&[SourceFile::parse("t.rs", CrateKind::Library, src)])
    }

    #[test]
    fn producers_land_in_the_schema() {
        let (schema, findings) = run("fn f(o: &Obs) {\n o.registry().count(\"coda_x_ops\", 1);\n\
             o.registry().histogram(\"coda_x_wait_ms\", DEFAULT_MS_BOUNDS);\n\
             o.registry().gauge(\"coda_x_depth\").set(1);\n\
             o.tracer().span(\"x.request\", &[]);\n o.tracer().event(\"x.done\", &[]);\n}");
        assert!(findings.is_empty(), "{findings:#?}");
        assert_eq!(schema.metrics["coda_x_ops"].kind, "counter");
        assert_eq!(schema.metrics["coda_x_wait_ms"].kind, "histogram");
        assert_eq!(schema.metrics["coda_x_wait_ms"].bounds, vec!["DEFAULT_MS_BOUNDS"]);
        assert_eq!(schema.metrics["coda_x_depth"].kind, "gauge");
        assert_eq!(schema.spans, vec!["x.request"]);
        assert_eq!(schema.events, vec!["x.done"]);
    }

    #[test]
    fn consumed_but_never_produced_is_flagged() {
        let (_, findings) = run("fn f(o: &Obs) { o.registry().count(\"coda_x_present\", 1); }\n\
             fn g(snap: &Snap) { assert!(snap.counter(\"coda_x_missing\") > 0); }");
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("coda_x_missing"), "{findings:#?}");
        assert!(findings[0].rule == Rule::ObsContract);
    }

    #[test]
    fn snapshot_counter_reads_are_references_not_registrations() {
        let (schema, findings) = run("fn f(o: &Obs) { o.registry().count(\"coda_x_ops\", 1); }\n\
             fn g(parsed: &Snap) { let n = parsed.counter(\"coda_x_ops\"); }");
        assert!(findings.is_empty(), "{findings:#?}");
        assert_eq!(schema.metrics.len(), 1);
    }

    #[test]
    fn label_key_mismatch_is_flagged() {
        let (_, findings) = run(
            "fn f(r: &Reg, s: &str) {\n r.count(&labeled_name(\"coda_x_ms\", \"shard\", s), 1);\n\
             r.count(&labeled_name(\"coda_x_ms\", \"spec\", s), 1);\n}",
        );
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("shard"), "{findings:#?}");
        assert!(findings[0].message.contains("spec"), "{findings:#?}");
    }

    #[test]
    fn conflicting_bounds_are_flagged() {
        let (_, findings) =
            run("fn f(r: &Reg) { r.histogram(\"coda_x_ms\", DEFAULT_MS_BOUNDS); }\n\
             fn g(r: &Reg) { r.histogram(\"coda_x_ms\", FINE_BOUNDS); }");
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("conflicting bounds"), "{findings:#?}");
    }

    #[test]
    fn kind_conflict_is_flagged() {
        let (_, findings) =
            run("fn f(r: &Reg) { r.count(\"coda_x_val\", 1); r.observe_ms(\"coda_x_val\", 2.0); }");
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("multiple kinds"), "{findings:#?}");
    }

    #[test]
    fn case_underscore_collision_is_flagged() {
        let (_, findings) = run(
            "fn f(r: &Reg) { r.count(\"coda_x_opstotal\", 1); r.count(\"coda_x_ops_total\", 1); }",
        );
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("differ only by case"), "{findings:#?}");
    }

    #[test]
    fn help_without_observation_is_flagged() {
        let (_, findings) =
            run("fn f(r: &Reg) { r.set_help(\"coda_x_ghost\", \"a ghost metric\"); }");
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("never observed"), "{findings:#?}");
    }

    #[test]
    fn unproduced_keep_event_is_flagged() {
        let (_, findings) = run("fn f(t: &Tracer, p: TailPolicy) { t.event(\"x.done\", &[]);\n\
             let p = p.keep_event(\"x.done\").keep_event(\"x.ghost\"); }");
        assert_eq!(findings.len(), 1, "{findings:#?}");
        assert!(findings[0].message.contains("x.ghost"), "{findings:#?}");
    }

    #[test]
    fn test_code_is_excluded_from_extraction() {
        let (schema, findings) = run("fn f(o: &Obs) { o.registry().count(\"coda_x_ops\", 1); }\n\
             #[cfg(test)]\nmod tests {\n fn t(r: &Reg) { r.count(\"coda_test_fake\", 1);\n\
             let n = snap.counter(\"coda_x_never\"); }\n}");
        assert!(findings.is_empty(), "{findings:#?}");
        assert_eq!(schema.metrics.len(), 1);
    }

    #[test]
    fn schema_json_round_trips_and_is_stable() {
        let (schema, _) = run("fn f(o: &Obs) {\n o.registry().count(\"coda_x_ops\", 1);\n\
             o.registry().set_help(\"coda_x_ops\", \"ops served\");\n\
             o.registry().histogram(&labeled_name(\"coda_x_ms\", \"shard\", s), BOUNDS);\n\
             o.tracer().span(\"x.request\", &[]);\n}");
        let text = schema.to_pretty_json();
        let back = ObsSchema::parse(&text).expect("parse back");
        assert_eq!(back, schema);
        assert_eq!(text, back.to_pretty_json(), "render is canonical");
        assert_eq!(schema.metrics["coda_x_ms"].labels, vec!["shard"]);
        assert_eq!(schema.metrics["coda_x_ops"].help, "ops served");
    }

    #[test]
    fn drift_fires_on_any_difference_and_is_not_baselineable() {
        let (a, _) = run("fn f(r: &Reg) { r.count(\"coda_x_ops\", 1); }");
        let (b, _) =
            run("fn f(r: &Reg) { r.count(\"coda_x_ops\", 1); r.count(\"coda_x_extra\", 1); \
             r.event(\"x.new\", &[]); }");
        assert!(drift(&a, &a).is_empty());
        let d = drift(&a, &b);
        assert_eq!(d.len(), 2, "{d:#?}");
        assert!(d.iter().all(|f| f.rule == Rule::ObsSchemaDrift));
        assert!(d.iter().all(|f| !f.rule.is_baselineable()));
        assert!(d.iter().any(|f| f.message.contains("coda_x_extra")));
        assert!(d.iter().any(|f| f.message.contains("x.new")));
    }
}
