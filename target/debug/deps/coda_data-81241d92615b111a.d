/root/repo/target/debug/deps/coda_data-81241d92615b111a.d: crates/data/src/lib.rs crates/data/src/cv.rs crates/data/src/dataset.rs crates/data/src/impute.rs crates/data/src/impute_advanced.rs crates/data/src/metrics.rs crates/data/src/outlier.rs crates/data/src/survival.rs crates/data/src/synth.rs crates/data/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_data-81241d92615b111a.rmeta: crates/data/src/lib.rs crates/data/src/cv.rs crates/data/src/dataset.rs crates/data/src/impute.rs crates/data/src/impute_advanced.rs crates/data/src/metrics.rs crates/data/src/outlier.rs crates/data/src/survival.rs crates/data/src/synth.rs crates/data/src/traits.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/cv.rs:
crates/data/src/dataset.rs:
crates/data/src/impute.rs:
crates/data/src/impute_advanced.rs:
crates/data/src/metrics.rs:
crates/data/src/outlier.rs:
crates/data/src/survival.rs:
crates/data/src/synth.rs:
crates/data/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
