/root/repo/target/debug/deps/coda_store-f29d8883979a6b1a.d: crates/store/src/lib.rs crates/store/src/client.rs crates/store/src/delta.rs crates/store/src/home.rs crates/store/src/lease.rs crates/store/src/replication.rs crates/store/src/tier.rs crates/store/src/trigger.rs

/root/repo/target/debug/deps/coda_store-f29d8883979a6b1a: crates/store/src/lib.rs crates/store/src/client.rs crates/store/src/delta.rs crates/store/src/home.rs crates/store/src/lease.rs crates/store/src/replication.rs crates/store/src/tier.rs crates/store/src/trigger.rs

crates/store/src/lib.rs:
crates/store/src/client.rs:
crates/store/src/delta.rs:
crates/store/src/home.rs:
crates/store/src/lease.rs:
crates/store/src/replication.rs:
crates/store/src/tier.rs:
crates/store/src/trigger.rs:
