/root/repo/target/debug/examples/model_lifecycle-b54fa7b4b574baec.d: examples/model_lifecycle.rs

/root/repo/target/debug/examples/model_lifecycle-b54fa7b4b574baec: examples/model_lifecycle.rs

examples/model_lifecycle.rs:
