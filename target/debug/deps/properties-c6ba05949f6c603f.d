/root/repo/target/debug/deps/properties-c6ba05949f6c603f.d: tests/properties.rs

/root/repo/target/debug/deps/properties-c6ba05949f6c603f: tests/properties.rs

tests/properties.rs:
