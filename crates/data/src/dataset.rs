//! The [`Dataset`] type: a feature matrix with an optional target column.

use std::fmt;

use coda_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Error produced by dataset construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Feature matrix and target lengths disagree.
    TargetLengthMismatch {
        /// Number of samples in the feature matrix.
        samples: usize,
        /// Length of the offered target.
        target: usize,
    },
    /// The dataset has no target but one is required.
    MissingTarget,
    /// Feature-name count disagrees with the number of columns.
    NameCountMismatch {
        /// Number of feature columns.
        cols: usize,
        /// Number of names offered.
        names: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds(usize),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::TargetLengthMismatch { samples, target } => {
                write!(f, "target length {target} does not match {samples} samples")
            }
            DatasetError::MissingTarget => write!(f, "dataset has no target column"),
            DatasetError::NameCountMismatch { cols, names } => {
                write!(f, "{names} feature names offered for {cols} columns")
            }
            DatasetError::IndexOutOfBounds(i) => write!(f, "index {i} out of bounds"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A tabular dataset: features (dense, row-major, may contain NaN for missing
/// values) plus an optional target vector.
///
/// Classification targets are stored as class labels encoded in `f64`
/// (0.0, 1.0, …), matching the scikit-learn convention the paper builds on.
///
/// # Examples
///
/// ```
/// use coda_data::Dataset;
/// use coda_linalg::Matrix;
///
/// let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let ds = Dataset::new(x).with_target(vec![0.0, 1.0]).unwrap();
/// assert_eq!(ds.n_samples(), 2);
/// assert_eq!(ds.target().unwrap()[1], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Matrix,
    target: Option<Vec<f64>>,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset from a feature matrix with auto-generated column
    /// names `x0..x{n-1}` and no target.
    pub fn new(features: Matrix) -> Self {
        let feature_names = (0..features.cols()).map(|i| format!("x{i}")).collect();
        Dataset { features, target: None, feature_names }
    }

    /// Attaches a target column.
    ///
    /// # Errors
    ///
    /// [`DatasetError::TargetLengthMismatch`] if `target.len()` differs from
    /// the number of samples.
    pub fn with_target(mut self, target: Vec<f64>) -> Result<Self, DatasetError> {
        if target.len() != self.features.rows() {
            return Err(DatasetError::TargetLengthMismatch {
                samples: self.features.rows(),
                target: target.len(),
            });
        }
        self.target = Some(target);
        Ok(self)
    }

    /// Replaces the feature names.
    ///
    /// # Errors
    ///
    /// [`DatasetError::NameCountMismatch`] if the count differs from the
    /// number of columns.
    pub fn with_feature_names<S: Into<String>>(
        mut self,
        names: Vec<S>,
    ) -> Result<Self, DatasetError> {
        if names.len() != self.features.cols() {
            return Err(DatasetError::NameCountMismatch {
                cols: self.features.cols(),
                names: names.len(),
            });
        }
        self.feature_names = names.into_iter().map(Into::into).collect();
        Ok(self)
    }

    /// Number of samples (rows).
    pub fn n_samples(&self) -> usize {
        self.features.rows()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// Borrow of the feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Mutable borrow of the feature matrix.
    pub fn features_mut(&mut self) -> &mut Matrix {
        &mut self.features
    }

    /// Borrow of the target, if present.
    pub fn target(&self) -> Option<&[f64]> {
        self.target.as_deref()
    }

    /// Borrow of the target or an error.
    ///
    /// # Errors
    ///
    /// [`DatasetError::MissingTarget`] if no target is attached.
    pub fn target_required(&self) -> Result<&[f64], DatasetError> {
        self.target.as_deref().ok_or(DatasetError::MissingTarget)
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Replaces the features while keeping the target, regenerating names if
    /// the column count changed.
    pub fn replace_features(&self, features: Matrix) -> Dataset {
        let feature_names = if features.cols() == self.features.cols() {
            self.feature_names.clone()
        } else {
            (0..features.cols()).map(|i| format!("x{i}")).collect()
        };
        Dataset { features, target: self.target.clone(), feature_names }
    }

    /// The sub-dataset of the given row indices (features and target).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let features = self.features.select_rows(indices);
        let target = self.target.as_ref().map(|t| indices.iter().map(|&i| t[i]).collect());
        Dataset { features, target, feature_names: self.feature_names.clone() }
    }

    /// The sub-dataset keeping only the given feature columns.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_features(&self, indices: &[usize]) -> Dataset {
        let features = self.features.select_cols(indices);
        let feature_names = indices.iter().map(|&i| self.feature_names[i].clone()).collect();
        Dataset { features, target: self.target.clone(), feature_names }
    }

    /// True if any feature cell is NaN (missing).
    pub fn has_missing(&self) -> bool {
        self.features.as_slice().iter().any(|x| x.is_nan())
    }

    /// Count of NaN feature cells.
    pub fn missing_count(&self) -> usize {
        self.features.as_slice().iter().filter(|x| x.is_nan()).count()
    }

    /// Distinct target values, sorted (useful for classification).
    ///
    /// # Errors
    ///
    /// [`DatasetError::MissingTarget`] if no target is attached.
    pub fn classes(&self) -> Result<Vec<f64>, DatasetError> {
        let t = self.target_required()?;
        let mut v: Vec<f64> = t.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        v.dedup();
        Ok(v)
    }

    /// Splits into `(train, test)` with `test_fraction` of samples in the test
    /// set, shuffled deterministically by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is not within `(0, 1)`.
    pub fn train_test_split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(test_fraction > 0.0 && test_fraction < 1.0, "test_fraction must be in (0, 1)");
        let n = self.n_samples();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_test = ((n as f64) * test_fraction).round().max(1.0) as usize;
        let n_test = n_test.min(n.saturating_sub(1)).max(1);
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.select(train_idx), self.select(test_idx))
    }

    /// Splits *without shuffling*: the first `1-test_fraction` of rows train,
    /// the rest test. Correct for time-ordered data.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is not within `(0, 1)`.
    pub fn chronological_split(&self, test_fraction: f64) -> (Dataset, Dataset) {
        assert!(test_fraction > 0.0 && test_fraction < 1.0, "test_fraction must be in (0, 1)");
        let n = self.n_samples();
        let n_train = ((n as f64) * (1.0 - test_fraction)).round() as usize;
        let n_train = n_train.clamp(1, n.saturating_sub(1));
        let train_idx: Vec<usize> = (0..n_train).collect();
        let test_idx: Vec<usize> = (n_train..n).collect();
        (self.select(&train_idx), self.select(&test_idx))
    }
}

impl Dataset {
    /// Serializes the dataset to a compact little-endian binary blob
    /// (header: rows, cols, has-target flag; then features row-major, then
    /// the target) — the wire format used when datasets travel through the
    /// versioned data tier (§III).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n_samples() as u64;
        let d = self.n_features() as u64;
        let has_target = self.target.is_some() as u8;
        let mut out = Vec::with_capacity(17 + 8 * (self.features.as_slice().len() + n as usize));
        out.extend_from_slice(&n.to_le_bytes());
        out.extend_from_slice(&d.to_le_bytes());
        out.push(has_target);
        for v in self.features.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        if let Some(t) = &self.target {
            for v in t {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parses a dataset from the [`Dataset::to_bytes`] format.
    ///
    /// # Errors
    ///
    /// [`DatasetError::IndexOutOfBounds`] (reporting the offending length)
    /// when the blob is truncated or malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Dataset, DatasetError> {
        let fail = || DatasetError::IndexOutOfBounds(bytes.len());
        if bytes.len() < 17 {
            return Err(fail());
        }
        let n = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")) as usize;
        let d = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let has_target = bytes[16] == 1;
        let n_cells = n.checked_mul(d).ok_or_else(fail)?;
        let expected = 17 + 8 * (n_cells + if has_target { n } else { 0 });
        if bytes.len() != expected {
            return Err(fail());
        }
        let mut cells = Vec::with_capacity(n_cells);
        let mut off = 17;
        for _ in 0..n_cells {
            cells.push(f64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes")));
            off += 8;
        }
        let ds = Dataset::new(Matrix::from_vec(n, d, cells));
        if has_target {
            let mut target = Vec::with_capacity(n);
            for _ in 0..n {
                target.push(f64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes")));
                off += 8;
            }
            ds.with_target(target)
        } else {
            Ok(ds)
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dataset[{} samples x {} features{}]",
            self.n_samples(),
            self.n_features(),
            if self.target.is_some() { ", with target" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0], &[4.0, 40.0]]);
        Dataset::new(x).with_target(vec![0.0, 1.0, 0.0, 1.0]).unwrap()
    }

    #[test]
    fn construction_and_names() {
        let ds = small();
        assert_eq!(ds.n_samples(), 4);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.feature_names(), &["x0".to_string(), "x1".to_string()]);
        let named = ds.with_feature_names(vec!["a", "b"]).unwrap();
        assert_eq!(named.feature_names()[0], "a");
    }

    #[test]
    fn target_length_checked() {
        let x = Matrix::zeros(3, 1);
        assert!(matches!(
            Dataset::new(x).with_target(vec![1.0]),
            Err(DatasetError::TargetLengthMismatch { .. })
        ));
    }

    #[test]
    fn name_count_checked() {
        let ds = Dataset::new(Matrix::zeros(2, 2));
        assert!(ds.with_feature_names(vec!["only-one"]).is_err());
    }

    #[test]
    fn select_rows_and_features() {
        let ds = small();
        let sub = ds.select(&[1, 3]);
        assert_eq!(sub.n_samples(), 2);
        assert_eq!(sub.features().row(0), &[2.0, 20.0]);
        assert_eq!(sub.target().unwrap(), &[1.0, 1.0]);
        let f = ds.select_features(&[1]);
        assert_eq!(f.n_features(), 1);
        assert_eq!(f.feature_names()[0], "x1");
        assert_eq!(f.target().unwrap().len(), 4);
    }

    #[test]
    fn missing_detection() {
        let mut ds = small();
        assert!(!ds.has_missing());
        ds.features_mut()[(0, 0)] = f64::NAN;
        assert!(ds.has_missing());
        assert_eq!(ds.missing_count(), 1);
    }

    #[test]
    fn classes_sorted_dedup() {
        let ds = small();
        assert_eq!(ds.classes().unwrap(), vec![0.0, 1.0]);
        assert!(Dataset::new(Matrix::zeros(1, 1)).classes().is_err());
    }

    #[test]
    fn split_partitions_everything() {
        let ds = small();
        let (train, test) = ds.train_test_split(0.25, 7);
        assert_eq!(train.n_samples() + test.n_samples(), 4);
        assert_eq!(test.n_samples(), 1);
    }

    #[test]
    fn split_is_deterministic() {
        let ds = small();
        let (a, _) = ds.train_test_split(0.5, 99);
        let (b, _) = ds.train_test_split(0.5, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn chronological_split_keeps_order() {
        let ds = small();
        let (train, test) = ds.chronological_split(0.5);
        assert_eq!(train.features().row(0), &[1.0, 10.0]);
        assert_eq!(test.features().row(0), &[3.0, 30.0]);
    }

    #[test]
    fn bytes_roundtrip_with_and_without_target() {
        let ds = small();
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        assert_eq!(back.features(), ds.features());
        assert_eq!(back.target(), ds.target());
        let no_target = Dataset::new(Matrix::from_rows(&[&[1.5, -2.5]]));
        let back = Dataset::from_bytes(&no_target.to_bytes()).unwrap();
        assert_eq!(back.features(), no_target.features());
        assert!(back.target().is_none());
    }

    #[test]
    fn bytes_rejects_malformed() {
        assert!(Dataset::from_bytes(&[]).is_err());
        assert!(Dataset::from_bytes(&[0u8; 16]).is_err());
        let mut blob = small().to_bytes();
        blob.pop();
        assert!(Dataset::from_bytes(&blob).is_err());
        blob.extend_from_slice(&[0, 0]);
        assert!(Dataset::from_bytes(&blob).is_err());
    }

    #[test]
    fn replace_features_regenerates_names() {
        let ds = small();
        let replaced = ds.replace_features(Matrix::zeros(4, 3));
        assert_eq!(replaced.n_features(), 3);
        assert_eq!(replaced.feature_names().len(), 3);
        assert!(replaced.target().is_some());
    }
}
