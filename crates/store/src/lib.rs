//! The distributed data tier of the paper's Section III: versioned objects
//! with home data stores, delta encoding between versions, pull and
//! lease-based push update propagation, and update-threshold triggers that
//! decide when analytics must be recomputed.
//!
//! Everything is deterministic and in-process: time is a logical clock the
//! caller advances, and every transfer is accounted in bytes/messages so
//! the paper's bandwidth claims can be *measured* (experiments D1–D3).
//!
//! # Examples
//!
//! ```
//! use coda_store::{DeltaCodec, HomeDataStore};
//! use bytes::Bytes;
//!
//! let mut store = HomeDataStore::new("home", 4);
//! store.put("o1", Bytes::from(vec![0u8; 10_000]));
//! let mut v2 = vec![0u8; 10_000];
//! v2[17] = 9; // small update
//! store.put("o1", Bytes::from(v2));
//!
//! // a client holding version 1 fetches version 2: the store sends a delta
//! let reply = store.fetch("o1", Some(1))?.expect("object exists");
//! assert!(reply.wire_size() < 1_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod delta;
pub mod failover;
pub mod home;
pub mod lease;
pub mod replication;
pub mod tier;
pub mod trigger;
pub mod wal;

pub use client::{CachingClient, ClientError};
pub use delta::{content_hash, Delta, DeltaCodec, DeltaError, DeltaOp};
pub use failover::{FailoverDecision, HomeLeaseFailover};
pub use home::{FetchReply, HomeDataStore, TransferStats};
pub use lease::{Lease, PushMode, UpdateMessage};
pub use replication::{ReplicatedStore, ReplicationError};
pub use tier::{shard_of, DataTier, SharedTier};
pub use trigger::{ChangeMonitor, RecomputeTrigger, UpdateStats};
pub use wal::{DurableImage, DurableStore, Snapshot, WalRecord, WriteAheadLog};
