//! Optimizers: SGD with momentum and Adam.

use coda_linalg::Matrix;

/// A first-order optimizer over a flat list of `(param, grad)` pairs.
///
/// The pair order must be stable across steps (the [`crate::Sequential`]
/// network guarantees this); optimizers key their internal state by position.
pub trait Optimizer: Send {
    /// Applies one update step to every parameter.
    fn step(&mut self, params_and_grads: &mut [(&mut Matrix, &mut Matrix)]);

    /// The configured learning rate.
    fn learning_rate(&self) -> f64;
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Vec<f64>>,
}

impl Sgd {
    /// Plain SGD.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics on invalid hyper-parameters.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params_and_grads: &mut [(&mut Matrix, &mut Matrix)]) {
        if self.velocity.len() != params_and_grads.len() {
            self.velocity =
                params_and_grads.iter().map(|(p, _)| vec![0.0; p.as_slice().len()]).collect();
        }
        for (idx, (param, grad)) in params_and_grads.iter_mut().enumerate() {
            let vel = &mut self.velocity[idx];
            for ((p, g), v) in
                param.as_mut_slice().iter_mut().zip(grad.as_slice()).zip(vel.iter_mut())
            {
                *v = self.momentum * *v - self.lr * g;
                *p += *v;
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params_and_grads: &mut [(&mut Matrix, &mut Matrix)]) {
        if self.m.len() != params_and_grads.len() {
            self.m = params_and_grads.iter().map(|(p, _)| vec![0.0; p.as_slice().len()]).collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, (param, grad)) in params_and_grads.iter_mut().enumerate() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            for (((p, g), mi), vi) in param
                .as_mut_slice()
                .iter_mut()
                .zip(grad.as_slice())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)² with each optimizer.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = Matrix::from_rows(&[&[0.0]]);
        let mut g = Matrix::zeros(1, 1);
        for _ in 0..steps {
            g[(0, 0)] = 2.0 * (x[(0, 0)] - 3.0);
            let mut pairs = vec![(&mut x, &mut g)];
            opt.step(&mut pairs);
        }
        x[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let x = minimize(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "got {x}");
    }

    #[test]
    fn momentum_accelerates() {
        let mut plain = Sgd::new(0.01);
        let mut mom = Sgd::with_momentum(0.01, 0.9);
        let xp = minimize(&mut plain, 50);
        let xm = minimize(&mut mom, 50);
        assert!((xm - 3.0).abs() < (xp - 3.0).abs(), "momentum should be closer");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        let x = minimize(&mut opt, 300);
        assert!((x - 3.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn learning_rate_exposed() {
        assert_eq!(Sgd::new(0.5).learning_rate(), 0.5);
        assert_eq!(Adam::new(0.01).learning_rate(), 0.01);
    }

    #[test]
    fn invalid_hyperparameters_panic() {
        assert!(std::panic::catch_unwind(|| Sgd::new(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| Sgd::with_momentum(0.1, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| Adam::new(-0.1)).is_err());
    }
}
