//! CI overhead gate for the observability layer: evaluates the same
//! fan-out TEG with and without an attached `Obs` handle, interleaving
//! trials and comparing best-of-N wall-clock times. Fails (exit 1) when
//! the instrumented run exceeds the budget — a multiplicative ratio plus a
//! small absolute allowance for fixed costs — so tracing regressions are
//! caught before they land. Reports must also stay bit-identical, so the
//! instrumentation is provably observational.
//!
//! Usage: `overhead_gate [max_ratio]` (default 1.30, i.e. +30%).

use coda_bench::fan_out_graph;
use coda_core::{Evaluator, GraphReport};
use coda_data::{synth, CvStrategy, Metric};
use coda_obs::{
    diagnose, BurnWindows, DiagnoseConfig, FlightConfig, FlightRecorder, Obs, SloEngine, SloSignal,
    SloSpec, TailPolicy,
};

const TRIALS: usize = 5;
const DEFAULT_MAX_RATIO: f64 = 1.30;
/// Phase-2 budget: the full ops plane (flight recorder, armed exemplars,
/// tail sampling) on top of tracing must stay within +5% of the
/// traced-only run.
const OPS_MAX_RATIO: f64 = 1.05;
/// Absolute allowance for fixed instrumentation costs (ms) so tiny
/// workloads on noisy runners don't trip the ratio.
const ABS_SLACK_MS: f64 = 60.0;

fn main() {
    let max_ratio: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("max_ratio must be a float"))
        .unwrap_or(DEFAULT_MAX_RATIO);

    let ds = synth::friedman1(800, 20, 0.4, 55);
    let graph = fan_out_graph(8);
    let cv = CvStrategy::kfold(5);

    let run = |obs: Option<&Obs>| -> (f64, GraphReport) {
        let mut eval = Evaluator::new(cv.clone(), Metric::Rmse).with_prefix_cache(true);
        if let Some(o) = obs {
            eval = eval.with_obs(o.clone());
        }
        let start = std::time::Instant::now();
        let report = eval.evaluate_graph(&graph, &ds).expect("gate graph evaluates");
        (start.elapsed().as_secs_f64() * 1000.0, report)
    };

    // warmup, then interleaved timed trials (best-of-N per mode rides out
    // scheduler noise on shared CI runners)
    run(None);
    let mut plain_ms = f64::INFINITY;
    let mut traced_ms = f64::INFINITY;
    let mut spans = 0;
    let mut baseline: Option<GraphReport> = None;
    for _ in 0..TRIALS {
        let (p, plain_report) = run(None);
        plain_ms = plain_ms.min(p);
        let obs = Obs::wall();
        let (t, traced_report) = run(Some(&obs));
        traced_ms = traced_ms.min(t);
        spans = obs.tracer().len();

        // observational-only: the instrumented report is bit-identical
        for (a, b) in plain_report.results.iter().zip(&traced_report.results) {
            assert_eq!(a.spec, b.spec, "specs must match");
            assert_eq!(
                a.mean_score.to_bits(),
                b.mean_score.to_bits(),
                "instrumented scores must be bit-identical"
            );
        }
        baseline = Some(plain_report);
    }
    let report = baseline.expect("at least one trial ran");
    let paths = report.results.len();
    let ratio = traced_ms / plain_ms;
    let budget_ms = plain_ms * max_ratio + ABS_SLACK_MS;

    println!("observability overhead gate ({paths} paths, best of {TRIALS} trials)");
    println!("  plain:        {plain_ms:.1} ms");
    println!("  instrumented: {traced_ms:.1} ms ({spans} trace events)");
    println!("  ratio:        {ratio:.3}x  (budget {max_ratio:.2}x + {ABS_SLACK_MS:.0} ms)");

    if traced_ms > budget_ms {
        eprintln!(
            "FAIL: instrumented eval took {traced_ms:.1} ms, over the {budget_ms:.1} ms budget"
        );
        std::process::exit(1);
    }
    println!("PASS: within budget ({traced_ms:.1} ms <= {budget_ms:.1} ms)");

    // phase 2: the full ops plane rides on top of tracing — flight
    // recorder ticks per trial, armed exemplars on every eval.path
    // observation, and a tail-sampling pass over the trace log. Budget is
    // tighter (+5%) because these are continuous-production costs.
    let mut ops_ms = f64::INFINITY;
    let mut windows = 0usize;
    for trial in 0..TRIALS {
        let (t, traced_report) = run(Some(&Obs::wall()));
        traced_ms = traced_ms.min(t);
        let obs = Obs::wall();
        obs.exemplars().enable(0.0, 8);
        let mut recorder = FlightRecorder::new(FlightConfig::default());
        let start = std::time::Instant::now();
        recorder.tick(obs.now_ms(), &obs.registry().snapshot());
        let mut eval = Evaluator::new(cv.clone(), Metric::Rmse).with_prefix_cache(true);
        eval = eval.with_obs(obs.clone());
        let ops_report = eval.evaluate_graph(&graph, &ds).expect("gate graph evaluates");
        recorder.tick(obs.now_ms() + (trial as f64 + 1.0) * 100.0, &obs.registry().snapshot());
        let policy = TailPolicy::new().with_min_dur_ms(1_000_000.0);
        let _ = obs.tracer().sample_tail(&policy);
        ops_ms = ops_ms.min(start.elapsed().as_secs_f64() * 1000.0);
        windows = recorder.timeline().len();

        for (a, b) in traced_report.results.iter().zip(&ops_report.results) {
            assert_eq!(a.spec, b.spec, "specs must match");
            assert_eq!(
                a.mean_score.to_bits(),
                b.mean_score.to_bits(),
                "recorder + sampling must stay observational (bit-identical scores)"
            );
        }
    }
    let ops_ratio = ops_ms / traced_ms;
    let ops_budget_ms = traced_ms * OPS_MAX_RATIO + ABS_SLACK_MS;
    println!("ops-plane overhead gate (recorder + exemplars + tail sampling)");
    println!("  traced only:  {traced_ms:.1} ms");
    println!("  full plane:   {ops_ms:.1} ms ({windows} flight windows)");
    println!(
        "  ratio:        {ops_ratio:.3}x  (budget {OPS_MAX_RATIO:.2}x + {ABS_SLACK_MS:.0} ms)"
    );
    if ops_ms > ops_budget_ms {
        eprintln!("FAIL: ops plane took {ops_ms:.1} ms, over the {ops_budget_ms:.1} ms budget");
        std::process::exit(1);
    }
    println!("PASS: within budget ({ops_ms:.1} ms <= {ops_budget_ms:.1} ms)");

    // phase 3: diagnosis armed but unbreached — an SLO engine steps at
    // every flight tick and the attribution engine runs over the final
    // telemetry. With no breach the engine must cost nothing beyond the
    // ops plane (same +5% budget) and must emit the empty report
    // byte-identically on every trial.
    let specs = vec![
        SloSpec {
            name: "eval-error-rate".to_string(),
            signal: SloSignal::EventRatio {
                bad: "coda_core_eval_path_errors".to_string(),
                good: "coda_core_eval_paths_ok".to_string(),
            },
            objective: 0.05,
        },
        SloSpec {
            name: "gate-failovers".to_string(),
            signal: SloSignal::Occurrence {
                counter: "coda_cluster_failovers_total".to_string(),
                allowed_per_window: 0.02,
            },
            objective: 1.0,
        },
    ];
    let mut diag_ms = f64::INFINITY;
    let mut first_json: Option<String> = None;
    for trial in 0..TRIALS {
        let obs = Obs::wall();
        obs.exemplars().enable(0.0, 8);
        let mut recorder = FlightRecorder::new(FlightConfig::default());
        let mut engine = SloEngine::new(specs.clone(), BurnWindows::default());
        let start = std::time::Instant::now();
        recorder.tick(obs.now_ms(), &obs.registry().snapshot());
        engine.step(&recorder, Some(obs.tracer().as_ref()));
        let mut eval = Evaluator::new(cv.clone(), Metric::Rmse).with_prefix_cache(true);
        eval = eval.with_obs(obs.clone());
        let diag_report_eval = eval.evaluate_graph(&graph, &ds).expect("gate graph evaluates");
        recorder.tick(obs.now_ms() + (trial as f64 + 1.0) * 100.0, &obs.registry().snapshot());
        engine.step(&recorder, Some(obs.tracer().as_ref()));
        let slo = engine.report();
        let diag = diagnose(
            &DiagnoseConfig::default(),
            &recorder,
            &slo,
            &obs.exemplars().snapshot(),
            &obs.forest(),
        );
        diag_ms = diag_ms.min(start.elapsed().as_secs_f64() * 1000.0);

        assert!(diag.incidents.is_empty(), "an unbreached run must diagnose to zero incidents");
        let json = diag.to_json();
        match &first_json {
            Some(prev) => {
                assert_eq!(prev, &json, "unbreached diagnosis reports must render byte-identically")
            }
            None => first_json = Some(json),
        }
        for (a, b) in report.results.iter().zip(&diag_report_eval.results) {
            assert_eq!(a.spec, b.spec, "specs must match");
            assert_eq!(
                a.mean_score.to_bits(),
                b.mean_score.to_bits(),
                "armed diagnosis must stay observational (bit-identical scores)"
            );
        }
    }
    let diag_ratio = diag_ms / ops_ms;
    let diag_budget_ms = ops_ms * OPS_MAX_RATIO + ABS_SLACK_MS;
    println!("diagnosis overhead gate (SLO engine armed, no breach)");
    println!("  ops plane:    {ops_ms:.1} ms");
    println!("  with diagnosis: {diag_ms:.1} ms");
    println!(
        "  ratio:        {diag_ratio:.3}x  (budget {OPS_MAX_RATIO:.2}x + {ABS_SLACK_MS:.0} ms)"
    );
    if diag_ms > diag_budget_ms {
        eprintln!("FAIL: diagnosis took {diag_ms:.1} ms, over the {diag_budget_ms:.1} ms budget");
        std::process::exit(1);
    }
    println!("PASS: within budget ({diag_ms:.1} ms <= {diag_budget_ms:.1} ms)");
}
