/root/repo/target/release/deps/coda-aac3eb2ad4a3e17c.d: src/lib.rs

/root/repo/target/release/deps/libcoda-aac3eb2ad4a3e17c.rlib: src/lib.rs

/root/repo/target/release/deps/libcoda-aac3eb2ad4a3e17c.rmeta: src/lib.rs

src/lib.rs:
