/root/repo/target/debug/deps/coda_bench-7e9ccbe0b8044c90.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcoda_bench-7e9ccbe0b8044c90.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcoda_bench-7e9ccbe0b8044c90.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
