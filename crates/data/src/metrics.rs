//! Scoring metrics for regression, classification and forecasting.
//!
//! The paper lists (§III, §IV-B): MSE, RMSE, MAE, median absolute error,
//! MSLE, RMSLE, R², MAPE for regression/forecasting, and accuracy, AUC and
//! F1-score for classification. All are provided here with a uniform
//! `(&[f64], &[f64]) -> Result<f64, MetricError>` signature plus the
//! [`Metric`] enum used by graph evaluation.

use std::fmt;

/// Error produced by metric computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// Prediction and truth lengths differ.
    LengthMismatch {
        /// Ground-truth length.
        truth: usize,
        /// Prediction length.
        pred: usize,
    },
    /// Inputs are empty.
    Empty,
    /// Metric is undefined for these inputs (e.g. log of a negative value).
    Undefined(&'static str),
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::LengthMismatch { truth, pred } => {
                write!(f, "length mismatch: {truth} truths vs {pred} predictions")
            }
            MetricError::Empty => write!(f, "empty inputs"),
            MetricError::Undefined(why) => write!(f, "metric undefined: {why}"),
        }
    }
}

impl std::error::Error for MetricError {}

fn check(y: &[f64], yhat: &[f64]) -> Result<(), MetricError> {
    if y.len() != yhat.len() {
        return Err(MetricError::LengthMismatch { truth: y.len(), pred: yhat.len() });
    }
    if y.is_empty() {
        return Err(MetricError::Empty);
    }
    Ok(())
}

/// Mean squared error.
///
/// # Errors
///
/// [`MetricError::LengthMismatch`] or [`MetricError::Empty`].
pub fn mse(y: &[f64], yhat: &[f64]) -> Result<f64, MetricError> {
    check(y, yhat)?;
    Ok(y.iter().zip(yhat).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / y.len() as f64)
}

/// Root mean squared error.
///
/// # Errors
///
/// As for [`mse`].
pub fn rmse(y: &[f64], yhat: &[f64]) -> Result<f64, MetricError> {
    Ok(mse(y, yhat)?.sqrt())
}

/// Mean absolute error.
///
/// # Errors
///
/// As for [`mse`].
pub fn mae(y: &[f64], yhat: &[f64]) -> Result<f64, MetricError> {
    check(y, yhat)?;
    Ok(y.iter().zip(yhat).map(|(a, b)| (a - b).abs()).sum::<f64>() / y.len() as f64)
}

/// Median absolute error.
///
/// # Errors
///
/// As for [`mse`].
pub fn median_absolute_error(y: &[f64], yhat: &[f64]) -> Result<f64, MetricError> {
    check(y, yhat)?;
    let abs: Vec<f64> = y.iter().zip(yhat).map(|(a, b)| (a - b).abs()).collect();
    Ok(coda_linalg::median(&abs))
}

/// Mean absolute percentage error (in percent). Zero-truth entries are
/// skipped; if all truths are zero the metric is undefined.
///
/// # Errors
///
/// As for [`mse`], plus [`MetricError::Undefined`] when every truth is zero.
pub fn mape(y: &[f64], yhat: &[f64]) -> Result<f64, MetricError> {
    check(y, yhat)?;
    let mut total = 0.0;
    let mut n = 0usize;
    for (a, b) in y.iter().zip(yhat) {
        if *a != 0.0 {
            total += ((a - b) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        return Err(MetricError::Undefined("all ground-truth values are zero"));
    }
    Ok(100.0 * total / n as f64)
}

/// Mean squared logarithmic error. Requires `y` and `yhat` ≥ −1 + ε so the
/// `ln(1+x)` transform is defined.
///
/// # Errors
///
/// As for [`mse`], plus [`MetricError::Undefined`] on values ≤ −1.
pub fn msle(y: &[f64], yhat: &[f64]) -> Result<f64, MetricError> {
    check(y, yhat)?;
    let mut total = 0.0;
    for (a, b) in y.iter().zip(yhat) {
        if *a <= -1.0 || *b <= -1.0 {
            return Err(MetricError::Undefined("msle requires values > -1"));
        }
        let d = (1.0 + a).ln() - (1.0 + b).ln();
        total += d * d;
    }
    Ok(total / y.len() as f64)
}

/// Root mean squared logarithmic error.
///
/// # Errors
///
/// As for [`msle`].
pub fn rmsle(y: &[f64], yhat: &[f64]) -> Result<f64, MetricError> {
    Ok(msle(y, yhat)?.sqrt())
}

/// Coefficient of determination R². 1.0 is a perfect fit; 0.0 matches the
/// mean predictor; negative is worse than the mean predictor.
///
/// # Errors
///
/// As for [`mse`], plus [`MetricError::Undefined`] for constant truth.
pub fn r2(y: &[f64], yhat: &[f64]) -> Result<f64, MetricError> {
    check(y, yhat)?;
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let ss_tot: f64 = y.iter().map(|a| (a - mean) * (a - mean)).sum();
    if ss_tot == 0.0 {
        return Err(MetricError::Undefined("constant ground truth"));
    }
    let ss_res: f64 = y.iter().zip(yhat).map(|(a, b)| (a - b) * (a - b)).sum();
    Ok(1.0 - ss_res / ss_tot)
}

/// Classification accuracy: fraction of exact label matches.
///
/// # Errors
///
/// As for [`mse`].
pub fn accuracy(y: &[f64], yhat: &[f64]) -> Result<f64, MetricError> {
    check(y, yhat)?;
    let hits = y.iter().zip(yhat).filter(|(a, b)| a == b).count();
    Ok(hits as f64 / y.len() as f64)
}

/// Binary confusion counts `(tp, fp, tn, fn)` treating `positive` as the
/// positive class label.
///
/// # Errors
///
/// As for [`mse`].
pub fn confusion(
    y: &[f64],
    yhat: &[f64],
    positive: f64,
) -> Result<(usize, usize, usize, usize), MetricError> {
    check(y, yhat)?;
    let mut tp = 0;
    let mut fp = 0;
    let mut tn = 0;
    let mut fal_n = 0;
    for (a, b) in y.iter().zip(yhat) {
        match (*a == positive, *b == positive) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (false, false) => tn += 1,
            (true, false) => fal_n += 1,
        }
    }
    Ok((tp, fp, tn, fal_n))
}

/// Precision for the given positive class; 0.0 when no positives predicted.
///
/// # Errors
///
/// As for [`mse`].
pub fn precision(y: &[f64], yhat: &[f64], positive: f64) -> Result<f64, MetricError> {
    let (tp, fp, _, _) = confusion(y, yhat, positive)?;
    Ok(if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 })
}

/// Recall for the given positive class; 0.0 when no positives present.
///
/// # Errors
///
/// As for [`mse`].
pub fn recall(y: &[f64], yhat: &[f64], positive: f64) -> Result<f64, MetricError> {
    let (tp, _, _, fal_n) = confusion(y, yhat, positive)?;
    Ok(if tp + fal_n == 0 { 0.0 } else { tp as f64 / (tp + fal_n) as f64 })
}

/// F1-score for the given positive class.
///
/// # Errors
///
/// As for [`mse`].
pub fn f1_score(y: &[f64], yhat: &[f64], positive: f64) -> Result<f64, MetricError> {
    let p = precision(y, yhat, positive)?;
    let r = recall(y, yhat, positive)?;
    Ok(if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) })
}

/// Area under the ROC curve from real-valued scores (higher = more positive),
/// with class-1 as positive. Computed by the rank statistic with tie
/// correction.
///
/// # Errors
///
/// As for [`mse`], plus [`MetricError::Undefined`] when only one class is
/// present.
pub fn auc(y: &[f64], scores: &[f64]) -> Result<f64, MetricError> {
    check(y, scores)?;
    let n_pos = y.iter().filter(|&&v| v == 1.0).count();
    let n_neg = y.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(MetricError::Undefined("auc requires both classes present"));
    }
    // rank the scores (average rank for ties)
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    let sum_pos_ranks: f64 = y.iter().zip(&ranks).filter(|(v, _)| **v == 1.0).map(|(_, r)| r).sum();
    let u = sum_pos_ranks - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Ok(u / (n_pos * n_neg) as f64)
}

/// Binary cross-entropy (log loss) from probability scores in `[0, 1]`,
/// clipped at 1e-15 to avoid infinities.
///
/// # Errors
///
/// As for [`mse`].
pub fn log_loss(y: &[f64], probs: &[f64]) -> Result<f64, MetricError> {
    check(y, probs)?;
    let eps = 1e-15;
    let total: f64 = y
        .iter()
        .zip(probs)
        .map(|(a, p)| {
            let p = p.clamp(eps, 1.0 - eps);
            if *a == 1.0 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    Ok(total / y.len() as f64)
}

/// A named scoring metric, as agreed across cooperating users (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Mean squared error (lower is better).
    Mse,
    /// Root mean squared error (lower is better).
    Rmse,
    /// Mean absolute error (lower is better).
    Mae,
    /// Median absolute error (lower is better).
    MedianAe,
    /// Mean absolute percentage error (lower is better).
    Mape,
    /// Root mean squared log error (lower is better).
    Rmsle,
    /// R² (higher is better).
    R2,
    /// Accuracy (higher is better).
    Accuracy,
    /// F1-score with positive class 1.0 (higher is better).
    F1,
    /// AUC with positive class 1.0 (higher is better).
    Auc,
}

impl Metric {
    /// Evaluates the metric.
    ///
    /// # Errors
    ///
    /// Propagates the underlying metric function's error.
    pub fn compute(&self, y: &[f64], yhat: &[f64]) -> Result<f64, MetricError> {
        match self {
            Metric::Mse => mse(y, yhat),
            Metric::Rmse => rmse(y, yhat),
            Metric::Mae => mae(y, yhat),
            Metric::MedianAe => median_absolute_error(y, yhat),
            Metric::Mape => mape(y, yhat),
            Metric::Rmsle => rmsle(y, yhat),
            Metric::R2 => r2(y, yhat),
            Metric::Accuracy => accuracy(y, yhat),
            Metric::F1 => f1_score(y, yhat, 1.0),
            Metric::Auc => auc(y, yhat),
        }
    }

    /// Whether a larger score is better for this metric.
    pub fn higher_is_better(&self) -> bool {
        matches!(self, Metric::R2 | Metric::Accuracy | Metric::F1 | Metric::Auc)
    }

    /// True if score `a` is better than score `b` under this metric.
    pub fn is_better(&self, a: f64, b: f64) -> bool {
        if self.higher_is_better() {
            a > b
        } else {
            a < b
        }
    }

    /// The worst possible sentinel score for this metric, useful as an
    /// initial value in arg-best scans.
    pub fn worst(&self) -> f64 {
        if self.higher_is_better() {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        }
    }

    /// Parses a metric name (the strings of Listing 2, e.g. `"f1-score"`).
    pub fn parse(name: &str) -> Option<Metric> {
        match name.to_ascii_lowercase().as_str() {
            "mse" => Some(Metric::Mse),
            "rmse" => Some(Metric::Rmse),
            "mae" => Some(Metric::Mae),
            "median-ae" | "median_absolute_error" => Some(Metric::MedianAe),
            "mape" => Some(Metric::Mape),
            "rmsle" => Some(Metric::Rmsle),
            "r2" => Some(Metric::R2),
            "accuracy" => Some(Metric::Accuracy),
            "f1-score" | "f1" => Some(Metric::F1),
            "auc" => Some(Metric::Auc),
            _ => None,
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Metric::Mse => "mse",
            Metric::Rmse => "rmse",
            Metric::Mae => "mae",
            Metric::MedianAe => "median-ae",
            Metric::Mape => "mape",
            Metric::Rmsle => "rmsle",
            Metric::R2 => "r2",
            Metric::Accuracy => "accuracy",
            Metric::F1 => "f1-score",
            Metric::Auc => "auc",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_metrics_known_values() {
        let y = [1.0, 2.0, 3.0];
        let yhat = [1.0, 2.0, 5.0];
        assert!((mse(&y, &yhat).unwrap() - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&y, &yhat).unwrap() - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&y, &yhat).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(median_absolute_error(&y, &yhat).unwrap(), 0.0);
    }

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mse(&y, &y).unwrap(), 0.0);
        assert_eq!(r2(&y, &y).unwrap(), 1.0);
        assert_eq!(mape(&y, &y).unwrap(), 0.0);
        assert_eq!(rmsle(&y, &y).unwrap(), 0.0);
    }

    #[test]
    fn r2_mean_predictor_is_zero() {
        let y = [1.0, 2.0, 3.0];
        let mean = [2.0, 2.0, 2.0];
        assert!((r2(&y, &mean).unwrap()).abs() < 1e-12);
        assert!(r2(&[5.0, 5.0], &[5.0, 5.0]).is_err()); // constant truth
    }

    #[test]
    fn mape_skips_zero_truth() {
        let y = [0.0, 2.0];
        let yhat = [1.0, 1.0];
        // only the second term counts: |2-1|/2 = 0.5 -> 50%
        assert!((mape(&y, &yhat).unwrap() - 50.0).abs() < 1e-12);
        assert!(mape(&[0.0], &[1.0]).is_err());
    }

    #[test]
    fn msle_rejects_below_minus_one() {
        assert!(msle(&[-2.0], &[0.0]).is_err());
        assert!(msle(&[0.0], &[-2.0]).is_err());
    }

    #[test]
    fn length_and_empty_checks() {
        assert!(matches!(mse(&[1.0], &[1.0, 2.0]), Err(MetricError::LengthMismatch { .. })));
        assert!(matches!(mse(&[], &[]), Err(MetricError::Empty)));
    }

    #[test]
    fn classification_metrics() {
        let y = [1.0, 1.0, 0.0, 0.0];
        let yhat = [1.0, 0.0, 0.0, 1.0];
        assert_eq!(accuracy(&y, &yhat).unwrap(), 0.5);
        let (tp, fp, tn, fal_n) = confusion(&y, &yhat, 1.0).unwrap();
        assert_eq!((tp, fp, tn, fal_n), (1, 1, 1, 1));
        assert_eq!(precision(&y, &yhat, 1.0).unwrap(), 0.5);
        assert_eq!(recall(&y, &yhat, 1.0).unwrap(), 0.5);
        assert_eq!(f1_score(&y, &yhat, 1.0).unwrap(), 0.5);
    }

    #[test]
    fn f1_degenerate_cases() {
        // no predicted positives -> precision 0, f1 0
        assert_eq!(f1_score(&[1.0, 0.0], &[0.0, 0.0], 1.0).unwrap(), 0.0);
    }

    #[test]
    fn auc_perfect_and_random_and_inverted() {
        let y = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&y, &[0.1, 0.2, 0.8, 0.9]).unwrap(), 1.0);
        assert_eq!(auc(&y, &[0.9, 0.8, 0.2, 0.1]).unwrap(), 0.0);
        // ties on everything -> 0.5
        assert_eq!(auc(&y, &[0.5, 0.5, 0.5, 0.5]).unwrap(), 0.5);
        assert!(auc(&[1.0, 1.0], &[0.5, 0.5]).is_err());
    }

    #[test]
    fn log_loss_behaviour() {
        let y = [1.0, 0.0];
        let good = log_loss(&y, &[0.9, 0.1]).unwrap();
        let bad = log_loss(&y, &[0.1, 0.9]).unwrap();
        assert!(good < bad);
        // extreme but wrong probabilities are clipped, not infinite
        assert!(log_loss(&y, &[0.0, 1.0]).unwrap().is_finite());
    }

    #[test]
    fn metric_enum_dispatch_and_ordering() {
        let y = [1.0, 2.0, 3.0];
        let yhat = [1.1, 2.1, 2.9];
        assert!(Metric::Rmse.compute(&y, &yhat).unwrap() > 0.0);
        assert!(!Metric::Rmse.higher_is_better());
        assert!(Metric::R2.higher_is_better());
        assert!(Metric::Rmse.is_better(0.1, 0.2));
        assert!(Metric::R2.is_better(0.9, 0.2));
        assert_eq!(Metric::Rmse.worst(), f64::INFINITY);
        assert_eq!(Metric::Auc.worst(), f64::NEG_INFINITY);
    }

    #[test]
    fn metric_parse_roundtrip() {
        for m in [
            Metric::Mse,
            Metric::Rmse,
            Metric::Mae,
            Metric::MedianAe,
            Metric::Mape,
            Metric::Rmsle,
            Metric::R2,
            Metric::Accuracy,
            Metric::F1,
            Metric::Auc,
        ] {
            assert_eq!(Metric::parse(&m.to_string()), Some(m));
        }
        assert_eq!(Metric::parse("f1-score"), Some(Metric::F1));
        assert_eq!(Metric::parse("nope"), None);
    }
}
