/root/repo/target/debug/deps/cv-d196bed43855ae56.d: crates/bench/benches/cv.rs Cargo.toml

/root/repo/target/debug/deps/libcv-d196bed43855ae56.rmeta: crates/bench/benches/cv.rs Cargo.toml

crates/bench/benches/cv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
