//! Seeded fault plans and the injector that executes them: probabilistic
//! message drops, scheduled link flaps, slow transfers, node
//! crash/restart windows and payload corruption — all deterministic
//! functions of the plan's seed and the injector's logical clock.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduled link outage: the link between `a` and `b` is down for
/// logical times in `[down_at, up_at)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFlap {
    /// One endpoint.
    pub a: String,
    /// Other endpoint.
    pub b: String,
    /// Outage start (inclusive), logical ms.
    pub down_at: f64,
    /// Outage end (exclusive), logical ms.
    pub up_at: f64,
}

/// A scheduled node outage: `node` is crashed for logical times in
/// `[down_at, up_at)`; messages to or from it fail.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCrash {
    /// The crashed node's name.
    pub node: String,
    /// Crash time (inclusive), logical ms.
    pub down_at: f64,
    /// Restart time (exclusive), logical ms.
    pub up_at: f64,
}

/// The declarative fault schedule for one chaos run. All probabilities are
/// per message; all times are logical milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; same seed + same call sequence = identical faults.
    pub seed: u64,
    /// Probability a message is dropped in flight.
    pub drop_probability: f64,
    /// Probability a payload is corrupted in flight (bit flip).
    pub corrupt_probability: f64,
    /// Probability a message is slowed down.
    pub slow_probability: f64,
    /// Transfer-time multiplier applied to slowed messages (>= 1).
    pub slowdown_factor: f64,
    /// Scheduled link outages.
    pub link_flaps: Vec<LinkFlap>,
    /// Scheduled node crash/restart windows.
    pub crashes: Vec<NodeCrash>,
}

impl FaultPlan {
    /// A no-fault plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            slow_probability: 0.0,
            slowdown_factor: 1.0,
            link_flaps: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Sets the per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_probability = p;
        self
    }

    /// Sets the per-payload corruption probability.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    pub fn with_corrupt_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corrupt_probability = p;
        self
    }

    /// Slows a fraction `p` of messages by `factor`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]` or `factor < 1`.
    pub fn with_slowdown(mut self, p: f64, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        assert!(factor >= 1.0, "slowdown must not speed transfers up");
        self.slow_probability = p;
        self.slowdown_factor = factor;
        self
    }

    /// Schedules a link outage between `a` and `b` for `[down_at, up_at)`.
    pub fn with_link_flap(mut self, a: &str, b: &str, down_at: f64, up_at: f64) -> Self {
        self.link_flaps.push(LinkFlap { a: a.to_string(), b: b.to_string(), down_at, up_at });
        self
    }

    /// Schedules a crash/restart window for `node`.
    pub fn with_crash(mut self, node: &str, down_at: f64, up_at: f64) -> Self {
        self.crashes.push(NodeCrash { node: node.to_string(), down_at, up_at });
        self
    }
}

/// Counters kept by the injector — the ground truth a chaos report prints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages the injector was consulted about.
    pub messages_seen: u64,
    /// Messages dropped by the random-drop fault.
    pub dropped: u64,
    /// Messages refused because a scheduled link flap was active.
    pub link_down: u64,
    /// Messages refused because an endpoint was inside a crash window.
    pub node_down: u64,
    /// Payloads corrupted.
    pub corrupted: u64,
    /// Messages slowed.
    pub slowed: u64,
    /// Scheduled node-crash windows entered (clock crossed `down_at`).
    pub crashes: u64,
    /// Scheduled node restarts (clock crossed `up_at`).
    pub restarts: u64,
}

impl FaultStats {
    /// Faults actually injected (dropped, refused, corrupted, or slowed).
    pub fn injected(&self) -> u64 {
        self.dropped + self.link_down + self.node_down + self.corrupted + self.slowed
    }
}

impl coda_obs::Publish for FaultStats {
    fn publish(&self, registry: &coda_obs::MetricsRegistry) {
        registry.count("coda_chaos_faults_messages_seen", self.messages_seen);
        registry.count("coda_chaos_faults_dropped", self.dropped);
        registry.count("coda_chaos_faults_link_down", self.link_down);
        registry.count("coda_chaos_faults_node_down", self.node_down);
        registry.count("coda_chaos_faults_corrupted", self.corrupted);
        registry.count("coda_chaos_faults_slowed", self.slowed);
        registry.count("coda_chaos_faults_crashes", self.crashes);
        registry.count("coda_chaos_faults_restarts", self.restarts);
        registry.count("coda_chaos_faults_injected", self.injected());
    }
}

/// Executes a [`FaultPlan`]: the network/store layers consult it per
/// message. Deterministic: faults depend only on the plan (seed +
/// schedule), the injector's logical clock, and the call sequence.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    now_ms: f64,
    stats: FaultStats,
    /// Per-crash-window (crash counted, restart counted) flags, parallel
    /// to `plan.crashes` — each scheduled window produces exactly one
    /// crash event and at most one restart event as the clock crosses it.
    crash_edges: Vec<(bool, bool)>,
}

impl FaultInjector {
    /// Creates an injector at logical time zero.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        let crash_edges = vec![(false, false); plan.crashes.len()];
        let mut injector =
            FaultInjector { plan, rng, now_ms: 0.0, stats: FaultStats::default(), crash_edges };
        injector.count_crash_edges();
        injector
    }

    /// Counts crash/restart events for every scheduled window the clock
    /// has reached — a pure function of the clock, so same-seed replays
    /// see identical event counts.
    fn count_crash_edges(&mut self) {
        for (i, c) in self.plan.crashes.iter().enumerate() {
            let (crashed, restarted) = &mut self.crash_edges[i];
            if !*crashed && self.now_ms >= c.down_at {
                *crashed = true;
                self.stats.crashes += 1;
            }
            if !*restarted && self.now_ms >= c.up_at {
                *restarted = true;
                self.stats.restarts += 1;
            }
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Current logical time.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Advances the logical clock (never backwards), counting any scheduled
    /// crash/restart events the move crosses.
    pub fn advance_to(&mut self, now_ms: f64) {
        if now_ms > self.now_ms {
            self.now_ms = now_ms;
            self.count_crash_edges();
        }
    }

    /// True when `node` is outside every scheduled crash window right now.
    pub fn node_up(&self, node: &str) -> bool {
        !self
            .plan
            .crashes
            .iter()
            .any(|c| c.node == node && self.now_ms >= c.down_at && self.now_ms < c.up_at)
    }

    /// True when no scheduled flap holds the `a`–`b` link down right now
    /// (symmetric) and both endpoints are up.
    pub fn link_up(&self, a: &str, b: &str) -> bool {
        if !self.node_up(a) || !self.node_up(b) {
            return false;
        }
        !self.plan.link_flaps.iter().any(|f| {
            ((f.a == a && f.b == b) || (f.a == b && f.b == a))
                && self.now_ms >= f.down_at
                && self.now_ms < f.up_at
        })
    }

    /// Consults the injector about one message from `a` to `b`: returns
    /// true when the message must be dropped (scheduled outage or random
    /// drop). Advances the RNG only for the random-drop draw.
    pub fn should_drop(&mut self, a: &str, b: &str) -> bool {
        self.stats.messages_seen += 1;
        if !self.node_up(a) || !self.node_up(b) {
            self.stats.node_down += 1;
            return true;
        }
        if !self.link_up(a, b) {
            self.stats.link_down += 1;
            return true;
        }
        if self.plan.drop_probability > 0.0 && self.rng.gen_bool(self.plan.drop_probability) {
            self.stats.dropped += 1;
            return true;
        }
        false
    }

    /// The transfer-time multiplier for one (not dropped) message.
    pub fn delay_factor(&mut self) -> f64 {
        if self.plan.slow_probability > 0.0 && self.rng.gen_bool(self.plan.slow_probability) {
            self.stats.slowed += 1;
            self.plan.slowdown_factor
        } else {
            1.0
        }
    }

    /// Possibly corrupts `payload` in flight (one deterministic bit flip).
    /// Returns true when corruption happened.
    pub fn corrupt(&mut self, payload: &mut [u8]) -> bool {
        if payload.is_empty()
            || self.plan.corrupt_probability <= 0.0
            || !self.rng.gen_bool(self.plan.corrupt_probability)
        {
            return false;
        }
        let idx = self.rng.gen_range(0..payload.len());
        let bit = self.rng.gen_range(0..8u32);
        payload[idx] ^= 1 << bit;
        self.stats.corrupted += 1;
        true
    }

    /// The counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fault_plan_is_transparent() {
        let mut inj = FaultInjector::new(FaultPlan::new(1));
        for _ in 0..100 {
            assert!(!inj.should_drop("a", "b"));
            assert_eq!(inj.delay_factor(), 1.0);
        }
        let mut payload = vec![1, 2, 3];
        assert!(!inj.corrupt(&mut payload));
        assert_eq!(payload, vec![1, 2, 3]);
        assert_eq!(inj.stats().messages_seen, 100);
        assert_eq!(inj.stats().dropped, 0);
    }

    #[test]
    fn drops_match_probability_and_replay() {
        let run = || {
            let mut inj = FaultInjector::new(FaultPlan::new(42).with_drop_probability(0.2));
            (0..1000).filter(|_| inj.should_drop("a", "b")).count()
        };
        let drops = run();
        assert_eq!(drops, run(), "same seed must replay identically");
        assert!((100..300).contains(&drops), "~20% of 1000, got {drops}");
    }

    #[test]
    fn scheduled_link_flap_follows_clock() {
        let plan = FaultPlan::new(3).with_link_flap("x", "y", 100.0, 200.0);
        let mut inj = FaultInjector::new(plan);
        assert!(inj.link_up("x", "y"));
        assert!(!inj.should_drop("x", "y"));
        inj.advance_to(150.0);
        assert!(!inj.link_up("x", "y"));
        assert!(!inj.link_up("y", "x"), "flaps are symmetric");
        assert!(inj.should_drop("x", "y"));
        assert!(inj.link_up("x", "z"), "other links unaffected");
        inj.advance_to(200.0);
        assert!(inj.link_up("x", "y"));
        assert_eq!(inj.stats().link_down, 1);
    }

    #[test]
    fn crash_window_fails_all_node_traffic() {
        let plan = FaultPlan::new(4).with_crash("n1", 50.0, 80.0);
        let mut inj = FaultInjector::new(plan);
        inj.advance_to(60.0);
        assert!(!inj.node_up("n1"));
        assert!(inj.should_drop("n1", "other"));
        assert!(inj.should_drop("other", "n1"), "both directions fail");
        inj.advance_to(80.0);
        assert!(inj.node_up("n1"));
        assert!(!inj.should_drop("n1", "other"));
        assert_eq!(inj.stats().node_down, 2);
    }

    #[test]
    fn crash_and_restart_events_are_counted_once() {
        let plan = FaultPlan::new(9).with_crash("n1", 50.0, 80.0).with_crash("n2", 200.0, 300.0);
        let mut inj = FaultInjector::new(plan);
        assert_eq!((inj.stats().crashes, inj.stats().restarts), (0, 0));
        inj.advance_to(60.0); // inside n1's window
        assert_eq!((inj.stats().crashes, inj.stats().restarts), (1, 0));
        inj.advance_to(65.0); // still inside: no double count
        assert_eq!(inj.stats().crashes, 1);
        inj.advance_to(100.0); // past n1's restart
        assert_eq!((inj.stats().crashes, inj.stats().restarts), (1, 1));
        inj.advance_to(1000.0); // jump over n2's entire window: both edges count
        assert_eq!((inj.stats().crashes, inj.stats().restarts), (2, 2));
    }

    #[test]
    fn crash_window_already_open_at_time_zero_counts() {
        let inj = FaultInjector::new(FaultPlan::new(9).with_crash("n", 0.0, 10.0));
        assert_eq!(inj.stats().crashes, 1);
        assert_eq!(inj.stats().restarts, 0);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let mut inj = FaultInjector::new(FaultPlan::new(5));
        inj.advance_to(100.0);
        inj.advance_to(50.0);
        assert_eq!(inj.now_ms(), 100.0);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(FaultPlan::new(6).with_corrupt_probability(1.0));
        let original = vec![0u8; 64];
        let mut payload = original.clone();
        assert!(inj.corrupt(&mut payload));
        let diff: u32 = original.iter().zip(&payload).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(diff, 1);
        assert_eq!(inj.stats().corrupted, 1);
    }

    #[test]
    fn slowdown_applies_to_a_fraction() {
        let mut inj = FaultInjector::new(FaultPlan::new(7).with_slowdown(0.5, 4.0));
        let factors: Vec<f64> = (0..200).map(|_| inj.delay_factor()).collect();
        assert!(factors.contains(&4.0));
        assert!(factors.contains(&1.0));
        assert_eq!(inj.stats().slowed as usize, factors.iter().filter(|&&f| f == 4.0).count());
    }
}
