//! Compute nodes: clients with modest power, cloud analytics servers with
//! elastic VM pools (Fig. 1's "cloud virtual machines can be scaled as
//! needed").

/// A batch of analytics work: e.g. one graph evaluation of `n_subtasks`
/// pipelines, each costing `work_per_subtask` units, over `input_bytes` of
/// data that must reach the executing node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticsTask {
    /// Independent subtasks (pipelines × parameter settings × folds).
    pub n_subtasks: usize,
    /// Work units per subtask.
    pub work_per_subtask: f64,
    /// Input data size in bytes.
    pub input_bytes: u64,
}

impl AnalyticsTask {
    /// Total work units.
    pub fn total_work(&self) -> f64 {
        self.n_subtasks as f64 * self.work_per_subtask
    }
}

/// A compute node with `power` work-units/ms and `vms` parallel executors.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeNode {
    name: String,
    power: f64,
    vms: usize,
}

impl ComputeNode {
    /// A client node: single executor.
    ///
    /// # Panics
    ///
    /// Panics if `power <= 0`.
    pub fn client<S: Into<String>>(name: S, power: f64) -> Self {
        assert!(power > 0.0, "power must be positive");
        ComputeNode { name: name.into(), power, vms: 1 }
    }

    /// A cloud analytics server with a pool of `vms` virtual machines, each
    /// of `power_per_vm`.
    ///
    /// # Panics
    ///
    /// Panics if `power_per_vm <= 0` or `vms == 0`.
    pub fn cloud<S: Into<String>>(name: S, power_per_vm: f64, vms: usize) -> Self {
        assert!(power_per_vm > 0.0 && vms > 0);
        ComputeNode { name: name.into(), power: power_per_vm, vms }
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-executor power.
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Executor count.
    pub fn vms(&self) -> usize {
        self.vms
    }

    /// Scales the VM pool (elastic cloud).
    ///
    /// # Panics
    ///
    /// Panics if `vms == 0`.
    pub fn scaled_to(mut self, vms: usize) -> Self {
        assert!(vms > 0);
        self.vms = vms;
        self
    }

    /// Execution time for a task on this node: subtasks are spread over the
    /// VM pool, so the makespan is `ceil(n / vms)` rounds of
    /// `work / power`.
    pub fn execution_time(&self, task: &AnalyticsTask) -> f64 {
        let rounds = task.n_subtasks.div_ceil(self.vms);
        rounds as f64 * task.work_per_subtask / self.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> AnalyticsTask {
        AnalyticsTask { n_subtasks: 10, work_per_subtask: 100.0, input_bytes: 1_000 }
    }

    #[test]
    fn client_is_sequential() {
        let c = ComputeNode::client("c", 2.0);
        assert_eq!(c.vms(), 1);
        assert!((c.execution_time(&task()) - 10.0 * 100.0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn cloud_parallelizes() {
        let cloud = ComputeNode::cloud("dc", 2.0, 5);
        // 10 subtasks over 5 VMs = 2 rounds of 50ms
        assert!((cloud.execution_time(&task()) - 100.0).abs() < 1e-12);
        // scaling to 10 VMs halves the makespan
        let bigger = cloud.scaled_to(10);
        assert!((bigger.execution_time(&task()) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn uneven_rounds_round_up() {
        let cloud = ComputeNode::cloud("dc", 1.0, 4);
        // 10 subtasks over 4 VMs = 3 rounds
        assert!((cloud.execution_time(&task()) - 300.0).abs() < 1e-12);
    }

    #[test]
    fn total_work() {
        assert_eq!(task().total_work(), 1000.0);
    }

    #[test]
    fn invalid_construction_panics() {
        assert!(std::panic::catch_unwind(|| ComputeNode::client("x", 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| ComputeNode::cloud("x", 1.0, 0)).is_err());
    }
}
