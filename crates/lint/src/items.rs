//! Shared item traversal: enumerates every function body in a file with a
//! `Type::name`-qualified name, tracking `impl`/`trait`/`mod` nesting the
//! same way the lock-order pass does. The dataflow and observability
//! analyses walk functions through this module instead of each growing a
//! private copy of the brace-matching scan.

use crate::lexer::{Tok, TokKind};
use crate::source::SourceFile;

/// One function found in a file. Token indices are into
/// `SourceFile::tokens`; the body is `[body_start, body_end)` *excluding*
/// the braces.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// `Type::name` for methods, bare `name` for free functions.
    pub qual: String,
    /// Bare function name.
    pub name: String,
    /// Index of the first token after the opening `{`.
    pub body_start: usize,
    /// Index of the closing `}`.
    pub body_end: usize,
    /// Index of the `fn` keyword (signature start).
    pub sig_start: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// All functions of `sf`, in source order (test functions included, marked).
pub fn functions(sf: &SourceFile) -> Vec<FnSpan> {
    let mut out = Vec::new();
    scan(sf, 0, sf.tokens.len(), None, &mut out);
    out
}

/// Index of the `}` matching the `{` at `open` (or `end` when unmatched).
pub fn matching_brace(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    end
}

/// Index of the `)` matching the `(` at `open` (or `end` when unmatched).
pub fn matching_paren(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(end).skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    end
}

fn scan(sf: &SourceFile, start: usize, end: usize, impl_ty: Option<&str>, out: &mut Vec<FnSpan>) {
    let toks = &sf.tokens;
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_ident("impl") || t.is_ident("trait") {
            // self-type name: last depth-0 path ident before the body,
            // taking the `for <Type>` side when present
            let mut angle = 0i32;
            let mut name: Option<String> = None;
            let mut j = i + 1;
            while j < end {
                let tj = &toks[j];
                if tj.is_punct('<') {
                    angle += 1;
                } else if tj.is_punct('>') {
                    angle -= 1;
                } else if angle == 0 {
                    if tj.is_ident("for") {
                        name = None;
                    } else if tj.is_ident("where") || tj.is_punct('{') || tj.is_punct(';') {
                        break;
                    } else if tj.is_punct(':') {
                        if matches!(toks.get(j + 1), Some(c) if c.is_punct(':')) {
                            j += 1; // path separator `::`, keep collecting
                        } else {
                            break; // supertrait / bound list: name is fixed
                        }
                    } else if tj.kind == TokKind::Ident && !tj.is_ident("dyn") {
                        name = Some(tj.text.clone());
                    }
                }
                j += 1;
            }
            if j < end && toks[j].is_punct('{') {
                let body_end = matching_brace(toks, j, end);
                scan(sf, j + 1, body_end, name.as_deref().or(impl_ty), out);
                i = body_end + 1;
            } else {
                i = j + 1;
            }
        } else if t.is_ident("mod")
            && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Ident)
            && matches!(toks.get(i + 2), Some(b) if b.is_punct('{'))
        {
            let body_end = matching_brace(toks, i + 2, end);
            scan(sf, i + 3, body_end, None, out);
            i = body_end + 1;
        } else if t.is_ident("fn") && matches!(toks.get(i + 1), Some(n) if n.kind == TokKind::Ident)
        {
            let name = toks[i + 1].text.clone();
            // body = first `{` outside parens/brackets; `;` first ⇒ bodiless
            let mut j = i + 2;
            let (mut paren, mut bracket) = (0i32, 0i32);
            let mut body: Option<usize> = None;
            while j < end {
                let tj = &toks[j];
                if tj.is_punct('(') {
                    paren += 1;
                } else if tj.is_punct(')') {
                    paren -= 1;
                } else if tj.is_punct('[') {
                    bracket += 1;
                } else if tj.is_punct(']') {
                    bracket -= 1;
                } else if paren == 0 && bracket == 0 {
                    if tj.is_punct('{') {
                        body = Some(j);
                        break;
                    }
                    if tj.is_punct(';') {
                        break;
                    }
                }
                j += 1;
            }
            match body {
                Some(b) => {
                    let body_end = matching_brace(toks, b, end);
                    let qual = match impl_ty {
                        Some(ty) => format!("{ty}::{name}"),
                        None => name.clone(),
                    };
                    out.push(FnSpan {
                        qual,
                        name,
                        body_start: b + 1,
                        body_end,
                        sig_start: i,
                        line: t.line,
                        in_test: sf.in_test(i),
                    });
                    i = body_end + 1;
                }
                None => i = j + 1,
            }
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CrateKind;

    fn spans(src: &str) -> Vec<FnSpan> {
        functions(&SourceFile::parse("t.rs", CrateKind::Library, src))
    }

    #[test]
    fn methods_get_qualified_names() {
        let fns = spans("impl Widget { fn poke(&self) {} }\nfn free() {}");
        let quals: Vec<&str> = fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Widget::poke", "free"]);
    }

    #[test]
    fn test_functions_are_marked() {
        let fns = spans("fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }");
        assert_eq!(fns.len(), 2);
        assert!(!fns[0].in_test);
        assert!(fns[1].in_test);
    }

    #[test]
    fn body_excludes_braces() {
        let fns = spans("fn f() { a(); }");
        let f = &fns[0];
        assert!(f.body_start < f.body_end);
    }
}
