//! F1 bench: the placement scheduler's decision+execution path across
//! latency regimes.

use coda_cluster::{AnalyticsTask, ComputeNode, Scheduler, SimNetwork};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_placement(c: &mut Criterion) {
    let client = ComputeNode::client("edge", 1.0);
    let cloud = ComputeNode::cloud("dc", 4.0, 16);
    let task = AnalyticsTask { n_subtasks: 36, work_per_subtask: 100.0, input_bytes: 2_000_000 };
    let mut group = c.benchmark_group("placement/decide_and_execute");
    for latency in [1.0f64, 100.0, 10_000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{latency}ms")),
            &latency,
            |b, &lat| {
                b.iter(|| {
                    let mut net = SimNetwork::new(lat, 2_000.0);
                    let d = Scheduler::place(&task, &client, &cloud, &net);
                    Scheduler::execute(&d, &task, &client, &cloud, &mut net)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
