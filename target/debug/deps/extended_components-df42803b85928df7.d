/root/repo/target/debug/deps/extended_components-df42803b85928df7.d: tests/extended_components.rs Cargo.toml

/root/repo/target/debug/deps/libextended_components-df42803b85928df7.rmeta: tests/extended_components.rs Cargo.toml

tests/extended_components.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
