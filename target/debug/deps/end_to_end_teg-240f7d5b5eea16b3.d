/root/repo/target/debug/deps/end_to_end_teg-240f7d5b5eea16b3.d: tests/end_to_end_teg.rs

/root/repo/target/debug/deps/end_to_end_teg-240f7d5b5eea16b3: tests/end_to_end_teg.rs

tests/end_to_end_teg.rs:
