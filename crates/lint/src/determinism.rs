//! Determinism lint: wall-clock and ambient-randomness calls are forbidden
//! outside the `coda-obs` `Clock` implementations and bench binaries, so
//! every time/randomness source in library code flows through the pluggable
//! deterministic clock and seeded RNGs (DESIGN.md §10). Violations of this
//! rule are never baselined — same-seed runs must replay byte-identically,
//! which is the repo invariant the DARR interchangeability argument
//! (paper §III) rests on.

use crate::source::{CrateKind, SourceFile};
use crate::{Finding, Rule};

/// Files where wall-clock reads are the point, not a leak.
const ALLOWED_FILES: &[&str] = &["crates/obs/src/clock.rs"];

/// Scans one file for wall-clock / ambient-randomness calls.
pub fn check(sf: &SourceFile) -> Vec<Finding> {
    if sf.kind == CrateKind::Binary || ALLOWED_FILES.contains(&sf.rel.as_str()) {
        return Vec::new();
    }
    let toks = &sf.tokens;
    let mut out = Vec::new();
    let mut report = |i: usize, what: &str| {
        out.push(Finding {
            rule: Rule::Determinism,
            file: sf.rel.clone(),
            line: toks[i].line,
            message: format!(
                "{what} outside coda-obs Clock impls — thread time/randomness \
                 through `coda_obs::Clock` / a seeded RNG"
            ),
        });
    };
    for i in 0..toks.len() {
        if sf.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if !matches!(t.kind, crate::lexer::TokKind::Ident) {
            continue;
        }
        let path_call = |name: &str| {
            t.is_ident(name)
                && matches!(toks.get(i + 1), Some(c) if c.is_punct(':'))
                && matches!(toks.get(i + 2), Some(c) if c.is_punct(':'))
                && matches!(toks.get(i + 3), Some(n) if n.is_ident("now"))
        };
        if path_call("Instant") {
            report(i, "`Instant::now()`");
        } else if path_call("SystemTime") {
            report(i, "`SystemTime::now()`");
        } else if t.is_ident("thread_rng") {
            report(i, "`thread_rng()` (ambient, unseeded RNG)");
        } else if t.is_ident("random")
            && matches!(toks.get(i.wrapping_sub(1)), Some(c) if c.is_punct(':'))
            && matches!(toks.get(i.wrapping_sub(2)), Some(c) if c.is_punct(':'))
            && matches!(toks.get(i.wrapping_sub(3)), Some(r) if r.is_ident("rand"))
        {
            report(i, "`rand::random()` (ambient, unseeded RNG)");
        } else if t.is_ident("elapsed")
            && matches!(toks.get(i.wrapping_sub(1)), Some(d) if d.is_punct('.'))
            && matches!(toks.get(i + 1), Some(o) if o.is_punct('('))
            && matches!(toks.get(i + 2), Some(c) if c.is_punct(')'))
        {
            report(i, "wall-clock `.elapsed()`");
        }
    }
    out
}
