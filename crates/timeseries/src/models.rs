//! Statistical forecasting models (§IV-C1): the Zero (persistence) baseline,
//! an autoregressive model with optional differencing (the ARIMA family
//! member the paper names), and a seasonal-naive reference.
//!
//! All consume the lag-column datasets produced by the `TsAsIs`
//! preprocessor: `p` lag columns of the target variable, label = the next
//! value.

use coda_data::{BoxedEstimator, ComponentError, Dataset, Estimator, ParamValue, TaskKind};
use coda_linalg::decomp::lstsq;
use coda_linalg::Matrix;

/// The Zero model: outputs the previous timestamp's ground truth as the next
/// timestamp's prediction — the paper's baseline for every forecasting task.
#[derive(Debug, Clone, Default)]
pub struct ZeroModel {
    fitted: bool,
}

impl ZeroModel {
    /// Creates the persistence baseline.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Estimator for ZeroModel {
    fn name(&self) -> &str {
        "zero_model"
    }

    fn task(&self) -> TaskKind {
        TaskKind::Forecasting
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        if data.n_features() == 0 {
            return Err(ComponentError::InvalidInput(
                "zero model needs at least one lag column".to_string(),
            ));
        }
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        if !self.fitted {
            return Err(ComponentError::NotFitted(self.name().to_string()));
        }
        // last column = the most recent observation
        let last = data.n_features() - 1;
        Ok(data.features().col(last))
    }

    fn clone_box(&self) -> BoxedEstimator {
        Box::new(ZeroModel::new())
    }
}

/// Autoregressive forecaster with optional differencing — AR(p) on levels
/// (`d = 0`) or on first differences (`d = 1`, i.e. ARI(p,1)). Coefficients
/// are fitted by least squares on the lag columns.
#[derive(Debug, Clone)]
pub struct ArForecaster {
    d: usize,
    coef: Option<Vec<f64>>, // [intercept, w_1..w_k] over (possibly differenced) lags
}

impl ArForecaster {
    /// AR on levels.
    pub fn new() -> Self {
        ArForecaster { d: 0, coef: None }
    }

    /// AR on first differences (handles trends/random walks gracefully).
    pub fn differenced() -> Self {
        ArForecaster { d: 1, coef: None }
    }

    /// Fitted coefficients `[intercept, w…]`, if fitted.
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.coef.as_deref()
    }

    /// Rewrites lag rows into the regression design: levels (d=0) or
    /// differences (d=1, one fewer column).
    fn design(&self, x: &Matrix) -> Result<Matrix, ComponentError> {
        let p = x.cols();
        match self.d {
            0 => {
                let mut out = Matrix::zeros(x.rows(), p + 1);
                for r in 0..x.rows() {
                    out[(r, 0)] = 1.0;
                    out.row_mut(r)[1..].copy_from_slice(x.row(r));
                }
                Ok(out)
            }
            1 => {
                if p < 2 {
                    return Err(ComponentError::InvalidInput(
                        "differenced AR needs at least 2 lag columns".to_string(),
                    ));
                }
                let mut out = Matrix::zeros(x.rows(), p);
                for r in 0..x.rows() {
                    out[(r, 0)] = 1.0;
                    for c in 1..p {
                        out[(r, c)] = x[(r, c)] - x[(r, c - 1)];
                    }
                }
                Ok(out)
            }
            _ => Err(ComponentError::InvalidInput("only d in {0, 1} supported".to_string())),
        }
    }
}

impl Default for ArForecaster {
    fn default() -> Self {
        Self::new()
    }
}

impl Estimator for ArForecaster {
    fn name(&self) -> &str {
        if self.d == 0 {
            "ar_forecaster"
        } else {
            "ari_forecaster"
        }
    }

    fn task(&self) -> TaskKind {
        TaskKind::Forecasting
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "d" => {
                self.d = value.as_usize().filter(|&d| d <= 1).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: "ar_forecaster".to_string(),
                        param: param.to_string(),
                        reason: "must be 0 or 1".to_string(),
                    }
                })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        let y = data.target_required()?;
        let design = self.design(data.features())?;
        if design.rows() < design.cols() {
            return Err(ComponentError::InvalidInput(format!(
                "need at least {} windows for {} AR terms",
                design.cols(),
                design.cols() - 1
            )));
        }
        // for d=1 regress the *change* from the last observation
        let target: Vec<f64> = if self.d == 0 {
            y.to_vec()
        } else {
            let last = data.n_features() - 1;
            y.iter().enumerate().map(|(r, v)| v - data.features()[(r, last)]).collect()
        };
        // Ridge-stabilized normal equations: lag columns are frequently
        // collinear (e.g. constant differences on a pure trend), which a
        // plain QR solve rejects as singular.
        let coef = lstsq(&design, &target).or_else(|_| {
            let mut gram = design.gram();
            let scale = gram.as_slice().iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
            for i in 0..gram.rows() {
                gram[(i, i)] += 1e-8 * scale;
            }
            let xty = design.transpose().matvec(&target).expect("shapes match by construction");
            coda_linalg::decomp::cholesky_solve(&gram, &xty)
        });
        let coef = coef.map_err(|e| ComponentError::Numerical(format!("AR fit failed: {e}")))?;
        self.coef = Some(coef);
        Ok(())
    }

    fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        let coef =
            self.coef.as_ref().ok_or_else(|| ComponentError::NotFitted(self.name().to_string()))?;
        let design = self.design(data.features())?;
        if design.cols() != coef.len() {
            return Err(ComponentError::InvalidInput(format!(
                "model fitted on {} design columns, input yields {}",
                coef.len(),
                design.cols()
            )));
        }
        let base = design.matvec(coef).map_err(|e| ComponentError::Numerical(e.to_string()))?;
        Ok(if self.d == 0 {
            base
        } else {
            let last = data.n_features() - 1;
            base.into_iter()
                .enumerate()
                .map(|(r, delta)| data.features()[(r, last)] + delta)
                .collect()
        })
    }

    fn clone_box(&self) -> BoxedEstimator {
        Box::new(ArForecaster { d: self.d, coef: None })
    }
}

/// Seasonal-naive model: predicts the value one season back
/// (`lag = period`), a stronger baseline than persistence on periodic data.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    period: usize,
    fitted: bool,
}

impl SeasonalNaive {
    /// Creates the model with the given seasonal period.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: usize) -> Self {
        assert!(period > 0, "period must be positive");
        SeasonalNaive { period, fitted: false }
    }
}

impl Estimator for SeasonalNaive {
    fn name(&self) -> &str {
        "seasonal_naive"
    }

    fn task(&self) -> TaskKind {
        TaskKind::Forecasting
    }

    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        match param {
            "period" => {
                self.period = value.as_usize().filter(|&p| p > 0).ok_or_else(|| {
                    ComponentError::InvalidParam {
                        component: "seasonal_naive".to_string(),
                        param: param.to_string(),
                        reason: "must be a positive integer".to_string(),
                    }
                })?;
                Ok(())
            }
            _ => Err(ComponentError::UnknownParam {
                component: self.name().to_string(),
                param: param.to_string(),
            }),
        }
    }

    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError> {
        if data.n_features() < self.period {
            return Err(ComponentError::InvalidInput(format!(
                "history window {} shorter than seasonal period {}",
                data.n_features(),
                self.period
            )));
        }
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError> {
        if !self.fitted {
            return Err(ComponentError::NotFitted(self.name().to_string()));
        }
        if data.n_features() < self.period {
            return Err(ComponentError::InvalidInput(
                "history window shorter than seasonal period".to_string(),
            ));
        }
        // the value `period` steps before the label is lag column p - period
        let col = data.n_features() - self.period;
        Ok(data.features().col(col))
    }

    fn clone_box(&self) -> BoxedEstimator {
        Box::new(SeasonalNaive::new(self.period))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesData;
    use crate::window::{TsAsIs, WindowConfig};
    use coda_data::{metrics, synth, Transformer};

    fn lagged(series: Vec<f64>, p: usize) -> Dataset {
        let ds = SeriesData::univariate(series).to_dataset();
        TsAsIs::new(WindowConfig::new(p, 1)).fit_transform(&ds).unwrap()
    }

    #[test]
    fn zero_model_is_persistence() {
        let ds = lagged((0..20).map(|i| i as f64).collect(), 4);
        let mut z = ZeroModel::new();
        z.fit(&ds).unwrap();
        let pred = z.predict(&ds).unwrap();
        // predicting "previous value" on a +1 ramp gives constant error 1
        let err = metrics::mae(ds.target().unwrap(), &pred).unwrap();
        assert!((err - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_model_optimal_on_random_walk() {
        let walk = synth::random_walk(500, 1.0, 11);
        let ds = lagged(walk, 5);
        let (train, test) = ds.chronological_split(0.3);
        let mut z = ZeroModel::new();
        z.fit(&train).unwrap();
        let zero_rmse = metrics::rmse(test.target().unwrap(), &z.predict(&test).unwrap()).unwrap();
        // the best achievable RMSE on a unit random walk is ~1 (the step std)
        assert!(zero_rmse < 1.3, "zero rmse {zero_rmse}");
    }

    #[test]
    fn ar_recovers_ar2_process() {
        let series = synth::ar2_series(800, 0.6, 0.2, 0.5, 12);
        let ds = lagged(series, 4);
        let (train, test) = ds.chronological_split(0.25);
        let mut ar = ArForecaster::new();
        ar.fit(&train).unwrap();
        let ar_rmse = metrics::rmse(test.target().unwrap(), &ar.predict(&test).unwrap()).unwrap();
        let mut z = ZeroModel::new();
        z.fit(&train).unwrap();
        let zero_rmse = metrics::rmse(test.target().unwrap(), &z.predict(&test).unwrap()).unwrap();
        assert!(
            ar_rmse < zero_rmse,
            "AR ({ar_rmse:.3}) must beat persistence ({zero_rmse:.3}) on an AR(2) process"
        );
    }

    #[test]
    fn differenced_ar_handles_trend() {
        let series: Vec<f64> = (0..300).map(|i| 0.5 * i as f64).collect();
        let ds = lagged(series, 4);
        let (train, test) = ds.chronological_split(0.3);
        let mut ari = ArForecaster::differenced();
        ari.fit(&train).unwrap();
        let rmse = metrics::rmse(test.target().unwrap(), &ari.predict(&test).unwrap()).unwrap();
        assert!(rmse < 0.01, "pure trend is perfectly predictable from diffs, rmse {rmse}");
    }

    #[test]
    fn seasonal_naive_beats_zero_on_periodic_data() {
        let series: Vec<f64> =
            (0..400).map(|i| (2.0 * std::f64::consts::PI * i as f64 / 12.0).sin() * 5.0).collect();
        let ds = lagged(series, 24);
        let (train, test) = ds.chronological_split(0.3);
        let mut sn = SeasonalNaive::new(12);
        sn.fit(&train).unwrap();
        let sn_rmse = metrics::rmse(test.target().unwrap(), &sn.predict(&test).unwrap()).unwrap();
        let mut z = ZeroModel::new();
        z.fit(&train).unwrap();
        let z_rmse = metrics::rmse(test.target().unwrap(), &z.predict(&test).unwrap()).unwrap();
        assert!(sn_rmse < z_rmse / 2.0, "seasonal {sn_rmse} vs zero {z_rmse}");
    }

    #[test]
    fn errors_and_params() {
        let ds = lagged((0..30).map(|i| i as f64).collect(), 3);
        assert!(ZeroModel::new().predict(&ds).is_err());
        assert!(ArForecaster::new().predict(&ds).is_err());
        assert!(SeasonalNaive::new(5).fit(&ds).is_err()); // period > window
        let mut ar = ArForecaster::new();
        ar.set_param("d", ParamValue::from(1usize)).unwrap();
        assert_eq!(ar.name(), "ari_forecaster");
        assert!(ar.set_param("d", ParamValue::from(2usize)).is_err());
        let mut sn = SeasonalNaive::new(2);
        sn.set_param("period", ParamValue::from(3usize)).unwrap();
        assert!(sn.set_param("period", ParamValue::from(0usize)).is_err());
    }

    #[test]
    fn tasks_are_forecasting() {
        assert_eq!(ZeroModel::new().task(), TaskKind::Forecasting);
        assert_eq!(ArForecaster::new().task(), TaskKind::Forecasting);
        assert_eq!(SeasonalNaive::new(2).task(), TaskKind::Forecasting);
    }
}
