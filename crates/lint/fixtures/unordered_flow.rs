//! Planted violation: HashMap iteration order escapes into a JSON export.
//! The key list inherits hash-iteration order and is serialized unsorted,
//! so the export bytes differ run to run.

use std::collections::HashMap;

pub fn export_counts(m: &HashMap<String, u64>) -> String {
    let names: Vec<&String> = m.keys().collect();
    to_json(&names)
}

fn to_json(_names: &[&String]) -> String {
    String::new()
}
