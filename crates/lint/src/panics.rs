//! Panic-safety lint: library crates must not contain `unwrap`/`expect`/
//! `panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test code — an
//! injected fault (coda-chaos) that reaches one turns a recoverable error
//! into a process abort. Existing sites are frozen in the ratcheting
//! baseline and burned down over time; new ones fail CI. Invariant-backed
//! sites carry a `// lint:allow(panic_safety) <reason>` escape hatch.

use crate::source::{CrateKind, SourceFile};
use crate::{Finding, Rule};

/// Scans one library-crate file for panicking calls/macros.
pub fn check(sf: &SourceFile) -> Vec<Finding> {
    if sf.kind == CrateKind::Binary {
        return Vec::new();
    }
    let toks = &sf.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if sf.in_test(i) {
            continue;
        }
        let t = &toks[i];
        let method_call = |name: &str| {
            t.is_ident(name)
                && matches!(toks.get(i.wrapping_sub(1)), Some(d) if d.is_punct('.'))
                && matches!(toks.get(i + 1), Some(o) if o.is_punct('('))
        };
        let bang_macro =
            |name: &str| t.is_ident(name) && matches!(toks.get(i + 1), Some(b) if b.is_punct('!'));
        let what = if method_call("unwrap") {
            Some("`.unwrap()`")
        } else if method_call("expect") {
            Some("`.expect()`")
        } else if bang_macro("panic") {
            Some("`panic!`")
        } else if bang_macro("unreachable") {
            Some("`unreachable!`")
        } else if bang_macro("todo") {
            Some("`todo!`")
        } else if bang_macro("unimplemented") {
            Some("`unimplemented!`")
        } else {
            None
        };
        if let Some(what) = what {
            out.push(Finding {
                rule: Rule::PanicSafety,
                file: sf.rel.clone(),
                line: t.line,
                message: format!(
                    "{what} in library code — return a typed error, or justify with \
                     `// lint:allow(panic_safety) <reason>`"
                ),
            });
        }
    }
    out
}
