//! The home data store (paper §III): holds the current version of each
//! object, keeps recent versions plus precomputed deltas
//! `d(o, k−1, k), d(o, k−2, k), …`, and answers version-aware fetches with
//! either the full object or a delta — whichever is cheaper on the wire.

use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

use coda_obs::{Obs, SpanContext};

use crate::delta::{content_hash, Delta, DeltaCodec};
use crate::lease::{Lease, PushMode, UpdateMessage};

/// How far below the full size a delta must be to be preferred
/// ("considerably smaller" in the paper): delta must be < 1/2 of full.
const DELTA_ADVANTAGE: f64 = 0.5;

/// Cumulative transfer accounting for the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Full-object transfers.
    pub full_transfers: u64,
    /// Delta transfers.
    pub delta_transfers: u64,
    /// Notification-only messages.
    pub notifications: u64,
}

impl TransferStats {
    fn record_full(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        self.full_transfers += 1;
    }

    fn record_delta(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
        self.delta_transfers += 1;
    }

    fn record_notification(&mut self) {
        self.messages += 1;
        self.bytes += 32; // version number + change summary
        self.notifications += 1;
    }
}

impl coda_obs::Publish for TransferStats {
    fn publish(&self, registry: &coda_obs::MetricsRegistry) {
        registry.count("coda_store_transfer_messages", self.messages);
        registry.count("coda_store_transfer_bytes", self.bytes);
        registry.count("coda_store_full_transfers", self.full_transfers);
        registry.count("coda_store_delta_transfers", self.delta_transfers);
        registry.count("coda_store_notifications", self.notifications);
    }
}

/// Reply to a version-aware fetch.
#[derive(Debug, Clone)]
pub enum FetchReply {
    /// The full current version.
    Full {
        /// Current version number.
        version: u64,
        /// Object bytes.
        data: Bytes,
    },
    /// A delta from the client's version to the current one.
    Delta(Delta),
    /// The client is already current.
    UpToDate {
        /// Current version number.
        version: u64,
    },
}

impl FetchReply {
    /// Bytes this reply occupies on the wire.
    pub fn wire_size(&self) -> usize {
        match self {
            FetchReply::Full { data, .. } => data.len() + 16,
            FetchReply::Delta(d) => d.wire_size(),
            FetchReply::UpToDate { .. } => 16,
        }
    }

    /// The version the reply brings the client to.
    pub fn version(&self) -> u64 {
        match self {
            FetchReply::Full { version, .. } => *version,
            FetchReply::Delta(d) => d.target_version,
            FetchReply::UpToDate { version } => *version,
        }
    }
}

/// One stored object: current version plus a bounded history of recent
/// versions with precomputed deltas to the current version.
#[derive(Debug, Clone)]
struct StoredObject {
    version: u64,
    data: Bytes,
    /// (version, full bytes) most-recent-last; bounded by `history_depth`.
    history: VecDeque<(u64, Bytes)>,
    /// Precomputed d(o, v, current) keyed by base version v.
    deltas: BTreeMap<u64, Delta>,
}

/// An in-process home data store with lease-based push and accounting.
#[derive(Debug, Clone)]
pub struct HomeDataStore {
    name: String,
    history_depth: usize,
    objects: BTreeMap<String, StoredObject>,
    leases: Vec<Lease>,
    stats: TransferStats,
    clock: u64,
    obs: Option<Obs>,
}

impl HomeDataStore {
    /// Creates a store keeping `history_depth` recent versions per object.
    pub fn new<S: Into<String>>(name: S, history_depth: usize) -> Self {
        HomeDataStore {
            name: name.into(),
            history_depth: history_depth.max(1),
            objects: BTreeMap::new(),
            leases: Vec::new(),
            stats: TransferStats::default(),
            clock: 0,
            obs: None,
        }
    }

    /// Attaches an observability handle: subsequent `put`/`fetch` calls
    /// count live into its registry under `coda_store_*` names.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// Increments a counter when an [`Obs`] handle is attached.
    fn obs_count(&self, name: &str, n: u64) {
        if let Some(o) = &self.obs {
            o.count(name, n);
        }
    }

    /// The store's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cumulative transfer statistics.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    /// Resets transfer statistics (between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = TransferStats::default();
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the logical clock, expiring leases.
    pub fn advance_clock(&mut self, ticks: u64) {
        self.clock += ticks;
        let now = self.clock;
        self.leases.retain(|l| l.expires_at > now);
    }

    /// Current version of an object, if stored.
    pub fn version_of(&self, id: &str) -> Option<u64> {
        self.objects.get(id).map(|o| o.version)
    }

    /// Stores a new version of `id` (creating it at version 1), precomputes
    /// deltas from retained history, and pushes to subscribed clients.
    /// Returns the new version number and any push messages to deliver.
    pub fn put<S: AsRef<str>>(&mut self, id: S, data: Bytes) -> (u64, Vec<UpdateMessage>) {
        self.put_in(id, data, None)
    }

    /// [`HomeDataStore::put`] inside a causal trace: opens a `store.put`
    /// span (child of `parent` when carried in, else of the caller's
    /// current span) and stamps every push message with the span's
    /// [`SpanContext`], so receiving clients link their apply work back to
    /// this update. Uninstrumented stores pass `parent` through unchanged.
    pub fn put_in<S: AsRef<str>>(
        &mut self,
        id: S,
        data: Bytes,
        parent: Option<SpanContext>,
    ) -> (u64, Vec<UpdateMessage>) {
        let id = id.as_ref();
        let obs = self.obs.clone();
        let span = obs.as_ref().map(|o| {
            o.tracer().span_with_parent(
                parent,
                "store.put",
                &[("object", id), ("store", &self.name)],
            )
        });
        let push_ctx = span.as_ref().map(|s| s.context()).or(parent);
        let entry = self.objects.entry(id.to_string()).or_insert_with(|| StoredObject {
            version: 0,
            data: Bytes::new(),
            history: VecDeque::new(),
            deltas: BTreeMap::new(),
        });
        if entry.version > 0 {
            entry.history.push_back((entry.version, entry.data.clone()));
            while entry.history.len() > self.history_depth {
                entry.history.pop_front();
            }
        }
        entry.version += 1;
        entry.data = data;
        // precompute d(o, v, current) for every retained version
        entry.deltas.clear();
        let (cur_version, cur_data) = (entry.version, entry.data.clone());
        for (v, old) in &entry.history {
            entry.deltas.insert(*v, DeltaCodec::encode(old, &cur_data, *v, cur_version));
        }
        // push deltas always step from the immediately preceding version
        let prev_delta = entry.deltas.get(&(cur_version - 1)).cloned();
        // push to lease holders
        let mut messages = Vec::new();
        let now = self.clock;
        for lease in self.leases.iter().filter(|l| l.object == id && l.expires_at > now) {
            let msg = match lease.mode {
                PushMode::Full => {
                    self.stats.record_full(cur_data.len());
                    UpdateMessage::Full {
                        client: lease.client.clone(),
                        object: id.to_string(),
                        version: cur_version,
                        data: cur_data.clone(),
                        checksum: content_hash(&cur_data),
                        ctx: push_ctx,
                    }
                }
                PushMode::Delta => match prev_delta.as_ref() {
                    Some(d) if (d.wire_size() as f64) < DELTA_ADVANTAGE * cur_data.len() as f64 => {
                        self.stats.record_delta(d.wire_size());
                        UpdateMessage::Delta {
                            client: lease.client.clone(),
                            object: id.to_string(),
                            delta: d.clone(),
                            ctx: push_ctx,
                        }
                    }
                    _ => {
                        self.stats.record_full(cur_data.len());
                        UpdateMessage::Full {
                            client: lease.client.clone(),
                            object: id.to_string(),
                            version: cur_version,
                            data: cur_data.clone(),
                            checksum: content_hash(&cur_data),
                            ctx: push_ctx,
                        }
                    }
                },
                PushMode::NotifyOnly => {
                    self.stats.record_notification();
                    let changed =
                        prev_delta.as_ref().map(|d| d.literal_bytes()).unwrap_or(cur_data.len());
                    UpdateMessage::Notify {
                        client: lease.client.clone(),
                        object: id.to_string(),
                        version: cur_version,
                        changed_bytes: changed,
                        ctx: push_ctx,
                    }
                }
            };
            messages.push(msg);
        }
        self.obs_count("coda_store_puts", 1);
        self.obs_count("coda_store_push_messages", messages.len() as u64);
        for msg in &messages {
            match msg {
                UpdateMessage::Full { data, .. } => {
                    self.obs_count("coda_store_full_transfers", 1);
                    self.obs_count("coda_store_full_bytes", data.len() as u64);
                }
                UpdateMessage::Delta { delta, .. } => {
                    self.obs_count("coda_store_delta_transfers", 1);
                    self.obs_count("coda_store_delta_bytes", delta.wire_size() as u64);
                }
                UpdateMessage::Notify { .. } => {
                    self.obs_count("coda_store_notifications", 1);
                }
            }
        }
        (cur_version, messages)
    }

    /// Version-aware fetch (pull paradigm): the client passes its held
    /// version; the store replies with a delta when one exists and is
    /// considerably smaller than the full object, otherwise the full copy.
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` reserves room for storage-backend
    /// errors.
    pub fn fetch(
        &mut self,
        id: &str,
        client_version: Option<u64>,
    ) -> Result<Option<FetchReply>, std::convert::Infallible> {
        self.fetch_in(id, client_version, None)
    }

    /// [`HomeDataStore::fetch`] inside a causal trace: the pull work runs
    /// in a `store.fetch` span linked to the requesting client's carried
    /// context (pull-paradigm counterpart to [`HomeDataStore::put_in`]).
    ///
    /// # Errors
    ///
    /// Never fails today; the `Result` reserves room for storage-backend
    /// errors.
    pub fn fetch_in(
        &mut self,
        id: &str,
        client_version: Option<u64>,
        parent: Option<SpanContext>,
    ) -> Result<Option<FetchReply>, std::convert::Infallible> {
        let obs = self.obs.clone();
        let _span = obs.as_ref().map(|o| {
            o.tracer().span_with_parent(
                parent,
                "store.fetch",
                &[("object", id), ("store", &self.name)],
            )
        });
        let Some(object) = self.objects.get(id) else {
            return Ok(None);
        };
        let reply = match client_version {
            Some(v) if v == object.version => {
                self.stats.messages += 1;
                self.stats.bytes += 16;
                FetchReply::UpToDate { version: v }
            }
            Some(v) => match object.deltas.get(&v) {
                Some(d) if (d.wire_size() as f64) < DELTA_ADVANTAGE * object.data.len() as f64 => {
                    self.stats.record_delta(d.wire_size());
                    FetchReply::Delta(d.clone())
                }
                _ => {
                    self.stats.record_full(object.data.len());
                    FetchReply::Full { version: object.version, data: object.data.clone() }
                }
            },
            None => {
                self.stats.record_full(object.data.len());
                FetchReply::Full { version: object.version, data: object.data.clone() }
            }
        };
        self.obs_count("coda_store_pulls", 1);
        match &reply {
            FetchReply::Full { data, .. } => {
                self.obs_count("coda_store_full_transfers", 1);
                self.obs_count("coda_store_full_bytes", data.len() as u64);
            }
            FetchReply::Delta(d) => {
                self.obs_count("coda_store_delta_transfers", 1);
                self.obs_count("coda_store_delta_bytes", d.wire_size() as u64);
            }
            FetchReply::UpToDate { .. } => {
                self.obs_count("coda_store_pull_up_to_date", 1);
            }
        }
        Ok(Some(reply))
    }

    /// Grants (or replaces) a lease: `client` subscribes to `object` updates
    /// in `mode` until logical time `now + duration`.
    pub fn subscribe<S: Into<String>>(
        &mut self,
        client: S,
        object: S,
        mode: PushMode,
        duration: u64,
    ) -> Lease {
        let lease = Lease {
            client: client.into(),
            object: object.into(),
            mode,
            expires_at: self.clock + duration,
        };
        self.leases.retain(|l| !(l.client == lease.client && l.object == lease.object));
        self.leases.push(lease.clone());
        lease
    }

    /// Renews an existing lease to `now + duration`. Returns false if no
    /// matching lease exists (expired leases must be re-subscribed).
    pub fn renew(&mut self, client: &str, object: &str, duration: u64) -> bool {
        let now = self.clock;
        for l in &mut self.leases {
            if l.client == client && l.object == object && l.expires_at > now {
                l.expires_at = now + duration;
                return true;
            }
        }
        false
    }

    /// Installs `version` of `id` directly (replica catch-up after a
    /// failover: the recovered node fetched the current version — or a
    /// delta onto its own copy — from the acting home and jumps straight
    /// to it, preserving its local history). Returns false when the store
    /// already holds `version` or newer; versions never move backwards.
    pub fn install_version(&mut self, id: &str, version: u64, data: Bytes) -> bool {
        let entry = self.objects.entry(id.to_string()).or_insert_with(|| StoredObject {
            version: 0,
            data: Bytes::new(),
            history: VecDeque::new(),
            deltas: BTreeMap::new(),
        });
        if version <= entry.version {
            return false;
        }
        if entry.version > 0 {
            entry.history.push_back((entry.version, entry.data.clone()));
            while entry.history.len() > self.history_depth {
                entry.history.pop_front();
            }
        }
        entry.version = version;
        entry.data = data;
        entry.deltas.clear();
        let (cur_version, cur_data) = (entry.version, entry.data.clone());
        for (v, old) in &entry.history {
            entry.deltas.insert(*v, DeltaCodec::encode(old, &cur_data, *v, cur_version));
        }
        self.obs_count("coda_store_installed_versions", 1);
        true
    }

    /// A canonical, deterministic dump of the store's *durable* state —
    /// objects (with history and precomputed deltas, by content hash),
    /// leases and the logical clock. Transfer counters are volatile
    /// accounting and excluded. Two stores holding byte-identical state
    /// render byte-identical dumps, which is how crash recovery proves a
    /// WAL replay reconstructed the pre-crash store exactly.
    pub fn export_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "store name={} depth={} clock={}",
            self.name, self.history_depth, self.clock
        );
        for (id, o) in &self.objects {
            let _ = writeln!(
                out,
                "object {id} v{} len={} hash={:016x}",
                o.version,
                o.data.len(),
                content_hash(&o.data)
            );
            for (v, data) in &o.history {
                let _ = writeln!(
                    out,
                    "  history v{v} len={} hash={:016x}",
                    data.len(),
                    content_hash(data)
                );
            }
            for (base, d) in &o.deltas {
                let _ = writeln!(
                    out,
                    "  delta {base}->{} wire={} checksum={:016x}",
                    d.target_version,
                    d.wire_size(),
                    d.target_checksum
                );
            }
        }
        for l in &self.leases {
            let _ = writeln!(
                out,
                "lease client={} object={} mode={:?} expires_at={}",
                l.client, l.object, l.mode, l.expires_at
            );
        }
        out
    }

    /// Cancels a lease early (the paper: clients should cancel leases for
    /// data they no longer need). Returns true if one was removed.
    pub fn cancel(&mut self, client: &str, object: &str) -> bool {
        let before = self.leases.len();
        self.leases.retain(|l| !(l.client == client && l.object == object));
        self.leases.len() < before
    }

    /// Active (unexpired) lease count.
    pub fn active_leases(&self) -> usize {
        let now = self.clock;
        self.leases.iter().filter(|l| l.expires_at > now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DeltaCodec;

    fn big(val: u8, n: usize) -> Bytes {
        Bytes::from(vec![val; n])
    }

    fn patterned(n: usize, seed: u8) -> Bytes {
        Bytes::from(
            (0..n).map(|i| ((i as u64 * 31 + seed as u64) % 251) as u8).collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn versions_increment() {
        let mut s = HomeDataStore::new("h", 3);
        let (v1, _) = s.put("o", big(1, 100));
        let (v2, _) = s.put("o", big(2, 100));
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(s.version_of("o"), Some(2));
        assert_eq!(s.version_of("missing"), None);
    }

    #[test]
    fn fetch_full_when_no_client_version() {
        let mut s = HomeDataStore::new("h", 3);
        s.put("o", patterned(5000, 1));
        let reply = s.fetch("o", None).unwrap().unwrap();
        assert!(matches!(reply, FetchReply::Full { version: 1, .. }));
        assert_eq!(s.stats().full_transfers, 1);
    }

    #[test]
    fn fetch_delta_for_small_change() {
        let mut s = HomeDataStore::new("h", 3);
        let base = patterned(10_000, 2);
        s.put("o", base.clone());
        let mut v2 = base.to_vec();
        v2[123] ^= 0xFF;
        s.put("o", Bytes::from(v2.clone()));
        let reply = s.fetch("o", Some(1)).unwrap().unwrap();
        match &reply {
            FetchReply::Delta(d) => {
                assert_eq!(d.base_version, 1);
                assert_eq!(d.target_version, 2);
                let rebuilt = DeltaCodec::apply(&base, d).unwrap();
                assert_eq!(&rebuilt[..], &v2[..]);
            }
            other => panic!("expected delta, got {other:?}"),
        }
        assert!(reply.wire_size() < 1000);
        assert_eq!(s.stats().delta_transfers, 1);
    }

    #[test]
    fn fetch_full_when_delta_not_worth_it() {
        let mut s = HomeDataStore::new("h", 3);
        s.put("o", big(0, 5000));
        s.put("o", big(255, 5000)); // complete rewrite
        let reply = s.fetch("o", Some(1)).unwrap().unwrap();
        assert!(matches!(reply, FetchReply::Full { .. }));
    }

    #[test]
    fn fetch_up_to_date() {
        let mut s = HomeDataStore::new("h", 3);
        s.put("o", big(1, 100));
        let reply = s.fetch("o", Some(1)).unwrap().unwrap();
        assert!(matches!(reply, FetchReply::UpToDate { version: 1 }));
        assert_eq!(reply.wire_size(), 16);
    }

    #[test]
    fn history_depth_bounds_delta_availability() {
        let mut s = HomeDataStore::new("h", 2);
        let base = patterned(8000, 3);
        s.put("o", base.clone()); // v1
        for k in 0..4u8 {
            let mut next = base.to_vec();
            next[10 + k as usize] ^= 0xFF;
            s.put("o", Bytes::from(next)); // v2..v5
        }
        // v1 fell out of the 2-deep history: full transfer
        let reply = s.fetch("o", Some(1)).unwrap().unwrap();
        assert!(matches!(reply, FetchReply::Full { .. }));
        // v4 is retained: delta
        let reply = s.fetch("o", Some(4)).unwrap().unwrap();
        assert!(matches!(reply, FetchReply::Delta(_)));
    }

    #[test]
    fn missing_object_is_none() {
        let mut s = HomeDataStore::new("h", 2);
        assert!(s.fetch("nope", None).unwrap().is_none());
    }

    #[test]
    fn push_modes_produce_expected_messages() {
        let mut s = HomeDataStore::new("h", 3);
        let base = patterned(10_000, 4);
        s.put("o", base.clone());
        s.subscribe("full_client", "o", PushMode::Full, 100);
        s.subscribe("delta_client", "o", PushMode::Delta, 100);
        s.subscribe("notify_client", "o", PushMode::NotifyOnly, 100);
        let mut v2 = base.to_vec();
        v2[5] ^= 1;
        let (_, messages) = s.put("o", Bytes::from(v2));
        assert_eq!(messages.len(), 3);
        let mut kinds: Vec<&str> = messages
            .iter()
            .map(|m| match m {
                UpdateMessage::Full { .. } => "full",
                UpdateMessage::Delta { .. } => "delta",
                UpdateMessage::Notify { .. } => "notify",
            })
            .collect();
        kinds.sort();
        assert_eq!(kinds, vec!["delta", "full", "notify"]);
        // notify message reports a small change
        for m in &messages {
            if let UpdateMessage::Notify { changed_bytes, version, .. } = m {
                assert_eq!(*version, 2);
                assert!(*changed_bytes < 100);
            }
        }
    }

    #[test]
    fn lease_expiry_stops_pushes() {
        let mut s = HomeDataStore::new("h", 3);
        s.put("o", big(1, 100));
        s.subscribe("c", "o", PushMode::Full, 10);
        s.advance_clock(11);
        let (_, messages) = s.put("o", big(2, 100));
        assert!(messages.is_empty());
        assert_eq!(s.active_leases(), 0);
    }

    #[test]
    fn lease_renewal_extends() {
        let mut s = HomeDataStore::new("h", 3);
        s.put("o", big(1, 100));
        s.subscribe("c", "o", PushMode::Full, 10);
        s.advance_clock(5);
        assert!(s.renew("c", "o", 20));
        s.advance_clock(15); // now 20 < 25
        let (_, messages) = s.put("o", big(2, 100));
        assert_eq!(messages.len(), 1);
        // renewing an expired lease fails
        s.advance_clock(100);
        assert!(!s.renew("c", "o", 10));
    }

    #[test]
    fn early_cancel_removes_lease() {
        let mut s = HomeDataStore::new("h", 3);
        s.put("o", big(1, 100));
        s.subscribe("c", "o", PushMode::Full, 100);
        assert!(s.cancel("c", "o"));
        assert!(!s.cancel("c", "o"));
        let (_, messages) = s.put("o", big(2, 100));
        assert!(messages.is_empty());
    }

    #[test]
    fn resubscribe_replaces_lease() {
        let mut s = HomeDataStore::new("h", 3);
        s.put("o", big(1, 200));
        s.subscribe("c", "o", PushMode::Full, 100);
        s.subscribe("c", "o", PushMode::NotifyOnly, 100);
        let (_, messages) = s.put("o", big(2, 200));
        assert_eq!(messages.len(), 1);
        assert!(matches!(messages[0], UpdateMessage::Notify { .. }));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut s = HomeDataStore::new("h", 3);
        s.put("o", patterned(5000, 5));
        s.fetch("o", None).unwrap();
        s.fetch("o", None).unwrap();
        let stats = s.stats();
        assert_eq!(stats.messages, 2);
        assert!(stats.bytes >= 10_000);
        s.reset_stats();
        assert_eq!(s.stats(), TransferStats::default());
    }
}
