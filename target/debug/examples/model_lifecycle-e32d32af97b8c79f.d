/root/repo/target/debug/examples/model_lifecycle-e32d32af97b8c79f.d: examples/model_lifecycle.rs

/root/repo/target/debug/examples/model_lifecycle-e32d32af97b8c79f: examples/model_lifecycle.rs

examples/model_lifecycle.rs:
