/root/repo/target/debug/examples/selective_search-45e580c5b0e3f40f.d: examples/selective_search.rs

/root/repo/target/debug/examples/selective_search-45e580c5b0e3f40f: examples/selective_search.rs

examples/selective_search.rs:
