/root/repo/target/debug/deps/extended_components-08602e20dc16272a.d: tests/extended_components.rs

/root/repo/target/debug/deps/extended_components-08602e20dc16272a: tests/extended_components.rs

tests/extended_components.rs:
