/root/repo/target/debug/deps/coda_templates-dee1ec5018a10c36.d: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_templates-dee1ec5018a10c36.rmeta: crates/templates/src/lib.rs crates/templates/src/anomaly.rs crates/templates/src/cohort.rs crates/templates/src/failure.rs crates/templates/src/lifetime.rs crates/templates/src/rca.rs Cargo.toml

crates/templates/src/lib.rs:
crates/templates/src/anomaly.rs:
crates/templates/src/cohort.rs:
crates/templates/src/failure.rs:
crates/templates/src/lifetime.rs:
crates/templates/src/rca.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
