//! Geographic replication (paper §III: "The data may be replicated across
//! multiple geographic areas for high availability and disaster recovery in
//! case one site fails").
//!
//! A [`ReplicatedStore`] keeps a primary [`HomeDataStore`] plus replicas.
//! Writes go to the primary and propagate synchronously (delta-encoded via
//! each replica's own `put`); reads are served by the first *available*
//! site, so a primary failure degrades to replica reads and a later
//! failover promotes a replica to primary without losing committed
//! versions.

use bytes::Bytes;
use coda_chaos::{RetryPolicy, RetryStats};
use coda_obs::{Obs, SpanContext};

use crate::home::{FetchReply, HomeDataStore};

/// Error produced by replicated operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationError {
    /// Every site is down.
    AllSitesDown,
    /// The named site does not exist.
    UnknownSite(String),
}

impl std::fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicationError::AllSitesDown => write!(f, "all replica sites are down"),
            ReplicationError::UnknownSite(s) => write!(f, "unknown site {s}"),
        }
    }
}

impl std::error::Error for ReplicationError {}

/// One replica site: a store plus an up/down flag (failure injection).
#[derive(Debug, Clone)]
struct Site {
    store: HomeDataStore,
    up: bool,
}

/// A primary plus replicas with synchronous propagation and failover.
#[derive(Debug, Clone)]
pub struct ReplicatedStore {
    sites: Vec<Site>,
    /// Index of the current primary within `sites`.
    primary: usize,
    obs: Option<Obs>,
}

impl ReplicatedStore {
    /// Creates a replicated store with `n_replicas` secondaries, each site
    /// keeping `history_depth` versions.
    pub fn new(n_replicas: usize, history_depth: usize) -> Self {
        let sites = (0..=n_replicas)
            .map(|i| Site {
                store: HomeDataStore::new(format!("site-{i}"), history_depth),
                up: true,
            })
            .collect();
        ReplicatedStore { sites, primary: 0, obs: None }
    }

    /// Attaches an observability handle: failovers and replication retries
    /// count live into its registry under `coda_store_*` names. Every
    /// site's store is instrumented, so replica propagation shows up as
    /// store traffic (each synchronous replica write is a real transfer).
    pub fn attach_obs(&mut self, obs: Obs) {
        for site in &mut self.sites {
            site.store.attach_obs(obs.clone());
        }
        self.obs = Some(obs);
    }

    fn obs_count(&self, name: &str, n: u64) {
        if let Some(o) = &self.obs {
            o.count(name, n);
        }
    }

    /// The current primary's name.
    pub fn primary_name(&self) -> &str {
        self.sites[self.primary].store.name()
    }

    /// Number of sites (primary + replicas).
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of currently reachable sites.
    pub fn n_available(&self) -> usize {
        self.sites.iter().filter(|s| s.up).count()
    }

    /// Takes a site down (disaster injection).
    ///
    /// # Errors
    ///
    /// [`ReplicationError::UnknownSite`] for a bad name.
    pub fn fail_site(&mut self, name: &str) -> Result<(), ReplicationError> {
        let site = self
            .sites
            .iter_mut()
            .find(|s| s.store.name() == name)
            .ok_or_else(|| ReplicationError::UnknownSite(name.to_string()))?;
        site.up = false;
        Ok(())
    }

    /// Brings a failed site back. Recovered sites catch up lazily on the
    /// next write (full resync per object).
    ///
    /// # Errors
    ///
    /// [`ReplicationError::UnknownSite`] for a bad name.
    pub fn recover_site(&mut self, name: &str) -> Result<(), ReplicationError> {
        let site = self
            .sites
            .iter_mut()
            .find(|s| s.store.name() == name)
            .ok_or_else(|| ReplicationError::UnknownSite(name.to_string()))?;
        site.up = true;
        Ok(())
    }

    /// Promotes the first available site to primary if the current primary
    /// is down. Returns true when a failover happened.
    pub fn failover_if_needed(&mut self) -> Result<bool, ReplicationError> {
        if self.sites[self.primary].up {
            return Ok(false);
        }
        match self.sites.iter().position(|s| s.up) {
            Some(next) => {
                self.primary = next;
                self.obs_count("coda_store_failovers", 1);
                Ok(true)
            }
            None => Err(ReplicationError::AllSitesDown),
        }
    }

    /// Writes a new version through the primary (failing over first if
    /// needed) and synchronously propagates to every available replica.
    /// Returns the committed version number.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::AllSitesDown`] when no site can accept the write.
    pub fn put(&mut self, id: &str, data: Bytes) -> Result<u64, ReplicationError> {
        self.put_in(id, data, None)
    }

    /// [`ReplicatedStore::put`] inside a causal trace: the whole write runs
    /// in a `store.replicate_put` span (child of `parent` when carried in)
    /// whose context propagates into the primary's and every replica's
    /// `put_in`, so each synchronous replica write appears as a child span
    /// of the replicated operation.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::AllSitesDown`] when no site can accept the write.
    pub fn put_in(
        &mut self,
        id: &str,
        data: Bytes,
        parent: Option<SpanContext>,
    ) -> Result<u64, ReplicationError> {
        let obs = self.obs.clone();
        let span = obs
            .as_ref()
            .map(|o| o.tracer().span_with_parent(parent, "store.replicate_put", &[("object", id)]));
        let ctx = span.as_ref().map(|s| s.context()).or(parent);
        self.failover_if_needed()?;
        let (version, _) = self.sites[self.primary].store.put_in(id, data.clone(), ctx);
        let primary = self.primary;
        for (i, site) in self.sites.iter_mut().enumerate() {
            if i != primary && site.up {
                // replicas may be behind after recovery: re-put until their
                // version catches the primary's
                loop {
                    let (v, _) = site.store.put_in(id, data.clone(), ctx);
                    if v >= version {
                        break;
                    }
                }
            }
        }
        Ok(version)
    }

    /// Version-aware read served by the primary, or by the first available
    /// replica when the primary is down (degraded read — no failover).
    ///
    /// # Errors
    ///
    /// [`ReplicationError::AllSitesDown`] when nothing is reachable.
    pub fn fetch(
        &mut self,
        id: &str,
        client_version: Option<u64>,
    ) -> Result<Option<FetchReply>, ReplicationError> {
        self.fetch_in(id, client_version, None)
    }

    /// [`ReplicatedStore::fetch`] inside a causal trace: the read (wherever
    /// it lands) runs in a `store.replicate_fetch` span and propagates its
    /// context into the serving site's `fetch_in`.
    ///
    /// # Errors
    ///
    /// [`ReplicationError::AllSitesDown`] when nothing is reachable.
    pub fn fetch_in(
        &mut self,
        id: &str,
        client_version: Option<u64>,
        parent: Option<SpanContext>,
    ) -> Result<Option<FetchReply>, ReplicationError> {
        let obs = self.obs.clone();
        let span = obs.as_ref().map(|o| {
            o.tracer().span_with_parent(parent, "store.replicate_fetch", &[("object", id)])
        });
        let ctx = span.as_ref().map(|s| s.context()).or(parent);
        let order: Vec<usize> = std::iter::once(self.primary)
            .chain((0..self.sites.len()).filter(|&i| i != self.primary))
            .collect();
        for i in order {
            if self.sites[i].up {
                let Ok(reply) = self.sites[i].store.fetch_in(id, client_version, ctx);
                return Ok(reply);
            }
        }
        Err(ReplicationError::AllSitesDown)
    }

    /// Writes under a retry policy: [`ReplicationError::AllSitesDown`] is
    /// treated as transient (a disaster window that may heal), so between
    /// attempts `repair` is called with the store and the 1-based attempt
    /// number — recovery hooks (site restarts driven by a fault schedule)
    /// run there. Returns the final result plus retry accounting.
    pub fn put_with_retry(
        &mut self,
        id: &str,
        data: Bytes,
        policy: &RetryPolicy,
        mut repair: impl FnMut(&mut Self, u32),
    ) -> (Result<u64, ReplicationError>, RetryStats) {
        let mut state = policy.state();
        loop {
            let attempt = state.begin_attempt();
            match self.put(id, data.clone()) {
                Ok(v) => return (Ok(v), state.finish(true)),
                Err(ReplicationError::AllSitesDown) => match state.next_backoff_ms() {
                    Some(_) => {
                        self.obs_count("coda_store_replication_retries", 1);
                        repair(self, attempt);
                    }
                    None => return (Err(ReplicationError::AllSitesDown), state.finish(false)),
                },
                Err(e) => return (Err(e), state.finish(false)),
            }
        }
    }

    /// Read-side twin of [`ReplicatedStore::put_with_retry`].
    pub fn fetch_with_retry(
        &mut self,
        id: &str,
        client_version: Option<u64>,
        policy: &RetryPolicy,
        mut repair: impl FnMut(&mut Self, u32),
    ) -> (Result<Option<FetchReply>, ReplicationError>, RetryStats) {
        let mut state = policy.state();
        loop {
            let attempt = state.begin_attempt();
            match self.fetch(id, client_version) {
                Ok(reply) => return (Ok(reply), state.finish(true)),
                Err(ReplicationError::AllSitesDown) => match state.next_backoff_ms() {
                    Some(_) => {
                        self.obs_count("coda_store_replication_retries", 1);
                        repair(self, attempt);
                    }
                    None => return (Err(ReplicationError::AllSitesDown), state.finish(false)),
                },
                Err(e) => return (Err(e), state.finish(false)),
            }
        }
    }

    /// The committed version visible at each available site (diagnostics).
    pub fn site_versions(&self, id: &str) -> Vec<(String, Option<u64>)> {
        self.sites
            .iter()
            .filter(|s| s.up)
            .map(|s| (s.store.name().to_string(), s.store.version_of(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(v: u8, n: usize) -> Bytes {
        Bytes::from(vec![v; n])
    }

    #[test]
    fn writes_propagate_to_all_replicas() {
        let mut rs = ReplicatedStore::new(2, 4);
        rs.put("o", blob(1, 100)).unwrap();
        rs.put("o", blob(2, 100)).unwrap();
        for (_, v) in rs.site_versions("o") {
            assert_eq!(v, Some(2));
        }
    }

    #[test]
    fn replica_serves_reads_when_primary_down() {
        let mut rs = ReplicatedStore::new(2, 4);
        rs.put("o", blob(7, 64)).unwrap();
        rs.fail_site("site-0").unwrap();
        let reply = rs.fetch("o", None).unwrap().unwrap();
        match reply {
            FetchReply::Full { version, data } => {
                assert_eq!(version, 1);
                assert_eq!(&data[..], &[7u8; 64][..]);
            }
            other => panic!("expected full read, got {other:?}"),
        }
    }

    #[test]
    fn failover_promotes_replica_and_writes_continue() {
        let mut rs = ReplicatedStore::new(2, 4);
        rs.put("o", blob(1, 64)).unwrap();
        rs.fail_site("site-0").unwrap();
        let v = rs.put("o", blob(2, 64)).unwrap();
        assert_eq!(v, 2);
        assert_eq!(rs.primary_name(), "site-1");
        // committed data is durable across the failover
        let reply = rs.fetch("o", Some(1)).unwrap().unwrap();
        assert_eq!(reply.version(), 2);
    }

    #[test]
    fn all_sites_down_is_an_error() {
        let mut rs = ReplicatedStore::new(1, 4);
        rs.put("o", blob(1, 10)).unwrap();
        rs.fail_site("site-0").unwrap();
        rs.fail_site("site-1").unwrap();
        assert_eq!(rs.fetch("o", None).unwrap_err(), ReplicationError::AllSitesDown);
        assert_eq!(rs.put("o", blob(2, 10)).unwrap_err(), ReplicationError::AllSitesDown);
        assert_eq!(rs.n_available(), 0);
    }

    #[test]
    fn recovered_site_catches_up_on_next_write() {
        let mut rs = ReplicatedStore::new(1, 8);
        rs.put("o", blob(1, 32)).unwrap();
        rs.fail_site("site-1").unwrap();
        rs.put("o", blob(2, 32)).unwrap(); // replica misses this
        rs.recover_site("site-1").unwrap();
        rs.put("o", blob(3, 32)).unwrap(); // catch-up happens here
        let versions = rs.site_versions("o");
        assert!(versions.iter().all(|(_, v)| *v == Some(3)), "versions: {versions:?}");
    }

    #[test]
    fn put_with_retry_waits_for_site_recovery() {
        use coda_chaos::RetryPolicy;
        let mut rs = ReplicatedStore::new(1, 4);
        rs.put("o", blob(1, 32)).unwrap();
        rs.fail_site("site-0").unwrap();
        rs.fail_site("site-1").unwrap();
        let policy = RetryPolicy::fixed(10.0, 5);
        // the disaster heals on the 3rd attempt
        let (result, stats) = rs.put_with_retry("o", blob(2, 32), &policy, |store, attempt| {
            if attempt == 2 {
                store.recover_site("site-1").unwrap();
            }
        });
        assert_eq!(result, Ok(2));
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.successes, 1);
        assert_eq!(rs.primary_name(), "site-1");
    }

    #[test]
    fn fetch_with_retry_exhausts_when_nothing_recovers() {
        use coda_chaos::RetryPolicy;
        let mut rs = ReplicatedStore::new(1, 4);
        rs.put("o", blob(1, 16)).unwrap();
        rs.fail_site("site-0").unwrap();
        rs.fail_site("site-1").unwrap();
        let policy = RetryPolicy::fixed(5.0, 3);
        let (result, stats) = rs.fetch_with_retry("o", None, &policy, |_, _| {});
        assert_eq!(result.unwrap_err(), ReplicationError::AllSitesDown);
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.exhausted, 1);
    }

    #[test]
    fn replica_writes_trace_as_children_of_the_replicated_put() {
        use coda_obs::{Obs, TraceForest};
        let obs = Obs::deterministic();
        let mut rs = ReplicatedStore::new(2, 4);
        rs.attach_obs(obs.clone());
        let root = obs.tracer().begin_span("client.request", None, &[]);
        rs.put_in("o", blob(5, 64), Some(root)).unwrap();
        obs.tracer().end_span(root, &[]);
        let forest = TraceForest::from_events(&obs.tracer().events());
        assert!(forest.orphans().is_empty());
        let rep = forest.spans().find(|s| s.name == "store.replicate_put").expect("replicate span");
        assert_eq!(rep.parent, Some(root.span_id));
        let site_puts: Vec<_> = forest.spans().filter(|s| s.name == "store.put").collect();
        assert_eq!(site_puts.len(), 3, "primary + 2 replicas");
        for p in site_puts {
            assert_eq!(p.parent, Some(rep.ctx.span_id), "site writes hang off the replicate op");
            assert_eq!(p.ctx.trace_id, rep.ctx.trace_id);
        }
    }

    #[test]
    fn unknown_site_rejected() {
        let mut rs = ReplicatedStore::new(1, 4);
        assert!(matches!(rs.fail_site("nope"), Err(ReplicationError::UnknownSite(_))));
        assert!(matches!(rs.recover_site("nope"), Err(ReplicationError::UnknownSite(_))));
    }

    #[test]
    fn degraded_read_does_not_change_primary() {
        let mut rs = ReplicatedStore::new(1, 4);
        rs.put("o", blob(1, 16)).unwrap();
        rs.fail_site("site-0").unwrap();
        rs.fetch("o", None).unwrap();
        assert_eq!(rs.primary_name(), "site-0"); // read alone doesn't fail over
        rs.failover_if_needed().unwrap();
        assert_eq!(rs.primary_name(), "site-1");
    }
}
