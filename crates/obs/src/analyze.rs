//! Span-tree reconstruction and analysis over the tracer's event stream.
//!
//! [`TraceForest::from_events`] folds the flat [`TraceEvent`] log back into
//! causal trees: one tree per [`TraceId`], spans linked start→end by
//! [`SpanId`] and child→parent by the parent id recorded on span starts.
//! On top of the forest it computes the standard latency diagnostics —
//! per-trace critical paths (the chain of spans that bounds end-to-end
//! latency) and per-name self-time rollups (time inside a span not covered
//! by its children) — and exports Chrome trace-event JSON loadable in
//! Perfetto / `chrome://tracing`. Under a `ManualClock` the export is
//! deterministic: spans serialize in span-id order with sorted object keys
//! (vendored `serde` uses `BTreeMap`), so same-seed runs produce
//! byte-identical files.

use std::collections::BTreeMap;

use serde::Value;

use crate::trace::{EventKind, SpanContext, SpanId, TraceEvent, TraceId};

/// One reconstructed span: identity, causal links, interval, annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span's trace and span id.
    pub ctx: SpanContext,
    /// Parent span id, `None` for trace roots.
    pub parent: Option<SpanId>,
    /// Span name (from the start event).
    pub name: String,
    /// Start timestamp, milliseconds.
    pub start_ms: f64,
    /// End timestamp, milliseconds; equals `start_ms` when no end event
    /// was recorded (span still open when the log was captured).
    pub end_ms: f64,
    /// Merged start+end annotations, sorted by key.
    pub fields: Vec<(String, String)>,
    /// Child span ids, ascending.
    pub children: Vec<SpanId>,
}

impl SpanNode {
    /// The span's wall duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        (self.end_ms - self.start_ms).max(0.0)
    }

    /// The value of annotation `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// A point event attributed to its owning span (if it had one).
#[derive(Debug, Clone, PartialEq)]
pub struct PointEvent {
    /// Event name.
    pub name: String,
    /// Timestamp, milliseconds.
    pub at_ms: f64,
    /// The span the event belongs to, when it was emitted inside one.
    pub ctx: Option<SpanContext>,
    /// Annotations, sorted by key.
    pub fields: Vec<(String, String)>,
}

/// The reconstructed causal forest: every trace's span tree plus the point
/// events attributed to spans.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceForest {
    spans: BTreeMap<u64, SpanNode>,
    roots: BTreeMap<u64, Vec<SpanId>>,
    orphans: Vec<SpanId>,
    points: Vec<PointEvent>,
    unresolved_points: usize,
}

fn sorted_fields(fields: &[(String, String)]) -> Vec<(String, String)> {
    let mut out = fields.to_vec();
    out.sort();
    out
}

impl TraceForest {
    /// Folds a recorded event stream back into span trees.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut spans: BTreeMap<u64, SpanNode> = BTreeMap::new();
        let mut points = Vec::new();
        for e in events {
            match e.kind {
                EventKind::SpanStart => {
                    let ctx = match e.ctx {
                        Some(ctx) => ctx,
                        None => continue,
                    };
                    spans.insert(
                        ctx.span_id.0,
                        SpanNode {
                            ctx,
                            parent: e.parent,
                            name: e.name.clone(),
                            start_ms: e.at_ms,
                            end_ms: e.at_ms,
                            fields: e.fields.clone(),
                            children: Vec::new(),
                        },
                    );
                }
                EventKind::SpanEnd => {
                    if let Some(node) = e.ctx.and_then(|c| spans.get_mut(&c.span_id.0)) {
                        node.end_ms = e.at_ms;
                        node.fields.extend(e.fields.iter().cloned());
                    }
                }
                EventKind::Event => points.push(PointEvent {
                    name: e.name.clone(),
                    at_ms: e.at_ms,
                    ctx: e.ctx,
                    fields: sorted_fields(&e.fields),
                }),
            }
        }
        for node in spans.values_mut() {
            node.fields = sorted_fields(&node.fields);
        }
        Self::link(spans, points)
    }

    /// Builds child lists, roots, and orphan/unresolved bookkeeping from
    /// an already-assembled span map.
    fn link(mut spans: BTreeMap<u64, SpanNode>, points: Vec<PointEvent>) -> Self {
        let ids: Vec<u64> = spans.keys().copied().collect();
        let mut orphans = Vec::new();
        let mut roots: BTreeMap<u64, Vec<SpanId>> = BTreeMap::new();
        let mut child_links: Vec<(u64, SpanId)> = Vec::new();
        for id in &ids {
            let node = &spans[id];
            match node.parent {
                Some(parent) if spans.contains_key(&parent.0) => {
                    child_links.push((parent.0, node.ctx.span_id));
                }
                Some(_) => orphans.push(node.ctx.span_id),
                None => roots.entry(node.ctx.trace_id.0).or_default().push(node.ctx.span_id),
            }
        }
        for (parent, child) in child_links {
            if let Some(p) = spans.get_mut(&parent) {
                p.children.push(child);
            }
        }
        let unresolved_points = points
            .iter()
            .filter(|p| p.ctx.is_some_and(|c| !spans.contains_key(&c.span_id.0)))
            .count();
        TraceForest { spans, roots, orphans, points, unresolved_points }
    }

    /// Number of reconstructed spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the forest holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Distinct traces that have at least one root span.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        self.roots.keys().map(|t| TraceId(*t)).collect()
    }

    /// The span with the given id, if present.
    pub fn span(&self, id: SpanId) -> Option<&SpanNode> {
        self.spans.get(&id.0)
    }

    /// All spans, ascending by span id.
    pub fn spans(&self) -> impl Iterator<Item = &SpanNode> {
        self.spans.values()
    }

    /// Root span ids of `trace`, ascending.
    pub fn roots_of(&self, trace: TraceId) -> &[SpanId] {
        self.roots.get(&trace.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Spans whose recorded parent never appeared in the stream — a
    /// context-propagation bug when nonzero.
    pub fn orphans(&self) -> &[SpanId] {
        &self.orphans
    }

    /// Point events whose carried context resolves to no known span.
    pub fn unresolved_points(&self) -> usize {
        self.unresolved_points
    }

    /// All point events, in record order.
    pub fn points(&self) -> &[PointEvent] {
        &self.points
    }

    /// Point events attributed to span `id`, in record order.
    pub fn points_in(&self, id: SpanId) -> Vec<&PointEvent> {
        self.points.iter().filter(|p| p.ctx.map(|c| c.span_id) == Some(id)).collect()
    }

    /// The latency-bounding chain of `trace`: starting from the trace's
    /// longest root, repeatedly descend into the child that finishes last
    /// (ties broken by lower span id). Empty when the trace is unknown.
    pub fn critical_path(&self, trace: TraceId) -> Vec<SpanId> {
        let root = self
            .roots_of(trace)
            .iter()
            .copied()
            .max_by(|a, b| {
                let (da, db) = (self.spans[&a.0].duration_ms(), self.spans[&b.0].duration_ms());
                da.total_cmp(&db).then(b.0.cmp(&a.0))
            })
            .into_iter()
            .next();
        let mut path = Vec::new();
        let mut cursor = root;
        while let Some(id) = cursor {
            path.push(id);
            cursor = self.spans[&id.0].children.iter().copied().max_by(|a, b| {
                let (ea, eb) = (self.spans[&a.0].end_ms, self.spans[&b.0].end_ms);
                ea.total_cmp(&eb).then(b.0.cmp(&a.0))
            });
        }
        path
    }

    /// The critical path rendered as operator labels, root to leaf: each
    /// span's name, refined to `name[value]` when it carries the
    /// `refine_field` annotation — the same keying
    /// [`CostProfile::from_forest_refined`](crate::profile::CostProfile)
    /// uses, so diagnosis output joins against cost profiles directly.
    pub fn critical_path_labels(&self, trace: TraceId, refine_field: Option<&str>) -> Vec<String> {
        self.critical_path(trace)
            .into_iter()
            .filter_map(|id| self.span(id))
            .map(|s| match refine_field.and_then(|f| s.field(f)) {
                Some(v) => format!("{}[{}]", s.name, v),
                None => s.name.clone(),
            })
            .collect()
    }

    /// Time spent inside span `id` not covered by its children's
    /// durations, clamped at zero (children may overlap when parallel).
    pub fn self_time_ms(&self, id: SpanId) -> f64 {
        let node = match self.spans.get(&id.0) {
            Some(n) => n,
            None => return 0.0,
        };
        let child_ms: f64 = node.children.iter().map(|c| self.spans[&c.0].duration_ms()).sum();
        (node.duration_ms() - child_ms).max(0.0)
    }

    /// Per-span-name totals of self time across one trace — the latency
    /// breakdown ("where does the time actually go").
    pub fn self_time_rollup(&self, trace: TraceId) -> BTreeMap<String, f64> {
        let mut rollup = BTreeMap::new();
        for node in self.spans.values().filter(|n| n.ctx.trace_id == trace) {
            *rollup.entry(node.name.clone()).or_insert(0.0) += self.self_time_ms(node.ctx.span_id);
        }
        rollup
    }

    /// Exports the forest as Chrome trace-event JSON (the format Perfetto
    /// and `chrome://tracing` load): spans as complete (`"ph":"X"`) events
    /// with `ts`/`dur` in microseconds, point events as instants
    /// (`"ph":"i"`), `pid` = trace id, `tid` = span id. Span-id iteration
    /// order plus sorted object keys make the bytes deterministic.
    pub fn to_chrome_json(&self) -> String {
        let mut trace_events = Vec::with_capacity(self.spans.len() + self.points.len());
        for node in self.spans.values() {
            let mut args = BTreeMap::new();
            for (k, v) in &node.fields {
                args.insert(k.clone(), Value::Str(v.clone()));
            }
            if let Some(parent) = node.parent {
                args.insert("parent".to_string(), Value::Int(parent.0 as i64));
            }
            let mut obj = BTreeMap::new();
            obj.insert("args".to_string(), Value::Object(args));
            obj.insert("cat".to_string(), Value::Str("coda".to_string()));
            obj.insert("dur".to_string(), Value::Float(node.duration_ms() * 1000.0));
            obj.insert("name".to_string(), Value::Str(node.name.clone()));
            obj.insert("ph".to_string(), Value::Str("X".to_string()));
            obj.insert("pid".to_string(), Value::Int(node.ctx.trace_id.0 as i64));
            obj.insert("tid".to_string(), Value::Int(node.ctx.span_id.0 as i64));
            obj.insert("ts".to_string(), Value::Float(node.start_ms * 1000.0));
            trace_events.push(Value::Object(obj));
        }
        for point in &self.points {
            let mut args = BTreeMap::new();
            for (k, v) in &point.fields {
                args.insert(k.clone(), Value::Str(v.clone()));
            }
            let mut obj = BTreeMap::new();
            obj.insert("args".to_string(), Value::Object(args));
            obj.insert("cat".to_string(), Value::Str("coda".to_string()));
            obj.insert("name".to_string(), Value::Str(point.name.clone()));
            obj.insert("ph".to_string(), Value::Str("i".to_string()));
            let (pid, tid, scope) = match point.ctx {
                Some(ctx) => (ctx.trace_id.0 as i64, ctx.span_id.0 as i64, "t"),
                None => (0, 0, "g"),
            };
            obj.insert("pid".to_string(), Value::Int(pid));
            obj.insert("s".to_string(), Value::Str(scope.to_string()));
            obj.insert("tid".to_string(), Value::Int(tid));
            obj.insert("ts".to_string(), Value::Float(point.at_ms * 1000.0));
            trace_events.push(Value::Object(obj));
        }
        let mut top = BTreeMap::new();
        top.insert("displayTimeUnit".to_string(), Value::Str("ms".to_string()));
        top.insert("traceEvents".to_string(), Value::Array(trace_events));
        // value-model rendering is infallible; an empty string would only
        // appear if the vendored serde_json grew a real error path
        serde_json::to_string(&Value::Object(top)).unwrap_or_default()
    }

    /// Parses Chrome trace-event JSON produced by
    /// [`TraceForest::to_chrome_json`] back into a forest — the round-trip
    /// proof that the export loses no causal structure.
    ///
    /// # Errors
    ///
    /// A description of the first malformed construct.
    pub fn from_chrome_json(json: &str) -> Result<Self, String> {
        let value = serde_json::parse(json).map_err(|e| e.to_string())?;
        let top = value.as_object().ok_or("top level must be an object")?;
        let events =
            top.get("traceEvents").and_then(Value::as_array).ok_or("missing traceEvents array")?;
        let mut spans: BTreeMap<u64, SpanNode> = BTreeMap::new();
        let mut points = Vec::new();
        for (i, event) in events.iter().enumerate() {
            let obj = event.as_object().ok_or_else(|| format!("traceEvents[{i}] not an object"))?;
            let get_str = |key: &str| obj.get(key).and_then(Value::as_str);
            let get_num = |key: &str| match obj.get(key) {
                Some(Value::Int(n)) => Some(*n as f64),
                Some(Value::Float(f)) => Some(*f),
                _ => None,
            };
            let ph = get_str("ph").ok_or_else(|| format!("traceEvents[{i}] missing ph"))?;
            let name = get_str("name")
                .ok_or_else(|| format!("traceEvents[{i}] missing name"))?
                .to_string();
            let ts = get_num("ts").ok_or_else(|| format!("traceEvents[{i}] missing ts"))?;
            let pid = get_num("pid").unwrap_or(0.0) as u64;
            let tid = get_num("tid").unwrap_or(0.0) as u64;
            let args = obj.get("args").and_then(Value::as_object);
            let mut fields = Vec::new();
            let mut parent = None;
            if let Some(args) = args {
                for (k, v) in args {
                    match v {
                        Value::Int(n) if k == "parent" => parent = Some(SpanId(*n as u64)),
                        Value::Str(s) => fields.push((k.clone(), s.clone())),
                        _ => return Err(format!("traceEvents[{i}] has non-string arg {k}")),
                    }
                }
            }
            let ctx = SpanContext { trace_id: TraceId(pid), span_id: SpanId(tid) };
            match ph {
                "X" => {
                    let dur = get_num("dur").unwrap_or(0.0);
                    spans.insert(
                        tid,
                        SpanNode {
                            ctx,
                            parent,
                            name,
                            start_ms: ts / 1000.0,
                            end_ms: (ts + dur) / 1000.0,
                            fields,
                            children: Vec::new(),
                        },
                    );
                }
                "i" => {
                    let ctx = (tid != 0).then_some(ctx);
                    points.push(PointEvent { name, at_ms: ts / 1000.0, ctx, fields });
                }
                other => return Err(format!("traceEvents[{i}] has unsupported ph {other:?}")),
            }
        }
        Ok(Self::link(spans, points))
    }

    /// True when `other` has the same causal structure: span ids, names,
    /// parent links, children, fields, and point attribution (timestamps
    /// excluded — they pick up float rounding through the µs export).
    pub fn same_shape(&self, other: &TraceForest) -> bool {
        self.spans.len() == other.spans.len()
            && self.spans.iter().all(|(id, a)| {
                other.spans.get(id).is_some_and(|b| {
                    a.ctx == b.ctx
                        && a.parent == b.parent
                        && a.name == b.name
                        && a.fields == b.fields
                        && a.children == b.children
                })
            })
            && self.roots == other.roots
            && self.orphans == other.orphans
            && self.points.len() == other.points.len()
            && self
                .points
                .iter()
                .zip(&other.points)
                .all(|(a, b)| a.name == b.name && a.ctx == b.ctx && a.fields == b.fields)
    }

    /// One-line human summary per trace: root name, span count, duration.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        for (trace, roots) in &self.roots {
            let n = self.spans.values().filter(|s| s.ctx.trace_id.0 == *trace).count();
            let root = &self.spans[&roots[0].0];
            let end = self
                .spans
                .values()
                .filter(|s| s.ctx.trace_id.0 == *trace)
                .map(|s| s.end_ms)
                .fold(root.start_ms, f64::max);
            out.push_str(&format!(
                "trace {trace}: root {} spans {n} dur {:.3} ms\n",
                root.name,
                end - root.start_ms
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};
    use crate::trace::Tracer;
    use std::sync::Arc;

    fn manual_tracer() -> (Arc<ManualClock>, Tracer) {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(Arc::clone(&clock) as Arc<dyn Clock>);
        (clock, tracer)
    }

    /// root(0..40) > [a(5..15), b(10..40 > c(12..35))], plus two points.
    fn sample_tracer() -> Tracer {
        let (clock, tracer) = manual_tracer();
        let root = tracer.begin_span("root", None, &[("req", "r1")]);
        clock.set_ms(5.0);
        let a = tracer.begin_span("work.a", Some(root), &[]);
        tracer.event_in(a, "a.tick", &[]);
        clock.set_ms(10.0);
        let b = tracer.begin_span("work.b", Some(root), &[]);
        clock.set_ms(12.0);
        let c = tracer.begin_span("work.c", Some(b), &[]);
        clock.set_ms(15.0);
        tracer.end_span(a, &[]);
        clock.set_ms(35.0);
        tracer.end_span(c, &[]);
        clock.set_ms(40.0);
        tracer.end_span(b, &[]);
        tracer.event("loose", &[]);
        tracer.end_span(root, &[]);
        tracer
    }

    #[test]
    fn forest_reconstructs_tree_and_intervals() {
        let tracer = sample_tracer();
        let forest = TraceForest::from_events(&tracer.events());
        assert_eq!(forest.len(), 4);
        assert!(forest.orphans().is_empty());
        assert_eq!(forest.unresolved_points(), 0);
        assert_eq!(forest.trace_ids(), vec![TraceId(1)]);
        let roots = forest.roots_of(TraceId(1));
        assert_eq!(roots.len(), 1);
        let root = forest.span(roots[0]).unwrap();
        assert_eq!(root.name, "root");
        assert_eq!(root.children, vec![SpanId(2), SpanId(3)]);
        assert_eq!((root.start_ms, root.end_ms), (0.0, 40.0));
        assert_eq!(root.field("req"), Some("r1"));
        assert_eq!(forest.points_in(SpanId(2)).len(), 1, "a.tick lands in work.a");
    }

    #[test]
    fn critical_path_follows_latest_finishing_children() {
        let tracer = sample_tracer();
        let forest = TraceForest::from_events(&tracer.events());
        let path: Vec<String> = forest
            .critical_path(TraceId(1))
            .into_iter()
            .map(|id| forest.span(id).unwrap().name.clone())
            .collect();
        assert_eq!(path, vec!["root", "work.b", "work.c"]);
        assert!(forest.critical_path(TraceId(99)).is_empty());
    }

    #[test]
    fn self_time_subtracts_children() {
        let tracer = sample_tracer();
        let forest = TraceForest::from_events(&tracer.events());
        // root 40 - (a 10 + b 30) = 0; b 30 - c 23 = 7.
        assert_eq!(forest.self_time_ms(SpanId(1)), 0.0);
        assert_eq!(forest.self_time_ms(SpanId(3)), 7.0);
        let rollup = forest.self_time_rollup(TraceId(1));
        assert_eq!(rollup["work.a"], 10.0);
        assert_eq!(rollup["work.b"], 7.0);
        assert_eq!(rollup["work.c"], 23.0);
    }

    #[test]
    fn orphans_and_unresolved_points_are_flagged() {
        let (_clock, tracer) = manual_tracer();
        let ghost = SpanContext { trace_id: TraceId(9), span_id: SpanId(99) };
        let _real = tracer.begin_span("child", Some(ghost), &[]);
        tracer.event_in(ghost, "lost", &[]);
        let forest = TraceForest::from_events(&tracer.events());
        assert_eq!(forest.orphans(), &[SpanId(1)]);
        assert_eq!(forest.unresolved_points(), 1);
    }

    #[test]
    fn chrome_json_round_trips_and_is_deterministic() {
        let build = || {
            let tracer = sample_tracer();
            TraceForest::from_events(&tracer.events())
        };
        let forest = build();
        let json = forest.to_chrome_json();
        assert_eq!(json, build().to_chrome_json(), "export is byte-deterministic");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        let parsed = TraceForest::from_chrome_json(&json).expect("round-trip parse");
        assert!(forest.same_shape(&parsed));
        assert_eq!(
            parsed.critical_path(TraceId(1)),
            forest.critical_path(TraceId(1)),
            "causal analysis survives the export"
        );
        assert!(TraceForest::from_chrome_json("[]").is_err());
        assert!(TraceForest::from_chrome_json("{\"traceEvents\":[{}]}").is_err());
    }

    /// Satellite: equal-end (and equal-self-time) critical-path ties break
    /// by lowest span id, never by map/event iteration order — permuting
    /// the event insertion order must not change the chosen path.
    #[test]
    fn critical_path_ties_break_by_span_id_under_permuted_insertion() {
        let ctx = |span: u64| SpanContext { trace_id: TraceId(1), span_id: SpanId(span) };
        let start = |span: u64, parent: Option<u64>, at: f64| TraceEvent {
            name: format!("work.{span}"),
            kind: EventKind::SpanStart,
            at_ms: at,
            ctx: Some(ctx(span)),
            parent: parent.map(SpanId),
            fields: Vec::new(),
        };
        let end = |span: u64, at: f64| TraceEvent {
            name: format!("work.{span}"),
            kind: EventKind::SpanEnd,
            at_ms: at,
            ctx: Some(ctx(span)),
            parent: None,
            fields: Vec::new(),
        };
        // root 1 with three children 2, 3, 4: all start at 5 and end at 20
        // — identical durations and self-times, a full three-way tie. The
        // concurrent siblings' starts and ends may land in the log in any
        // interleaving; every one must reconstruct the same path.
        let orders: [[u64; 3]; 6] =
            [[2, 3, 4], [2, 4, 3], [3, 2, 4], [3, 4, 2], [4, 2, 3], [4, 3, 2]];
        for start_order in orders {
            for end_order in orders {
                let mut events = vec![start(1, None, 0.0)];
                events.extend(start_order.iter().map(|&s| start(s, Some(1), 5.0)));
                events.extend(end_order.iter().map(|&s| end(s, 20.0)));
                events.push(end(1, 25.0));
                let forest = TraceForest::from_events(&events);
                assert_eq!(
                    forest.critical_path(TraceId(1)),
                    vec![SpanId(1), SpanId(2)],
                    "equal-end children must tie-break to the lowest span id \
                     (starts {start_order:?}, ends {end_order:?})"
                );
            }
        }
        // equal-duration *roots* tie the same way
        let twin_roots = vec![start(1, None, 0.0), start(2, None, 0.0), end(1, 9.0), end(2, 9.0)];
        let forest = TraceForest::from_events(&twin_roots);
        assert_eq!(forest.critical_path(TraceId(1)), vec![SpanId(1)]);
    }

    #[test]
    fn summary_names_roots() {
        let tracer = sample_tracer();
        let forest = TraceForest::from_events(&tracer.events());
        let summary = forest.render_summary();
        assert!(summary.contains("trace 1: root root spans 4 dur 40.000 ms"));
    }
}
