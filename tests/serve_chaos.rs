//! Chaos composition for the sharded serving tier (satellite of the
//! coda-serve tentpole): killing one shard's home mid-load must trigger
//! crash-recovery for that shard *only*, leave every other shard's state
//! and digest untouched, converge to the same canonical state as a
//! crash-free same-seed run, and replay byte-identically across same-seed
//! runs.

use bytes::Bytes;
use coda::chaos::CrashPlan;
use coda::cluster::{run_crash_recovery_sharded, CrashRecoveryConfig};
use coda::obs::Obs;
use coda::store::shard_of;
use coda_serve::{ServeConfig, ServeRequest, ServeTier, TriggerPolicy};

/// splitmix64 — seeded op stream, same idiom as the serving tier's own
/// load generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs a deterministic put/pull stream through a 2-shard tier under
/// `plan`, returning (canonical state, per-shard summaries' recovery
/// counts, obs recovery counter).
fn run_tier_under_plan(seed: u64, plan: CrashPlan) -> (String, Vec<(u64, u64, u64)>, u64) {
    let obs = Obs::deterministic();
    let cfg = ServeConfig {
        n_shards: 2,
        snapshot_every: 4,
        trigger: TriggerPolicy::Count(3),
        plan,
        ..ServeConfig::default()
    };
    let tier = ServeTier::start_obs(&cfg, Some(&obs));
    let mut rng = seed | 1;
    for _ in 0..200 {
        let key = splitmix64(&mut rng) % 24;
        if splitmix64(&mut rng).is_multiple_of(3) {
            tier.submit(ServeRequest::Pull { id: format!("obj-{key}"), client_version: None })
                .expect("admitted");
        } else {
            let fill = (splitmix64(&mut rng) & 0xff) as u8;
            tier.submit(ServeRequest::Put {
                id: format!("obj-{key}"),
                data: Bytes::from(vec![fill; 128]),
            })
            .expect("admitted");
        }
    }
    tier.advance_clock(5);
    let report = tier.finish();
    let recoveries: Vec<(u64, u64, u64)> = report
        .shards
        .iter()
        .map(|s| (s.recoveries, s.recoveries_byte_identical, s.recovery_mismatches))
        .collect();
    let recovered = obs.registry().snapshot().counter("coda_serve_recoveries");
    (report.canonical_state(), recoveries, recovered)
}

/// Killing shard-1's store mid-load recovers in place, touches only
/// shard-1, and is invisible in the final canonical state.
#[test]
fn shard_crash_recovers_in_place_and_stays_invisible() {
    let seed = 17u64;
    let (clean_state, clean_recoveries, _) = run_tier_under_plan(seed, CrashPlan::new());
    assert!(clean_recoveries.iter().all(|&(r, _, _)| r == 0), "no plan, no recoveries");

    let plan = CrashPlan::new().with_crash_at("shard-1", 6, Some(0.0));
    let (crashed_state, recoveries, obs_recoveries) = run_tier_under_plan(seed, plan.clone());
    assert_eq!(recoveries[1].0, 1, "the planned point must fire on shard-1");
    assert_eq!(recoveries[1].1, 1, "WAL replay must be byte-identical");
    assert_eq!(recoveries[1].2, 0, "no recovery may diverge");
    assert_eq!(recoveries[0], (0, 0, 0), "shard-0 was never scheduled");
    assert_eq!(obs_recoveries, 1);
    assert_eq!(
        crashed_state, clean_state,
        "a byte-identical recovery must be invisible in canonical state"
    );

    // same seed, same plan: the whole run replays byte-identically
    let (replay_state, replay_recoveries, _) = run_tier_under_plan(seed, plan);
    assert_eq!(replay_state, crashed_state);
    assert_eq!(replay_recoveries, recoveries);
}

/// The sharded kill-restart driver: crashing one lane's home fails over
/// that lane only, every lane's digest still matches the crash-free
/// sharded baseline, and same-seed runs replay identically.
#[test]
fn sharded_recovery_fails_over_one_lane_only() {
    const N_SHARDS: usize = 2;
    let cfg = CrashRecoveryConfig::default();
    let baseline = run_crash_recovery_sharded(&cfg, N_SHARDS, None);
    assert_eq!(baseline.completed, cfg.n_items, "sharded baseline covers all work");
    assert_eq!(baseline.failovers, 0);
    assert_eq!(baseline.shard_digests.len(), N_SHARDS);

    // target the lane that owns obj-0 — guaranteed non-empty workload
    let lane = shard_of("obj-0", N_SHARDS);
    let other = 1 - lane;
    let crash_cfg = CrashRecoveryConfig {
        plan: CrashPlan::new().with_crash_at(&format!("s{lane}-node-0"), 3, None),
        ..cfg.clone()
    };
    let report = run_crash_recovery_sharded(&crash_cfg, N_SHARDS, None);
    assert_eq!(report.crashes, 1, "exactly one lane's home crashes");
    assert_eq!(report.failovers, 1, "exactly one lane fails over");
    assert_eq!(report.completed, cfg.n_items, "no work may be lost");
    assert!(
        report.final_home.contains(&format!("s{lane}-node-1")),
        "the crashed lane promotes its replica: {}",
        report.final_home
    );
    assert!(
        report.final_home.contains(&format!("s{other}-node-0")),
        "the untouched lane keeps its home: {}",
        report.final_home
    );
    assert_eq!(
        report.shard_digests[other], baseline.shard_digests[other],
        "the untouched lane's digest must be unaffected"
    );
    assert_eq!(
        report.shard_digests[lane], baseline.shard_digests[lane],
        "the crashed lane must converge to its baseline digest"
    );

    // same seed, same plan: byte-identical replay
    let replay = run_crash_recovery_sharded(&crash_cfg, N_SHARDS, None);
    assert_eq!(replay, report, "sharded kill-restart must replay bit-identically");
}

/// A kill-*restart* point in a sharded run proves byte-identical WAL
/// replay inside its lane while the other lane never notices.
#[test]
fn sharded_restart_replays_byte_identically() {
    const N_SHARDS: usize = 2;
    let cfg = CrashRecoveryConfig::default();
    let baseline = run_crash_recovery_sharded(&cfg, N_SHARDS, None);
    let lane = shard_of("obj-0", N_SHARDS);
    let crash_cfg = CrashRecoveryConfig {
        plan: CrashPlan::new().with_crash_at(&format!("s{lane}-node-0"), 3, Some(600.0)),
        ..cfg
    };
    let report = run_crash_recovery_sharded(&crash_cfg, N_SHARDS, None);
    assert_eq!(report.crashes, 1);
    assert_eq!(report.restarts, 1);
    assert_eq!(report.byte_identical_recoveries, 1, "WAL replay must be exact");
    assert_eq!(report.recovery_mismatches, 0);
    assert_eq!(report.digest, baseline.digest, "aggregate digest must converge");
}
