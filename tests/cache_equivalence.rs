//! The prefix-cache equivalence harness: every evaluator configuration —
//! cached/uncached × 1/4 threads × with/without a parameter grid — must
//! produce an identical `GraphReport` on seeded TEGs. Bit-identical fold
//! scores, identical ranking (including tie order), identical error
//! strings; the only permitted difference is the `cache` stats field.
//!
//! Filterable as one suite: `cargo test --release -- cache_equivalence`.

mod common;

use coda::data::{CvStrategy, Metric};
use coda::graph::{Evaluator, GraphReport, ParamGrid, Teg};
use common::{
    assert_reports_identical, dataset, failing_branch_teg, fan_out_teg, linear_chain_teg,
    mixed_grid, mixed_teg, tiny_wide_dataset,
};

/// Evaluates `graph` under every configuration in the matrix and asserts
/// all reports equal the uncached single-threaded baseline.
fn assert_all_configs_identical(
    graph: &Teg,
    ds: &coda::data::Dataset,
    cv: CvStrategy,
    grid: Option<&ParamGrid>,
) {
    let run = |cached: bool, threads: usize| -> GraphReport {
        let mut eval = Evaluator::new(cv.clone(), Metric::Rmse).with_prefix_cache(cached);
        if threads > 1 {
            eval = eval.with_threads(threads);
        }
        match grid {
            Some(g) => eval.evaluate_graph_with_grid(graph, ds, g),
            None => eval.evaluate_graph(graph, ds),
        }
        .expect("fixture graphs evaluate")
    };
    let baseline = run(false, 1);
    for cached in [false, true] {
        for threads in [1usize, 4] {
            let report = run(cached, threads);
            assert_reports_identical(&baseline, &report);
            assert_eq!(
                report.cache.is_some(),
                cached,
                "stats present exactly when the cache is on"
            );
        }
    }
}

#[test]
fn cache_equivalence_fan_out() {
    assert_all_configs_identical(&fan_out_teg(6), &dataset(31), CvStrategy::kfold(4), None);
}

#[test]
fn cache_equivalence_linear_chain() {
    assert_all_configs_identical(&linear_chain_teg(), &dataset(32), CvStrategy::kfold(4), None);
}

#[test]
fn cache_equivalence_mixed_graph() {
    assert_all_configs_identical(&mixed_teg(), &dataset(33), CvStrategy::kfold(3), None);
}

#[test]
fn cache_equivalence_with_grid() {
    assert_all_configs_identical(
        &mixed_teg(),
        &dataset(34),
        CvStrategy::kfold(3),
        Some(&mixed_grid()),
    );
}

#[test]
fn cache_equivalence_failing_branch() {
    let ds = tiny_wide_dataset(35);
    let graph = failing_branch_teg();
    // sanity: the fixture really has one failing and one passing branch
    let report =
        Evaluator::new(CvStrategy::kfold(3), Metric::Rmse).evaluate_graph(&graph, &ds).unwrap();
    assert_eq!(report.n_failed(), 1, "OLS branch must fail (underdetermined)");
    assert_eq!(report.n_ok(), 1, "ridge branch must pass");
    assert_all_configs_identical(&graph, &ds, CvStrategy::kfold(3), None);
}

#[test]
fn cache_equivalence_shuffled_cv() {
    let cv = CvStrategy::KFold { k: 5, shuffle: true, seed: 99 };
    assert_all_configs_identical(&fan_out_teg(4), &dataset(36), cv, None);
}

#[test]
fn cache_equivalence_fan_out_stats_match_structure() {
    // beyond equivalence: the cached run's accounting must match the
    // graph's prefix structure exactly, independent of thread count
    let ds = dataset(37);
    let graph = fan_out_teg(6);
    let (distinct, visits) = graph.transform_prefix_counts();
    let (distinct, visits) = (distinct as u64, visits as u64);
    assert_eq!((distinct, visits), (2, 12), "2-stage shared prefix, 6 paths");
    for threads in [1usize, 4] {
        let mut eval = Evaluator::new(CvStrategy::kfold(4), Metric::Rmse).with_prefix_cache(true);
        if threads > 1 {
            eval = eval.with_threads(threads);
        }
        let stats = eval.evaluate_graph(&graph, &ds).unwrap().cache.unwrap();
        assert_eq!(stats.misses, distinct * 4, "one fit per distinct prefix per fold");
        assert_eq!(stats.hits, (visits - distinct) * 4);
        assert_eq!(stats.refits_avoided, stats.hits);
        assert!(stats.bytes > 0);
    }
}
