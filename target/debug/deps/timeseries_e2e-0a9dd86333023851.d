/root/repo/target/debug/deps/timeseries_e2e-0a9dd86333023851.d: tests/timeseries_e2e.rs

/root/repo/target/debug/deps/timeseries_e2e-0a9dd86333023851: tests/timeseries_e2e.rs

tests/timeseries_e2e.rs:
