//! Ratcheting baseline: existing violations are recorded as per-`rule|file`
//! counts and frozen; any *new* violation fails, and the recorded counts
//! may only shrink — when a fix lands, the stale (now too large) baseline
//! entry also fails until the file is regenerated with `--write-baseline`,
//! which is what makes the gate a one-way ratchet.
//!
//! Determinism findings and reason-less escape hatches are **never**
//! baselineable: they fail unconditionally (DESIGN.md §10).

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use serde::impl_serde_struct;

use crate::Finding;

/// The committed `lint-baseline.json` contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Baseline {
    /// Format version (currently 1).
    pub version: u64,
    /// `"<rule>|<file>"` → frozen violation count.
    pub entries: BTreeMap<String, u64>,
}

impl_serde_struct!(Baseline { version, entries });

/// Outcome of checking current findings against a baseline.
#[derive(Debug, Default)]
pub struct RatchetCheck {
    /// Keys whose current count exceeds the frozen count
    /// (`key` → `(frozen, current)`).
    pub grown: BTreeMap<String, (u64, u64)>,
    /// Keys whose frozen count exceeds the current count — the baseline is
    /// stale and must shrink (`key` → `(frozen, current)`).
    pub stale: BTreeMap<String, (u64, u64)>,
}

impl RatchetCheck {
    /// True when the findings exactly ratchet against the baseline.
    pub fn is_clean(&self) -> bool {
        self.grown.is_empty() && self.stale.is_empty()
    }
}

/// The baseline key of one finding.
pub fn key_of(f: &Finding) -> String {
    format!("{}|{}", f.rule.as_str(), f.file)
}

impl Baseline {
    /// Builds a baseline from current findings (baselineable rules only).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries: BTreeMap<String, u64> = BTreeMap::new();
        for f in findings {
            if f.rule.is_baselineable() {
                *entries.entry(key_of(f)).or_insert(0) += 1;
            }
        }
        Baseline { version: 1, entries }
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    ///
    /// # Errors
    ///
    /// Returns a message when the file exists but cannot be read or parsed.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        if !path.exists() {
            return Ok(Baseline { version: 1, entries: BTreeMap::new() });
        }
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value = serde_json::parse(&text)
            .map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
        serde::Deserialize::from_value(&value)
            .map_err(|e| format!("bad baseline shape in {}: {e}", path.display()))
    }

    /// Writes the baseline as pretty-enough deterministic JSON.
    ///
    /// # Errors
    ///
    /// Returns a message when serialization or the write fails.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let json = serde_json::to_string(self).map_err(|e| e.to_string())?;
        fs::write(path, json + "\n").map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Ratchets `findings` against this baseline.
    pub fn check(&self, findings: &[Finding]) -> RatchetCheck {
        let current = Baseline::from_findings(findings);
        let mut out = RatchetCheck::default();
        for (key, &n) in &current.entries {
            let frozen = self.entries.get(key).copied().unwrap_or(0);
            if n > frozen {
                out.grown.insert(key.clone(), (frozen, n));
            }
        }
        for (key, &frozen) in &self.entries {
            let n = current.entries.get(key).copied().unwrap_or(0);
            if frozen > n {
                out.stale.insert(key.clone(), (frozen, n));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    fn finding(rule: Rule, file: &str) -> Finding {
        Finding { rule, file: file.to_string(), line: 1, message: String::new() }
    }

    #[test]
    fn equal_counts_are_clean() {
        let fs = vec![finding(Rule::PanicSafety, "a.rs"), finding(Rule::PanicSafety, "a.rs")];
        let base = Baseline::from_findings(&fs);
        assert!(base.check(&fs).is_clean());
    }

    #[test]
    fn new_violation_grows() {
        let old = vec![finding(Rule::PanicSafety, "a.rs")];
        let base = Baseline::from_findings(&old);
        let new = vec![finding(Rule::PanicSafety, "a.rs"), finding(Rule::PanicSafety, "a.rs")];
        let check = base.check(&new);
        assert_eq!(check.grown.get("panic_safety|a.rs"), Some(&(1, 2)));
        assert!(check.stale.is_empty());
    }

    #[test]
    fn fixed_violation_makes_baseline_stale() {
        let old = vec![finding(Rule::LockOrder, "a.rs"), finding(Rule::LockOrder, "a.rs")];
        let base = Baseline::from_findings(&old);
        let check = base.check(&old[..1]);
        assert_eq!(check.stale.get("lock_order|a.rs"), Some(&(2, 1)));
        assert!(!check.is_clean(), "the ratchet only moves one way");
    }

    #[test]
    fn determinism_is_never_baselined() {
        let fs = vec![finding(Rule::Determinism, "a.rs")];
        let base = Baseline::from_findings(&fs);
        assert!(base.entries.is_empty());
    }

    #[test]
    fn roundtrips_through_json() {
        let fs = vec![finding(Rule::PanicSafety, "a.rs"), finding(Rule::LockOrder, "b.rs")];
        let base = Baseline::from_findings(&fs);
        let json = serde_json::to_string(&base)
            .map_err(|e| e.to_string())
            .and_then(|j| serde_json::parse(&j).map_err(|e| e.to_string()));
        let back: Baseline =
            json.and_then(|v| serde::Deserialize::from_value(&v)).unwrap_or_default();
        assert_eq!(back, base);
    }
}
