//! The Transformer-Estimator Graph: a rooted DAG of named operations whose
//! root→leaf paths are candidate pipelines (paper §IV, Fig. 3).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use coda_data::{BoxedEstimator, BoxedTransformer};

use crate::node::{Component, Node};
use crate::pipeline::Pipeline;

/// Error produced during graph construction or path enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no nodes.
    Empty,
    /// A referenced node name does not exist.
    UnknownNode(String),
    /// An edge would create a cycle.
    Cycle {
        /// Edge source.
        from: String,
        /// Edge destination.
        to: String,
    },
    /// A duplicate node name was explicitly registered.
    DuplicateName(String),
    /// A root→leaf path ends in a Transform operation (pipelines must end in
    /// an Estimate operation).
    PathEndsInTransformer(String),
    /// An internal path node is an Estimate operation (only the final node
    /// may estimate).
    EstimatorNotLast(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::Cycle { from, to } => {
                write!(f, "edge {from} -> {to} would create a cycle")
            }
            GraphError::DuplicateName(n) => write!(f, "duplicate node name {n}"),
            GraphError::PathEndsInTransformer(n) => {
                write!(f, "path ends in transformer {n}; pipelines must end in an estimator")
            }
            GraphError::EstimatorNotLast(n) => {
                write!(f, "estimator {n} appears before the end of a path")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A finalized Transformer-Estimator Graph `G(V, E)`.
#[derive(Debug, Clone)]
pub struct Teg {
    nodes: Vec<Node>,
    /// Adjacency: edges[i] = indices of successors of node i.
    edges: Vec<Vec<usize>>,
    roots: Vec<usize>,
    /// Stage boundaries (for display/DOT): stage -> node indices.
    stages: Vec<Vec<usize>>,
}

impl Teg {
    /// The graph's nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node index by name.
    pub fn node_index(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name() == name)
    }

    /// Successor indices of node `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// Root node indices (no predecessors).
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Stage structure used during construction (empty for hand-wired graphs).
    pub fn stages(&self) -> &[Vec<usize>] {
        &self.stages
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.iter().map(|s| s.len()).sum()
    }

    /// Enumerates every root→leaf path as a list of node indices.
    pub fn enumerate_paths(&self) -> Vec<Vec<usize>> {
        let mut paths = Vec::new();
        let mut stack = Vec::new();
        for &root in &self.roots {
            self.dfs(root, &mut stack, &mut paths);
        }
        paths
    }

    fn dfs(&self, node: usize, stack: &mut Vec<usize>, paths: &mut Vec<Vec<usize>>) {
        stack.push(node);
        if self.edges[node].is_empty() {
            paths.push(stack.clone());
        } else {
            for &next in &self.edges[node] {
                self.dfs(next, stack, paths);
            }
        }
        stack.pop();
    }

    /// Enumerates every root→leaf path as a runnable [`Pipeline`].
    ///
    /// # Errors
    ///
    /// [`GraphError::PathEndsInTransformer`] or
    /// [`GraphError::EstimatorNotLast`] when a path is not a valid pipeline.
    pub fn enumerate_pipelines(&self) -> Result<Vec<Pipeline>, GraphError> {
        self.enumerate_paths().into_iter().map(|p| self.pipeline_for_path(&p)).collect()
    }

    /// Builds the pipeline for one path of node indices.
    ///
    /// # Errors
    ///
    /// As for [`Teg::enumerate_pipelines`].
    pub fn pipeline_for_path(&self, path: &[usize]) -> Result<Pipeline, GraphError> {
        let mut steps = Vec::with_capacity(path.len());
        for (pos, &idx) in path.iter().enumerate() {
            let node = &self.nodes[idx];
            let last = pos == path.len() - 1;
            match node.component() {
                Component::Transform(_) if last => {
                    return Err(GraphError::PathEndsInTransformer(node.name().to_string()));
                }
                Component::Estimate(_) if !last => {
                    return Err(GraphError::EstimatorNotLast(node.name().to_string()));
                }
                _ => steps.push(node.clone()),
            }
        }
        Ok(Pipeline::from_nodes(steps))
    }

    /// Counts transformer prefixes across all root→leaf paths, returning
    /// `(distinct prefixes, total prefix visits)`.
    ///
    /// A prefix-cached evaluation (see `Evaluator::with_prefix_cache`) fits
    /// each *distinct* transformer prefix once per cross-validation fold
    /// and looks one prefix up per stage visit, so with no parameter grid
    /// the predicted per-fold cache accounting is `misses = distinct` and
    /// `hits = visits - distinct`. A linear chain has `distinct == visits`
    /// (nothing shared); a wide fan-out shares everything but the leaves.
    pub fn transform_prefix_counts(&self) -> (usize, usize) {
        let mut distinct = BTreeSet::new();
        let mut visits = 0usize;
        for path in self.enumerate_paths() {
            let mut chain = String::new();
            for &idx in &path {
                let node = &self.nodes[idx];
                if node.component().is_estimator() {
                    break;
                }
                if !chain.is_empty() {
                    chain.push('>');
                }
                chain.push_str(node.name());
                visits += 1;
                distinct.insert(chain.clone());
            }
        }
        (distinct.len(), visits)
    }

    /// Human-readable path name, e.g. `input -> robust_scaler -> pca -> rf`.
    pub fn path_name(&self, path: &[usize]) -> String {
        let mut s = String::from("input");
        for &i in path {
            s.push_str(" -> ");
            s.push_str(self.nodes[i].name());
        }
        s
    }
}

/// Builder for [`Teg`] graphs.
///
/// Two construction styles are supported, matching the paper:
///
/// * **Staged** (Listing 1): each [`TegBuilder::add_stage`] is fully
///   connected to the previous stage. Convenience wrappers
///   `add_feature_scalers` / `add_feature_selectors` / `add_models` mirror
///   the Python API verbatim.
/// * **Selective** (Fig. 11): register nodes with
///   [`TegBuilder::add_node`] and wire them explicitly with
///   [`TegBuilder::connect`] — this is how CascadedWindows connects only to
///   the temporal models.
#[derive(Debug, Default)]
pub struct TegBuilder {
    nodes: Vec<Node>,
    names: BTreeSet<String>,
    explicit_edges: Vec<(usize, usize)>,
    stages: Vec<Vec<usize>>,
    error: Option<GraphError>,
}

impl TegBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn unique_name(&mut self, base: &str) -> String {
        if self.names.insert(base.to_string()) {
            return base.to_string();
        }
        let mut k = 2;
        loop {
            let candidate = format!("{base}_{k}");
            if self.names.insert(candidate.clone()) {
                return candidate;
            }
            k += 1;
        }
    }

    fn push_node(&mut self, mut node: Node) -> usize {
        let name = self.unique_name(node.name());
        node.set_name(name);
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds a free node (selective wiring mode) and returns its final name.
    pub fn add_node(&mut self, node: Node) -> String {
        let idx = self.push_node(node);
        self.nodes[idx].name().to_string()
    }

    /// Adds a stage of nodes, fully connected to the previous stage.
    pub fn add_stage(mut self, nodes: Vec<Node>) -> Self {
        let idxs: Vec<usize> = nodes.into_iter().map(|n| self.push_node(n)).collect();
        if let Some(prev) = self.stages.last() {
            let prev = prev.clone();
            for &p in &prev {
                for &n in &idxs {
                    self.explicit_edges.push((p, n));
                }
            }
        }
        self.stages.push(idxs);
        self
    }

    /// Adds a feature-scaling stage (Listing 1's `add_feature_scalers`).
    pub fn add_feature_scalers(self, scalers: Vec<BoxedTransformer>) -> Self {
        self.add_stage(scalers.into_iter().map(|t| Node::auto(t.into())).collect())
    }

    /// Adds a feature-selection stage (Listing 1's `add_feature_selector`).
    pub fn add_feature_selectors(self, selectors: Vec<BoxedTransformer>) -> Self {
        self.add_stage(selectors.into_iter().map(|t| Node::auto(t.into())).collect())
    }

    /// Adds a generic transformer stage.
    pub fn add_transformers(self, transformers: Vec<BoxedTransformer>) -> Self {
        self.add_stage(transformers.into_iter().map(|t| Node::auto(t.into())).collect())
    }

    /// Adds a modelling stage (Listing 1's `add_regression_models`).
    pub fn add_models(self, models: Vec<BoxedEstimator>) -> Self {
        self.add_stage(models.into_iter().map(|e| Node::auto(e.into())).collect())
    }

    /// Wires an explicit edge between two named nodes (selective mode).
    /// Errors are deferred to [`TegBuilder::create_graph`].
    pub fn connect(&mut self, from: &str, to: &str) -> &mut Self {
        let fi = self.nodes.iter().position(|n| n.name() == from);
        let ti = self.nodes.iter().position(|n| n.name() == to);
        match (fi, ti) {
            (Some(f), Some(t)) => self.explicit_edges.push((f, t)),
            (None, _) => {
                self.error.get_or_insert(GraphError::UnknownNode(from.to_string()));
            }
            (_, None) => {
                self.error.get_or_insert(GraphError::UnknownNode(to.to_string()));
            }
        }
        self
    }

    /// Finalizes the graph (Listing 1's `create_graph`).
    ///
    /// # Errors
    ///
    /// [`GraphError::Empty`] for an empty builder; [`GraphError::Cycle`] if
    /// the wired edges are cyclic; deferred [`GraphError::UnknownNode`] from
    /// bad [`TegBuilder::connect`] calls.
    pub fn create_graph(self) -> Result<Teg, GraphError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = self.nodes.len();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (f, t) in self.explicit_edges {
            if seen.insert((f, t)) {
                edges[f].push(t);
                indegree[t] += 1;
            }
        }
        // cycle check via Kahn's algorithm
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut indeg = indegree.clone();
        let mut visited = 0usize;
        while let Some(u) = queue.pop() {
            visited += 1;
            for &v in &edges[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if visited != n {
            // report an arbitrary edge inside the cycle; a cycle always has
            // an edge with residual indegree, so the fallback edge is moot
            let (f, t) = seen
                .iter()
                .find(|(f, t)| indeg[*t] > 0 || indeg[*f] > 0)
                .or_else(|| seen.first())
                .copied()
                .unwrap_or((0, 0));
            return Err(GraphError::Cycle {
                from: self.nodes[f].name().to_string(),
                to: self.nodes[t].name().to_string(),
            });
        }
        let roots: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        Ok(Teg { nodes: self.nodes, edges, roots, stages: self.stages })
    }
}

/// Groups node indices by stage name prefix — convenience for reporting.
pub fn nodes_by_name(teg: &Teg) -> BTreeMap<&str, usize> {
    teg.nodes().iter().enumerate().map(|(i, n)| (n.name(), i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::{BoxedEstimator, BoxedTransformer, NoOp};
    use coda_ml::{
        DecisionTreeRegressor, KnnRegressor, LinearRegression, MinMaxScaler, Pca, RobustScaler,
        ScoreFunction, SelectKBest, StandardScaler,
    };

    fn listing1_graph() -> Teg {
        TegBuilder::new()
            .add_feature_scalers(vec![
                Box::new(MinMaxScaler::new()),
                Box::new(StandardScaler::new()),
                Box::new(RobustScaler::new()),
                Box::new(NoOp::new()),
            ])
            .add_feature_selectors(vec![
                Box::new(Pca::new(2)),
                Box::new(SelectKBest::new(2, ScoreFunction::FRegression)),
                Box::new(NoOp::new()),
            ])
            .add_models(vec![
                Box::new(DecisionTreeRegressor::new()),
                Box::new(KnnRegressor::new(5)),
                Box::new(LinearRegression::new()),
            ])
            .create_graph()
            .unwrap()
    }

    #[test]
    fn listing1_has_36_pipelines() {
        // 4 scalers x 3 selectors x 3 models = 36 (paper §IV-A)
        let g = listing1_graph();
        assert_eq!(g.enumerate_paths().len(), 36);
        assert_eq!(g.enumerate_pipelines().unwrap().len(), 36);
    }

    #[test]
    fn structure_counts() {
        let g = listing1_graph();
        assert_eq!(g.n_nodes(), 10);
        assert_eq!(g.n_edges(), 4 * 3 + 3 * 3);
        assert_eq!(g.roots().len(), 4);
        assert_eq!(g.stages().len(), 3);
    }

    #[test]
    fn duplicate_names_are_deduplicated() {
        let g = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(NoOp::new()), Box::new(NoOp::new())])
            .add_models(vec![Box::new(LinearRegression::new())])
            .create_graph()
            .unwrap();
        let names: Vec<&str> = g.nodes().iter().map(|n| n.name()).collect();
        assert!(names.contains(&"noop"));
        assert!(names.contains(&"noop_2"));
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(TegBuilder::new().create_graph().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn selective_wiring() {
        let mut b = TegBuilder::new();
        let a = b.add_node(Node::new("prep_a", (Box::new(NoOp::new()) as BoxedTransformer).into()));
        let c = b.add_node(Node::new("prep_b", (Box::new(NoOp::new()) as BoxedTransformer).into()));
        let m1 = b.add_node(Node::new(
            "model_1",
            (Box::new(LinearRegression::new()) as BoxedEstimator).into(),
        ));
        let m2 = b.add_node(Node::new(
            "model_2",
            (Box::new(KnnRegressor::new(3)) as BoxedEstimator).into(),
        ));
        // prep_a only feeds model_1; prep_b feeds both
        b.connect(&a, &m1);
        b.connect(&c, &m1);
        b.connect(&c, &m2);
        let g = b.create_graph().unwrap();
        let paths = g.enumerate_paths();
        assert_eq!(paths.len(), 3);
        let names: Vec<String> = paths.iter().map(|p| g.path_name(p)).collect();
        assert!(names.contains(&"input -> prep_a -> model_1".to_string()));
        assert!(!names.iter().any(|n| n.contains("prep_a -> model_2")));
    }

    #[test]
    fn connect_unknown_node_deferred_error() {
        let mut b = TegBuilder::new();
        b.add_node(Node::new("x", (Box::new(NoOp::new()) as BoxedTransformer).into()));
        b.connect("x", "nope");
        assert!(matches!(b.create_graph(), Err(GraphError::UnknownNode(_))));
    }

    #[test]
    fn cycle_detected() {
        let mut b = TegBuilder::new();
        let a = b.add_node(Node::new("a", (Box::new(NoOp::new()) as BoxedTransformer).into()));
        let c = b.add_node(Node::new("b", (Box::new(NoOp::new()) as BoxedTransformer).into()));
        b.connect(&a, &c);
        b.connect(&c, &a);
        assert!(matches!(b.create_graph(), Err(GraphError::Cycle { .. })));
    }

    #[test]
    fn path_ending_in_transformer_rejected() {
        let g = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(NoOp::new())])
            .create_graph()
            .unwrap();
        assert!(matches!(g.enumerate_pipelines(), Err(GraphError::PathEndsInTransformer(_))));
    }

    #[test]
    fn estimator_mid_path_rejected() {
        let mut b = TegBuilder::new();
        let m = b
            .add_node(Node::new("m", (Box::new(LinearRegression::new()) as BoxedEstimator).into()));
        let t = b.add_node(Node::new("t", (Box::new(NoOp::new()) as BoxedTransformer).into()));
        let m2 = b.add_node(Node::new(
            "m2",
            (Box::new(LinearRegression::new()) as BoxedEstimator).into(),
        ));
        b.connect(&m, &t);
        b.connect(&t, &m2);
        let g = b.create_graph().unwrap();
        assert!(matches!(g.enumerate_pipelines(), Err(GraphError::EstimatorNotLast(_))));
    }

    #[test]
    fn duplicate_edges_collapsed() {
        let mut b = TegBuilder::new();
        let a = b.add_node(Node::new("a", (Box::new(NoOp::new()) as BoxedTransformer).into()));
        let m = b
            .add_node(Node::new("m", (Box::new(LinearRegression::new()) as BoxedEstimator).into()));
        b.connect(&a, &m);
        b.connect(&a, &m);
        let g = b.create_graph().unwrap();
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.enumerate_paths().len(), 1);
    }

    #[test]
    fn prefix_counts_linear_vs_fanout() {
        // linear chain: 1 path, 2 transformer stages, nothing shared
        let linear = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new())])
            .add_feature_selectors(vec![Box::new(Pca::new(2))])
            .add_models(vec![Box::new(LinearRegression::new())])
            .create_graph()
            .unwrap();
        assert_eq!(linear.transform_prefix_counts(), (2, 2));
        // fan-out: 3 models share one 2-stage prefix
        let fanout = TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new())])
            .add_feature_selectors(vec![Box::new(Pca::new(2))])
            .add_models(vec![
                Box::new(LinearRegression::new()),
                Box::new(KnnRegressor::new(3)),
                Box::new(DecisionTreeRegressor::new()),
            ])
            .create_graph()
            .unwrap();
        // distinct: scaler, scaler>pca; visits: 3 paths x 2 stages
        assert_eq!(fanout.transform_prefix_counts(), (2, 6));
        // listing1: 4 scalers + 4x3 selector chains distinct; 36 paths x 2
        assert_eq!(listing1_graph().transform_prefix_counts(), (4 + 12, 72));
    }

    #[test]
    fn path_name_format() {
        let g = listing1_graph();
        let paths = g.enumerate_paths();
        let name = g.path_name(&paths[0]);
        assert!(name.starts_with("input -> "));
        assert_eq!(name.matches(" -> ").count(), 3);
    }
}
