//! Offline stand-in for `proptest`: the `proptest!` macro, range/`any`
//! strategies and `prop_assert*` macros over a deterministic per-test RNG.
//! No shrinking — a failing case reports its index and seed instead.

use std::ops::Range;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a property case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Deterministic test RNG (SplitMix64 keyed by the property name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `key`.
    pub fn from_key(key: &str) -> Self {
        let mut state = 0x9E3779B97F4A7C15u64;
        for b in key.bytes() {
            state = (state ^ b as u64).wrapping_mul(0x100000001B3);
        }
        TestRng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [lo, hi).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a full-range [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, broad-range floats; NaN/inf handling is a non-goal here
        (rng.next_f64() - 0.5) * 2.0e6
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface mirrored from real proptest.

    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests. Mirrors real proptest's surface syntax:
/// an optional `#![proptest_config(..)]` inner attribute followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_key(concat!(module_path!(), "::", stringify!($name)));
            let mut ran = 0u32;
            let mut attempts = 0u32;
            while ran < config.cases && attempts < config.cases * 16 {
                attempts += 1;
                $(let $arg = $crate::Strategy::sample(&{ $strategy }, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed on case {} (attempt {}): {}",
                            stringify!($name), ran, attempts, msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not panicking
/// directly) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_skips(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0, "n = {} should be even", n);
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(any::<u8>(), 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
        }

        #[test]
        fn nested_vec(vv in collection::vec(collection::vec(any::<u8>(), 0..4), 1..5)) {
            prop_assert!(!vv.is_empty());
            for v in &vv {
                prop_assert!(v.len() < 4);
            }
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::from_key("k");
        let mut b = TestRng::from_key("k");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(TestRng::from_key("k").next_u64(), TestRng::from_key("k2").next_u64());
    }
}
