//! End-to-end gates for the D9 incident-diagnosis drill: ground-truth
//! attribution, byte-identical determinism across re-runs *and* shard
//! counts, and serde round-trips of the report schemas (including the
//! empty-incident and no-exemplar edges).

use coda_bench::{run_diag_report, DiagBundle};
use coda_obs::DiagReport;

const SEED: u64 = 7;

#[test]
fn diag_bundle_attributes_every_scenario_to_its_injected_cause() {
    let bundle = run_diag_report(SEED, 2);

    // clean: no fault injected, no incident raised
    assert_eq!(bundle.clean.incidents, 0, "clean run must diagnose to zero incidents");
    assert_eq!(bundle.clean.attributed, 1);

    // fault pair: every injected family appears among some incident's suspects
    assert!(bundle.fault.incidents > 0, "the D8 fault run must raise incidents");
    assert_eq!(
        bundle.fault.attributed, 1,
        "fault suspects {:?} must cover {:?}",
        bundle.fault.top_suspects, bundle.fault.injected
    );

    // hot shard: the per-shard queue-wait split is the top suspect of
    // every incident — not the aggregate, not the shed counter
    assert!(bundle.hot_shard.incidents > 0);
    assert_eq!(
        bundle.hot_shard.attributed, 1,
        "hot-shard top suspects {:?} must all equal {:?}",
        bundle.hot_shard.top_suspects, bundle.hot_shard.injected
    );

    // slow operator: blamed by operator identity, `name[spec]`
    assert!(bundle.slow_operator.incidents > 0);
    assert_eq!(
        bundle.slow_operator.attributed, 1,
        "slow-operator top suspects {:?} must all equal {:?}",
        bundle.slow_operator.top_suspects, bundle.slow_operator.injected
    );
    assert!(bundle.all_attributed());
}

#[test]
fn diag_bundle_is_byte_identical_across_reruns_and_shard_counts() {
    let one = run_diag_report(SEED, 1).to_json();
    let two = run_diag_report(SEED, 2).to_json();
    let eight = run_diag_report(SEED, 8).to_json();
    let two_again = run_diag_report(SEED, 2).to_json();
    assert_eq!(two, two_again, "same seed, same shards: must render byte-identically");
    assert_eq!(one, two, "one vs two shards must render byte-identically");
    assert_eq!(two, eight, "two vs eight shards must render byte-identically");
}

#[test]
fn diag_bundle_round_trips_through_json() {
    let bundle = run_diag_report(SEED, 2);
    let parsed = DiagBundle::from_json(&bundle.to_json()).expect("round-trip");
    assert_eq!(parsed, bundle);
}

#[test]
fn empty_and_no_exemplar_reports_round_trip() {
    // the clean scenario is the canonical empty-incident report
    let bundle = run_diag_report(SEED, 2);
    let clean = &bundle.clean.report;
    assert!(clean.incidents.is_empty());
    let parsed = DiagReport::from_json(&clean.to_json()).expect("empty report round-trip");
    assert_eq!(&parsed, clean);

    // a hand-built incident with no exemplars (hence no operator suspects,
    // no critical path) must survive the trip too
    let report = DiagReport {
        schema: "coda-diag-report-v1".to_string(),
        incidents: vec![coda_obs::Incident {
            slo: "serve-queue-wait".to_string(),
            first_breach_ms: 900.0,
            last_breach_ms: 1600.0,
            breaches: 8,
            max_long_burn: 5.0,
            max_short_burn: 18.0,
            baseline_windows: 6,
            anomaly_windows: 9,
            series_suspects: Vec::new(),
            operator_suspects: Vec::new(),
            shard_suspects: Vec::new(),
            critical_path: Vec::new(),
            top_suspect: String::new(),
        }],
    };
    let parsed = DiagReport::from_json(&report.to_json()).expect("no-exemplar round-trip");
    assert_eq!(parsed, report);
}
