/root/repo/target/release/deps/coda_cluster-c44e98d43a0e37b9.d: crates/cluster/src/lib.rs crates/cluster/src/chaos.rs crates/cluster/src/coop.rs crates/cluster/src/lifecycle.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs

/root/repo/target/release/deps/libcoda_cluster-c44e98d43a0e37b9.rlib: crates/cluster/src/lib.rs crates/cluster/src/chaos.rs crates/cluster/src/coop.rs crates/cluster/src/lifecycle.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs

/root/repo/target/release/deps/libcoda_cluster-c44e98d43a0e37b9.rmeta: crates/cluster/src/lib.rs crates/cluster/src/chaos.rs crates/cluster/src/coop.rs crates/cluster/src/lifecycle.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/placement.rs crates/cluster/src/registry.rs crates/cluster/src/webservice.rs

crates/cluster/src/lib.rs:
crates/cluster/src/chaos.rs:
crates/cluster/src/coop.rs:
crates/cluster/src/lifecycle.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/placement.rs:
crates/cluster/src/registry.rs:
crates/cluster/src/webservice.rs:
