/root/repo/target/debug/deps/coda_nn-265a386630f6ca91.d: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/estimators.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/network.rs crates/nn/src/optim.rs crates/nn/src/residual.rs

/root/repo/target/debug/deps/libcoda_nn-265a386630f6ca91.rlib: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/estimators.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/network.rs crates/nn/src/optim.rs crates/nn/src/residual.rs

/root/repo/target/debug/deps/libcoda_nn-265a386630f6ca91.rmeta: crates/nn/src/lib.rs crates/nn/src/conv.rs crates/nn/src/estimators.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/network.rs crates/nn/src/optim.rs crates/nn/src/residual.rs

crates/nn/src/lib.rs:
crates/nn/src/conv.rs:
crates/nn/src/estimators.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/network.rs:
crates/nn/src/optim.rs:
crates/nn/src/residual.rs:
