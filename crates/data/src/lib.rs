//! Datasets, component traits, metrics, cross-validation and synthetic data
//! for the `coda` analytics stack.
//!
//! This crate defines the *contract* every analytics component in the system
//! obeys — the [`Transformer`] and [`Estimator`] traits of the paper's
//! Transformer-Estimator Graph — plus the data plumbing that real analytics
//! needs and the paper calls out explicitly: imputation of missing values,
//! outlier detection, scoring metrics, and cross-validation strategies
//! (including the `TimeSeriesSlidingSplit` of Fig. 12).
//!
//! # Examples
//!
//! ```
//! use coda_data::{synth, metrics};
//!
//! let ds = synth::linear_regression(100, 3, 0.1, 42);
//! assert_eq!(ds.n_samples(), 100);
//! assert_eq!(ds.n_features(), 3);
//! let y = ds.target().unwrap();
//! let yhat: Vec<f64> = y.to_vec();
//! assert_eq!(metrics::mse(y, &yhat).unwrap(), 0.0);
//! ```

pub mod cv;
pub mod dataset;
pub mod impute;
pub mod impute_advanced;
pub mod metrics;
pub mod outlier;
pub mod survival;
pub mod synth;
pub mod traits;

pub use cv::{CvStrategy, Split};
pub use dataset::{Dataset, DatasetError};
pub use metrics::Metric;
pub use traits::{
    BoxedEstimator, BoxedTransformer, ComponentError, Estimator, NoOp, ParamValue, Params,
    TaskKind, Transformer,
};
