/root/repo/target/debug/deps/coda_core-456e3bf2ebee4562.d: crates/core/src/lib.rs crates/core/src/dot.rs crates/core/src/eval.rs crates/core/src/graph.rs crates/core/src/grid.rs crates/core/src/node.rs crates/core/src/pipeline.rs crates/core/src/search.rs crates/core/src/tuning.rs

/root/repo/target/debug/deps/coda_core-456e3bf2ebee4562: crates/core/src/lib.rs crates/core/src/dot.rs crates/core/src/eval.rs crates/core/src/graph.rs crates/core/src/grid.rs crates/core/src/node.rs crates/core/src/pipeline.rs crates/core/src/search.rs crates/core/src/tuning.rs

crates/core/src/lib.rs:
crates/core/src/dot.rs:
crates/core/src/eval.rs:
crates/core/src/graph.rs:
crates/core/src/grid.rs:
crates/core/src/node.rs:
crates/core/src/pipeline.rs:
crates/core/src/search.rs:
crates/core/src/tuning.rs:
