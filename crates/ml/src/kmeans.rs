//! k-means clustering (substrate for the Cohort Analysis solution template,
//! §IV-E).

use coda_data::{ComponentError, Dataset};
use coda_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lloyd's k-means with k-means++ initialization.
///
/// # Examples
///
/// ```
/// use coda_data::synth;
/// use coda_ml::KMeans;
///
/// let (ds, truth) = synth::cohort_data(90, 3, 4, 11);
/// let km = KMeans::new(3).with_seed(1).fit(&ds)?;
/// let labels = km.predict(&ds)?;
/// assert_eq!(labels.len(), 90);
/// # drop(truth);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    seed: u64,
    restarts: usize,
    centers: Option<Matrix>,
    inertia: Option<f64>,
}

impl KMeans {
    /// Creates a k-means model with `k` clusters and 4 random restarts
    /// (the lowest-inertia run wins, like scikit-learn's `n_init`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KMeans { k, max_iter: 100, seed: 0, restarts: 4, centers: None, inertia: None }
    }

    /// Sets the number of random restarts.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_restarts(mut self, n: usize) -> Self {
        assert!(n > 0, "restarts must be positive");
        self.restarts = n;
        self
    }

    /// Sets the initialization seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iter(mut self, n: usize) -> Self {
        self.max_iter = n.max(1);
        self
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Within-cluster sum of squared distances after fitting.
    pub fn inertia(&self) -> Option<f64> {
        self.inertia
    }

    /// Fitted cluster centres (k x d), if fitted.
    pub fn centers(&self) -> Option<&Matrix> {
        self.centers.as_ref()
    }

    /// Fits the model, consuming and returning `self` for chaining. Runs
    /// the configured number of restarts and keeps the lowest-inertia one.
    ///
    /// # Errors
    ///
    /// [`ComponentError::InvalidInput`] if there are fewer samples than
    /// clusters.
    pub fn fit(mut self, data: &Dataset) -> Result<KMeans, ComponentError> {
        let mut best: Option<(f64, Matrix)> = None;
        for r in 0..self.restarts {
            let seed = self.seed.wrapping_add(r as u64).wrapping_mul(0x9E3779B9);
            let (inertia, centers) = self.fit_once(data, seed)?;
            if best.as_ref().is_none_or(|(bi, _)| inertia < *bi) {
                best = Some((inertia, centers));
            }
        }
        let (inertia, centers) = best.expect("restarts >= 1");
        self.inertia = Some(inertia);
        self.centers = Some(centers);
        Ok(self)
    }

    /// One Lloyd run from a seeded k-means++ initialization.
    fn fit_once(&self, data: &Dataset, seed: u64) -> Result<(f64, Matrix), ComponentError> {
        let x = data.features();
        let n = x.rows();
        let d = x.cols();
        if n < self.k {
            return Err(ComponentError::InvalidInput(format!(
                "{n} samples cannot form {} clusters",
                self.k
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        // k-means++ seeding
        let mut centers = Matrix::zeros(self.k, d);
        let first = rng.gen_range(0..n);
        centers.row_mut(0).copy_from_slice(x.row(first));
        let mut dist2: Vec<f64> = (0..n).map(|i| sq_dist(x.row(i), centers.row(0))).collect();
        for c in 1..self.k {
            let total: f64 = dist2.iter().sum();
            let pick = if total <= 0.0 {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &d2) in dist2.iter().enumerate() {
                    if target < d2 {
                        chosen = i;
                        break;
                    }
                    target -= d2;
                }
                chosen
            };
            centers.row_mut(c).copy_from_slice(x.row(pick));
            for (i, d2) in dist2.iter_mut().enumerate() {
                *d2 = d2.min(sq_dist(x.row(i), centers.row(c)));
            }
        }
        // Lloyd iterations
        let mut assign = vec![0usize; n];
        for _ in 0..self.max_iter {
            let mut changed = false;
            for (i, slot) in assign.iter_mut().enumerate() {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for c in 0..self.k {
                    let d2 = sq_dist(x.row(i), centers.row(c));
                    if d2 < best_d {
                        best_d = d2;
                        best = c;
                    }
                }
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            // recompute centres
            let mut sums = Matrix::zeros(self.k, d);
            let mut counts = vec![0usize; self.k];
            for i in 0..n {
                counts[assign[i]] += 1;
                let row = x.row(i);
                let srow = sums.row_mut(assign[i]);
                for (s, &v) in srow.iter_mut().zip(row) {
                    *s += v;
                }
            }
            for (c, &count) in counts.iter().enumerate() {
                if count == 0 {
                    // re-seed an empty cluster at a random sample
                    let pick = rng.gen_range(0..n);
                    centers.row_mut(c).copy_from_slice(x.row(pick));
                } else {
                    let crow = centers.row_mut(c);
                    for (cv, sv) in crow.iter_mut().zip(sums.row(c)) {
                        *cv = sv / counts[c] as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let inertia: f64 = (0..n).map(|i| sq_dist(x.row(i), centers.row(assign[i]))).sum();
        Ok((inertia, centers))
    }

    /// Assigns each sample to its nearest fitted centre.
    ///
    /// # Errors
    ///
    /// [`ComponentError::NotFitted`] before fitting.
    pub fn predict(&self, data: &Dataset) -> Result<Vec<usize>, ComponentError> {
        let centers =
            self.centers.as_ref().ok_or_else(|| ComponentError::NotFitted("kmeans".to_string()))?;
        if centers.cols() != data.n_features() {
            return Err(ComponentError::InvalidInput(format!(
                "model fitted on {} features, input has {}",
                centers.cols(),
                data.n_features()
            )));
        }
        Ok(data
            .features()
            .iter_rows()
            .map(|row| {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for c in 0..centers.rows() {
                    let d2 = sq_dist(row, centers.row(c));
                    if d2 < best_d {
                        best_d = d2;
                        best = c;
                    }
                }
                best
            })
            .collect())
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Cluster purity against ground-truth labels: for each cluster take its
/// majority true label, sum the majorities, divide by n. 1.0 = perfect.
pub fn purity(assignments: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(assignments.len(), truth.len(), "length mismatch");
    if assignments.is_empty() {
        return 0.0;
    }
    let mut per_cluster: std::collections::BTreeMap<
        usize,
        std::collections::BTreeMap<usize, usize>,
    > = std::collections::BTreeMap::new();
    for (&a, &t) in assignments.iter().zip(truth) {
        *per_cluster.entry(a).or_default().entry(t).or_insert(0) += 1;
    }
    let majority_sum: usize =
        per_cluster.values().map(|counts| counts.values().copied().max().unwrap_or(0)).sum();
    majority_sum as f64 / assignments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_data::synth;

    #[test]
    fn recovers_well_separated_cohorts() {
        let (ds, truth) = synth::cohort_data(120, 3, 4, 71);
        let km = KMeans::new(3).with_seed(3).fit(&ds).unwrap();
        let labels = km.predict(&ds).unwrap();
        assert!(purity(&labels, &truth) > 0.9);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (ds, _) = synth::cohort_data(150, 5, 3, 72);
        let i2 = KMeans::new(2).with_seed(1).fit(&ds).unwrap().inertia().unwrap();
        let i5 = KMeans::new(5).with_seed(1).fit(&ds).unwrap().inertia().unwrap();
        assert!(i5 < i2);
    }

    #[test]
    fn deterministic_given_seed() {
        let (ds, _) = synth::cohort_data(80, 4, 3, 73);
        let a = KMeans::new(4).with_seed(9).fit(&ds).unwrap().predict(&ds).unwrap();
        let b = KMeans::new(4).with_seed(9).fit(&ds).unwrap().predict(&ds).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors() {
        let (ds, _) = synth::cohort_data(10, 2, 3, 74);
        assert!(KMeans::new(20).fit(&ds).is_err()); // more clusters than samples
        let unfitted = KMeans::new(2);
        assert!(unfitted.predict(&ds).is_err());
        let km = KMeans::new(2).fit(&ds).unwrap();
        let (other, _) = synth::cohort_data(10, 2, 5, 74);
        assert!(km.predict(&other).is_err());
    }

    #[test]
    fn purity_bounds() {
        assert_eq!(purity(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        assert_eq!(purity(&[0, 0, 0, 0], &[0, 1, 2, 3]), 0.25);
        assert_eq!(purity(&[], &[]), 0.0);
    }

    #[test]
    fn k1_center_is_mean() {
        let (ds, _) = synth::cohort_data(50, 2, 3, 75);
        let km = KMeans::new(1).with_seed(1).fit(&ds).unwrap();
        let center = km.centers().unwrap().row(0).to_vec();
        let means = ds.features().column_means();
        for (c, m) in center.iter().zip(means) {
            assert!((c - m).abs() < 1e-9);
        }
    }
}
