/root/repo/target/debug/deps/coda_chaos-958f415f3811ea26.d: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/retry.rs

/root/repo/target/debug/deps/libcoda_chaos-958f415f3811ea26.rlib: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/retry.rs

/root/repo/target/debug/deps/libcoda_chaos-958f415f3811ea26.rmeta: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/retry.rs

crates/chaos/src/lib.rs:
crates/chaos/src/fault.rs:
crates/chaos/src/retry.rs:
