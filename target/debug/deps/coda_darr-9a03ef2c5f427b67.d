/root/repo/target/debug/deps/coda_darr-9a03ef2c5f427b67.d: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_darr-9a03ef2c5f427b67.rmeta: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs Cargo.toml

crates/darr/src/lib.rs:
crates/darr/src/coop.rs:
crates/darr/src/record.rs:
crates/darr/src/repo.rs:
crates/darr/src/resilient.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
