//! A caching client of a home data store: holds local versions, pulls with
//! version-aware fetches, and applies push messages (full, delta or
//! notify-then-pull).

use bytes::Bytes;
use std::collections::BTreeMap;

use crate::delta::{DeltaCodec, DeltaError};
use crate::home::{FetchReply, HomeDataStore};
use crate::lease::UpdateMessage;

/// Error produced when applying an update to the local cache.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// A delta arrived for a version the client does not hold.
    BaseVersionMismatch {
        /// Version the delta needs.
        needed: u64,
        /// Version the client holds (0 = none).
        held: u64,
    },
    /// Delta application failed.
    Delta(DeltaError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BaseVersionMismatch { needed, held } => {
                write!(f, "delta needs base version {needed}, client holds {held}")
            }
            ClientError::Delta(e) => write!(f, "delta application failed: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<DeltaError> for ClientError {
    fn from(e: DeltaError) -> Self {
        ClientError::Delta(e)
    }
}

/// A client-side object cache.
#[derive(Debug, Clone, Default)]
pub struct CachingClient {
    name: String,
    cache: BTreeMap<String, (u64, Bytes)>,
    /// Bytes received over all pulls/pushes.
    pub bytes_received: u64,
}

impl CachingClient {
    /// Creates a named client with an empty cache.
    pub fn new<S: Into<String>>(name: S) -> Self {
        CachingClient { name: name.into(), cache: BTreeMap::new(), bytes_received: 0 }
    }

    /// The client's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The locally-held version of `object` (None if uncached).
    pub fn held_version(&self, object: &str) -> Option<u64> {
        self.cache.get(object).map(|(v, _)| *v)
    }

    /// The locally-held bytes of `object`.
    pub fn held_data(&self, object: &str) -> Option<&Bytes> {
        self.cache.get(object).map(|(_, d)| d)
    }

    /// Pulls the latest version from the home store, passing the held
    /// version so the store can reply with a delta (paper §III).
    ///
    /// # Errors
    ///
    /// [`ClientError`] when a received delta cannot be applied.
    pub fn pull(&mut self, store: &mut HomeDataStore, object: &str) -> Result<bool, ClientError> {
        let held = self.held_version(object);
        let Some(reply) = store.fetch(object, held).expect("infallible") else {
            return Ok(false);
        };
        self.bytes_received += reply.wire_size() as u64;
        match reply {
            FetchReply::UpToDate { .. } => Ok(true),
            FetchReply::Full { version, data } => {
                self.cache.insert(object.to_string(), (version, data));
                Ok(true)
            }
            FetchReply::Delta(delta) => {
                let (held_v, held_data) = self
                    .cache
                    .get(object)
                    .cloned()
                    .ok_or(ClientError::BaseVersionMismatch {
                        needed: delta.base_version,
                        held: 0,
                    })?;
                if held_v != delta.base_version {
                    return Err(ClientError::BaseVersionMismatch {
                        needed: delta.base_version,
                        held: held_v,
                    });
                }
                let rebuilt = DeltaCodec::apply(&held_data, &delta)?;
                self.cache
                    .insert(object.to_string(), (delta.target_version, rebuilt));
                Ok(true)
            }
        }
    }

    /// Applies a push message. `Notify` messages only record that the cache
    /// is stale; call [`CachingClient::pull`] to refresh on demand.
    ///
    /// # Errors
    ///
    /// [`ClientError`] when a pushed delta cannot be applied.
    pub fn apply_push(&mut self, message: &UpdateMessage) -> Result<(), ClientError> {
        self.bytes_received += message.wire_size() as u64;
        match message {
            UpdateMessage::Full { object, version, data, .. } => {
                self.cache.insert(object.clone(), (*version, data.clone()));
                Ok(())
            }
            UpdateMessage::Delta { object, delta, .. } => {
                let (held_v, held_data) = self
                    .cache
                    .get(object)
                    .cloned()
                    .ok_or(ClientError::BaseVersionMismatch {
                        needed: delta.base_version,
                        held: 0,
                    })?;
                if held_v != delta.base_version {
                    return Err(ClientError::BaseVersionMismatch {
                        needed: delta.base_version,
                        held: held_v,
                    });
                }
                let rebuilt = DeltaCodec::apply(&held_data, delta)?;
                self.cache.insert(object.clone(), (delta.target_version, rebuilt));
                Ok(())
            }
            UpdateMessage::Notify { .. } => Ok(()),
        }
    }

    /// True when the client's held version of `object` is behind `store`.
    pub fn is_stale(&self, store: &HomeDataStore, object: &str) -> bool {
        match (self.held_version(object), store.version_of(object)) {
            (Some(h), Some(s)) => h < s,
            (None, Some(_)) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lease::PushMode;

    fn patterned(n: usize, seed: u8) -> Bytes {
        Bytes::from(
            (0..n).map(|i| ((i as u64 * 13 + seed as u64) % 241) as u8).collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn pull_full_then_delta() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        let base = patterned(20_000, 1);
        store.put("o", base.clone());
        assert!(client.pull(&mut store, "o").unwrap());
        assert_eq!(client.held_version("o"), Some(1));
        let full_bytes = client.bytes_received;

        let mut v2 = base.to_vec();
        v2[100] ^= 0xFF;
        store.put("o", Bytes::from(v2.clone()));
        assert!(client.is_stale(&store, "o"));
        client.pull(&mut store, "o").unwrap();
        assert_eq!(client.held_version("o"), Some(2));
        assert_eq!(&client.held_data("o").unwrap()[..], &v2[..]);
        // the delta pull must be far cheaper than the initial full pull
        let delta_bytes = client.bytes_received - full_bytes;
        assert!(delta_bytes < full_bytes / 10, "delta {delta_bytes} vs full {full_bytes}");
    }

    #[test]
    fn pull_missing_object() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        assert!(!client.pull(&mut store, "nope").unwrap());
    }

    #[test]
    fn pull_up_to_date_costs_header_only() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        store.put("o", patterned(1000, 2));
        client.pull(&mut store, "o").unwrap();
        let before = client.bytes_received;
        client.pull(&mut store, "o").unwrap();
        assert_eq!(client.bytes_received - before, 16);
        assert!(!client.is_stale(&store, "o"));
    }

    #[test]
    fn push_full_and_delta_apply() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        let base = patterned(10_000, 3);
        store.put("o", base.clone());
        client.pull(&mut store, "o").unwrap();
        store.subscribe("c", "o", PushMode::Delta, 100);
        let mut v2 = base.to_vec();
        v2[0] ^= 1;
        let (_, messages) = store.put("o", Bytes::from(v2.clone()));
        assert_eq!(messages.len(), 1);
        client.apply_push(&messages[0]).unwrap();
        assert_eq!(client.held_version("o"), Some(2));
        assert_eq!(&client.held_data("o").unwrap()[..], &v2[..]);
    }

    #[test]
    fn notify_then_on_demand_pull() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        let base = patterned(10_000, 4);
        store.put("o", base.clone());
        client.pull(&mut store, "o").unwrap();
        store.subscribe("c", "o", PushMode::NotifyOnly, 100);
        let mut v2 = base.to_vec();
        v2[9] ^= 0xF0;
        let (_, messages) = store.put("o", Bytes::from(v2));
        client.apply_push(&messages[0]).unwrap();
        // notify does not update the cache...
        assert_eq!(client.held_version("o"), Some(1));
        assert!(client.is_stale(&store, "o"));
        // ...until the client decides to pull
        client.pull(&mut store, "o").unwrap();
        assert_eq!(client.held_version("o"), Some(2));
    }

    #[test]
    fn delta_for_wrong_base_rejected() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        let base = patterned(10_000, 5);
        store.put("o", base.clone());
        // client never pulled; a delta push cannot apply
        store.subscribe("c", "o", PushMode::Delta, 100);
        let mut v2 = base.to_vec();
        v2[1] ^= 1;
        let (_, messages) = store.put("o", Bytes::from(v2));
        let err = client.apply_push(&messages[0]).unwrap_err();
        assert!(matches!(err, ClientError::BaseVersionMismatch { held: 0, .. }));
    }
}
