//! F2 bench: cooperative vs independent multi-client graph evaluation
//! through the DARR.

use coda_bench::small_graph;
use coda_cluster::run_cooperative;
use coda_data::{synth, CvStrategy, Metric};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_coop(c: &mut Criterion) {
    let ds = synth::friedman1(120, 6, 0.5, 1);
    let graph = small_graph();
    let mut group = c.benchmark_group("darr/4_clients_8_pipelines");
    group.sample_size(10);
    for (name, use_darr) in [("independent", false), ("cooperative", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &use_darr, |b, &d| {
            b.iter(|| run_cooperative(&graph, &ds, CvStrategy::kfold(3), Metric::Rmse, 4, d))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coop);
criterion_main!(benches);
