//! Concurrency property: spans emitted from many threads at once — nested
//! implicit spans, explicit child spans, point events — always reconstruct
//! into a coherent forest with no orphaned parents, because parenting
//! state is kept per thread and ids are allocated atomically.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use coda_obs::{Obs, SpanId};
use proptest::prelude::*;

/// Each thread emits `depth` lexically nested spans with a point event at
/// the bottom, repeated `rounds` times; one shared root is handed to every
/// thread so cross-thread explicit parenting is exercised too.
fn hammer(n_threads: usize, depth: usize, rounds: usize) -> Obs {
    let obs = Obs::wall();
    let root = obs.tracer().begin_span("root", None, &[]);
    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let obs = obs.clone();
            scope.spawn(move || {
                let label = format!("worker-{t}");
                for _ in 0..rounds {
                    let outer = obs.span_child(root, "outer", &[("worker", &label)]);
                    let mut guards = Vec::new();
                    for level in 0..depth {
                        let name = format!("nest-{level}");
                        guards.push(obs.span(&name, &[]));
                    }
                    obs.event("leaf", &[("worker", &label)]);
                    drop(guards);
                    drop(outer);
                }
            });
        }
    });
    obs.tracer().end_span(root, &[]);
    obs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn concurrent_spans_reconstruct_without_orphans(
        thread_pick in 0usize..3,
        depth in 1usize..4,
        rounds in 1usize..4,
    ) {
        let n_threads = [1usize, 2, 8][thread_pick];
        let obs = hammer(n_threads, depth, rounds);
        let forest = obs.forest();

        // no span may reference a missing parent, no event may dangle,
        // and the shared root keeps everything in one trace
        prop_assert!(forest.orphans().is_empty());
        prop_assert_eq!(forest.unresolved_points(), 0);
        prop_assert_eq!(forest.trace_ids().len(), 1);

        // every span is present exactly once with a fully closed lifetime
        let expected = 1 + n_threads * rounds * (1 + depth);
        prop_assert_eq!(forest.len(), expected);
        for span in forest.spans() {
            // spans close after they open
            prop_assert!(span.end_ms >= span.start_ms);
        }

        // implicit nesting holds per thread: each nest-N parents to the
        // previous level, and each outer span parents to the shared root
        let root_id = forest.roots_of(forest.trace_ids()[0])[0];
        for span in forest.spans() {
            match span.name.as_str() {
                "outer" => prop_assert_eq!(span.parent, Some(root_id)),
                "nest-0" => {
                    let parent = span.parent.expect("nest-0 has a parent");
                    prop_assert_eq!(&forest.span(parent).unwrap().name, "outer");
                }
                name if name.starts_with("nest-") => {
                    let level: usize = name["nest-".len()..].parse().unwrap();
                    let parent: SpanId = span.parent.expect("nested spans have parents");
                    prop_assert_eq!(
                        &forest.span(parent).unwrap().name,
                        &format!("nest-{}", level - 1)
                    );
                }
                _ => {}
            }
        }
    }
}
