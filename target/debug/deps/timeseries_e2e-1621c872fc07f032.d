/root/repo/target/debug/deps/timeseries_e2e-1621c872fc07f032.d: tests/timeseries_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libtimeseries_e2e-1621c872fc07f032.rmeta: tests/timeseries_e2e.rs Cargo.toml

tests/timeseries_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
