//! Computation keys and result records.

use std::fmt;

/// The identity of one analytics computation: dataset (id + version),
/// pipeline spec key, CV configuration and metric. Two equal keys denote a
/// redundant computation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComputationKey {
    /// Dataset identifier.
    pub dataset_id: String,
    /// Dataset version the computation ran against.
    pub dataset_version: u64,
    /// Canonical pipeline spec key (steps + params; see
    /// `coda_core::PipelineSpec::key`).
    pub pipeline: String,
    /// Cross-validation configuration, rendered canonically.
    pub cv: String,
    /// Scoring metric name.
    pub metric: String,
}

impl ComputationKey {
    /// Creates a key.
    pub fn new<S: Into<String>>(
        dataset_id: S,
        dataset_version: u64,
        pipeline: S,
        cv: S,
        metric: S,
    ) -> Self {
        ComputationKey {
            dataset_id: dataset_id.into(),
            dataset_version,
            pipeline: pipeline.into(),
            cv: cv.into(),
            metric: metric.into(),
        }
    }

    /// The same computation against a different dataset version.
    pub fn at_version(&self, version: u64) -> ComputationKey {
        let mut k = self.clone();
        k.dataset_version = version;
        k
    }
}

impl fmt::Display for ComputationKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@v{}/{}/{}/{}",
            self.dataset_id, self.dataset_version, self.pipeline, self.cv, self.metric
        )
    }
}

/// A stored analytics result, with the explanation of how it was achieved
/// (paper: clients place results "along with an explanation of how the
/// results were achieved" in the DARR).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticsRecord {
    /// What was computed.
    pub key: ComputationKey,
    /// The final (mean) score.
    pub score: f64,
    /// Per-fold scores.
    pub fold_scores: Vec<f64>,
    /// Free-form provenance/explanation.
    pub explanation: String,
    /// Client that produced the result.
    pub producer: String,
    /// Logical time the result was stored.
    pub stored_at: u64,
}

serde::impl_serde_struct!(ComputationKey { dataset_id, dataset_version, pipeline, cv, metric });
serde::impl_serde_struct!(AnalyticsRecord {
    key,
    score,
    fold_scores,
    explanation,
    producer,
    stored_at,
});

impl AnalyticsRecord {
    /// Serializes to canonical JSON (for interchange or hashing).
    pub fn to_json(&self) -> String {
        // value-model rendering is infallible; an empty string would only
        // appear if the vendored serde_json grew a real error path
        serde_json::to_string(self).unwrap_or_default()
    }

    /// Parses a record from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_equality_and_version_bump() {
        let a = ComputationKey::new("d", 1, "p", "cv", "m");
        let b = ComputationKey::new("d", 1, "p", "cv", "m");
        assert_eq!(a, b);
        let c = a.at_version(2);
        assert_ne!(a, c);
        assert_eq!(c.dataset_version, 2);
        assert!(a.to_string().contains("d@v1"));
    }

    #[test]
    fn record_json_roundtrip() {
        let r = AnalyticsRecord {
            key: ComputationKey::new("d", 1, "a>b", "kfold(5)", "rmse"),
            score: 1.25,
            fold_scores: vec![1.0, 1.5],
            explanation: "5-fold CV over a>b".to_string(),
            producer: "client-7".to_string(),
            stored_at: 42,
        };
        let json = r.to_json();
        let back = AnalyticsRecord::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert!(AnalyticsRecord::from_json("not json").is_err());
    }
}
