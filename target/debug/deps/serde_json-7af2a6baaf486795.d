/root/repo/target/debug/deps/serde_json-7af2a6baaf486795.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7af2a6baaf486795.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7af2a6baaf486795.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
