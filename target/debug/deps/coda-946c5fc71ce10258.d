/root/repo/target/debug/deps/coda-946c5fc71ce10258.d: src/lib.rs

/root/repo/target/debug/deps/libcoda-946c5fc71ce10258.rlib: src/lib.rs

/root/repo/target/debug/deps/libcoda-946c5fc71ce10258.rmeta: src/lib.rs

src/lib.rs:
