//! The [`Sequential`] network: an ordered stack of layers with a mini-batch
//! training loop.

use coda_linalg::Matrix;

use crate::layer::{Layer, NnRng};
use crate::loss::Loss;
use crate::optim::Optimizer;

/// An ordered stack of layers trained end-to-end.
///
/// # Examples
///
/// ```
/// use coda_nn::{Activation, Dense, Loss, Sequential, Sgd};
/// use coda_linalg::Matrix;
///
/// let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
/// let y = Matrix::from_rows(&[&[1.0], &[3.0], &[5.0], &[7.0]]); // y = 2x + 1
/// let mut net = Sequential::new().push(Dense::new(1, 1, 9));
/// let mut opt = Sgd::new(0.05);
/// let history = net.fit(&x, &y, Loss::Mse, &mut opt, 200, 4, 0);
/// assert!(history.last().unwrap() < &0.01);
/// ```
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    grad_clip: Option<f64>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential[{} layers]", self.layers.len())
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new(), grad_clip: None }
    }

    /// Clips the global gradient norm to `max_norm` before every optimizer
    /// step — the standard defence against the exploding gradients §IV-C2
    /// notes recurrent nets must handle.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm <= 0`.
    pub fn with_grad_clip(mut self, max_norm: f64) -> Self {
        assert!(max_norm > 0.0, "max_norm must be positive");
        self.grad_clip = Some(max_norm);
        self
    }

    /// Appends a layer (builder style).
    pub fn push<L: Layer + 'static>(mut self, layer: L) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of trainable scalar parameters.
    pub fn n_parameters(&mut self) -> usize {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_and_grads())
            .map(|(p, _)| p.as_slice().len())
            .sum()
    }

    /// Inference pass (no caching, dropout disabled).
    pub fn predict(&mut self, input: &Matrix) -> Matrix {
        let mut cur = input.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, false);
        }
        cur
    }

    /// One full-batch training step; returns the loss before the update.
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        optimizer: &mut dyn Optimizer,
    ) -> f64 {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, true);
        }
        let loss_value = loss.value(&cur, y);
        let mut grad = loss.gradient(&cur, y);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        let mut pairs: Vec<(&mut Matrix, &mut Matrix)> =
            self.layers.iter_mut().flat_map(|l| l.params_and_grads()).collect();
        if let Some(max_norm) = self.grad_clip {
            let total: f64 =
                pairs.iter().map(|(_, g)| g.as_slice().iter().map(|v| v * v).sum::<f64>()).sum();
            let norm = total.sqrt();
            if norm > max_norm {
                let scale = max_norm / norm;
                for (_, g) in pairs.iter_mut() {
                    g.scale_mut(scale);
                }
            }
        }
        optimizer.step(&mut pairs);
        loss_value
    }

    /// Mini-batch training for `epochs` passes; returns the per-epoch mean
    /// training loss. Rows are visited in a deterministic shuffled order
    /// derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` row counts differ or `batch_size == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn fit(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        optimizer: &mut dyn Optimizer,
        epochs: usize,
        batch_size: usize,
        seed: u64,
    ) -> Vec<f64> {
        assert_eq!(x.rows(), y.rows(), "x and y row counts differ");
        assert!(batch_size > 0, "batch_size must be positive");
        let n = x.rows();
        let mut rng = NnRng::new(seed.wrapping_add(0xF17));
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            // Fisher-Yates shuffle
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                let bx = x.select_rows(chunk);
                let by = y.select_rows(chunk);
                epoch_loss += self.train_batch(&bx, &by, loss, optimizer);
                batches += 1;
            }
            history.push(epoch_loss / batches.max(1) as f64);
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{Conv1d, MaxPool1d};
    use crate::layer::{Activation, Dense, Dropout};
    use crate::lstm::Lstm;
    use crate::optim::{Adam, Sgd};

    #[test]
    fn learns_linear_function() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0]]);
        let y = Matrix::from_rows(&[&[1.0], &[3.0], &[5.0], &[7.0], &[9.0]]);
        let mut net = Sequential::new().push(Dense::new(1, 1, 1));
        let mut opt = Sgd::new(0.03);
        let hist = net.fit(&x, &y, Loss::Mse, &mut opt, 300, 5, 0);
        assert!(hist.last().unwrap() < &1e-3, "final loss {}", hist.last().unwrap());
    }

    #[test]
    fn learns_xor_with_hidden_layer() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut net = Sequential::new()
            .push(Dense::new(2, 8, 2))
            .push(Activation::tanh())
            .push(Dense::new(8, 1, 3))
            .push(Activation::sigmoid());
        let mut opt = Adam::new(0.05);
        for _ in 0..800 {
            net.train_batch(&x, &y, Loss::BinaryCrossEntropy, &mut opt);
        }
        let pred = net.predict(&x);
        assert!(pred[(0, 0)] < 0.3 && pred[(3, 0)] < 0.3);
        assert!(pred[(1, 0)] > 0.7 && pred[(2, 0)] > 0.7);
    }

    #[test]
    fn training_loss_decreases() {
        let x = Matrix::from_rows(&[&[0.1, 0.9], &[0.8, 0.3], &[0.5, 0.5], &[0.2, 0.7]]);
        let y = Matrix::from_rows(&[&[1.0], &[1.1], &[1.0], &[0.9]]);
        let mut net = Sequential::new()
            .push(Dense::new(2, 6, 4))
            .push(Activation::relu())
            .push(Dense::new(6, 1, 5));
        let mut opt = Adam::new(0.01);
        let hist = net.fit(&x, &y, Loss::Mse, &mut opt, 50, 2, 1);
        assert!(hist.last().unwrap() < &hist[0]);
    }

    #[test]
    fn conv_pool_dense_stack_trains() {
        // classify whether the spike is in the first or second half
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let mut r = vec![0.0; 8];
            let pos = i % 8;
            r[pos] = 1.0;
            rows.push(r);
            labels.push(vec![if pos < 4 { 0.0 } else { 1.0 }]);
        }
        let xr: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let yr: Vec<&[f64]> = labels.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&xr);
        let y = Matrix::from_rows(&yr);
        let conv = Conv1d::new(8, 1, 4, 3, 1, false, 6);
        let conv_w = conv.out_width();
        let conv_len = conv.out_len();
        let pool = MaxPool1d::new(conv_len, 4, 2);
        let pool_w = pool.out_width();
        let mut net = Sequential::new()
            .push(conv)
            .push(Activation::relu())
            .push(pool)
            .push(Dense::new(pool_w, 1, 7))
            .push(Activation::sigmoid());
        assert_eq!(conv_w, conv_len * 4);
        let mut opt = Adam::new(0.02);
        let hist = net.fit(&x, &y, Loss::BinaryCrossEntropy, &mut opt, 120, 8, 2);
        assert!(hist.last().unwrap() < &0.2, "final loss {}", hist.last().unwrap());
    }

    #[test]
    fn lstm_dense_learns_sequence_mean_shift() {
        // target = last value of the sequence (persistence learnable by LSTM)
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..60 {
            let base = (i as f64 * 0.41).sin();
            let seq: Vec<f64> = (0..5).map(|t| base + t as f64 * 0.1).collect();
            targets.push(vec![seq[4]]);
            rows.push(seq);
        }
        let xr: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let yr: Vec<&[f64]> = targets.iter().map(|r| r.as_slice()).collect();
        let x = Matrix::from_rows(&xr);
        let y = Matrix::from_rows(&yr);
        let mut net = Sequential::new().push(Lstm::new(5, 1, 8, 8)).push(Dense::new(8, 1, 9));
        let mut opt = Adam::new(0.01);
        let hist = net.fit(&x, &y, Loss::Mse, &mut opt, 150, 10, 3);
        assert!(hist.last().unwrap() < &0.05, "final loss {}", hist.last().unwrap());
    }

    #[test]
    fn dropout_network_still_trains() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[2.0], &[4.0], &[6.0]]);
        let mut net = Sequential::new()
            .push(Dense::new(1, 16, 10))
            .push(Activation::relu())
            .push(Dropout::new(0.2, 11))
            .push(Dense::new(16, 1, 12));
        let mut opt = Adam::new(0.02);
        let hist = net.fit(&x, &y, Loss::Mse, &mut opt, 200, 4, 4);
        assert!(hist.last().unwrap() < &0.5);
    }

    #[test]
    fn parameter_count() {
        let mut net = Sequential::new().push(Dense::new(3, 4, 0)).push(Dense::new(4, 2, 1));
        // (3*4 + 4) + (4*2 + 2) = 16 + 10
        assert_eq!(net.n_parameters(), 26);
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
    }

    #[test]
    fn grad_clip_bounds_the_update() {
        use crate::optim::Sgd;
        // huge targets produce huge gradients; clipping bounds the step
        let x = Matrix::from_rows(&[&[1.0]]);
        let y = Matrix::from_rows(&[&[1e9]]);
        let step_norm = |clip: Option<f64>| -> f64 {
            let mut net = Sequential::new().push(Dense::new(1, 1, 20));
            if let Some(c) = clip {
                net = net.with_grad_clip(c);
            }
            let before = net.predict(&x)[(0, 0)];
            let mut opt = Sgd::new(0.1);
            net.train_batch(&x, &y, Loss::Mse, &mut opt);
            (net.predict(&x)[(0, 0)] - before).abs()
        };
        let unclipped = step_norm(None);
        let clipped = step_norm(Some(1.0));
        assert!(unclipped > 1e6, "unclipped step {unclipped}");
        // lr 0.1 x clipped norm 1.0 bounds the parameter move
        assert!(clipped < 1.0, "clipped step {clipped}");
    }

    #[test]
    fn grad_clip_inactive_below_threshold() {
        use crate::optim::Sgd;
        let x = Matrix::from_rows(&[&[0.5]]);
        let y = Matrix::from_rows(&[&[0.6]]);
        let run = |clip: Option<f64>| {
            let mut net = Sequential::new().push(Dense::new(1, 1, 21));
            if let Some(c) = clip {
                net = net.with_grad_clip(c);
            }
            let mut opt = Sgd::new(0.05);
            net.train_batch(&x, &y, Loss::Mse, &mut opt);
            net.predict(&x)[(0, 0)]
        };
        // tiny gradients: a huge clip threshold must not change anything
        assert_eq!(run(None).to_bits(), run(Some(1e9)).to_bits());
    }

    #[test]
    fn clone_shares_weights_values() {
        let mut net = Sequential::new().push(Dense::new(2, 2, 13));
        let mut cloned = net.clone();
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(net.predict(&x), cloned.predict(&x));
    }
}
