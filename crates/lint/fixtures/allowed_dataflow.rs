//! Escape-hatch case for the dataflow rule: the export below is
//! order-dependent by design (a diagnostic dump nobody diffs), and the
//! reasoned `lint:allow` must suppress the finding completely.

use std::collections::HashMap;

pub fn dump(m: &HashMap<String, u64>) -> String {
    let names: Vec<&String> = m.keys().collect();
    // lint:allow(unordered_flow) diagnostic dump; downstream never compares output bytes
    to_json(&names)
}

fn to_json(_names: &[&String]) -> String {
    String::new()
}
