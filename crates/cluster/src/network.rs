//! Deterministic network model: per-pair latency/bandwidth with optional
//! link failure, plus transfer accounting. An optional [`FaultInjector`]
//! adds seeded chaos on top: probabilistic drops, scheduled flaps, node
//! crash windows and slowdowns, all replayable from the plan's seed.

use coda_chaos::{FaultInjector, FaultStats};
use std::collections::BTreeMap;

/// Link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Link {
    latency_ms: f64,
    bytes_per_ms: f64,
    up: bool,
}

/// A simulated network: a default link plus per-pair overrides. Pairs are
/// unordered (the link is symmetric).
#[derive(Debug, Clone)]
pub struct SimNetwork {
    default_latency_ms: f64,
    default_bytes_per_ms: f64,
    overrides: BTreeMap<(String, String), Link>,
    chaos: Option<FaultInjector>,
    /// Total messages sent.
    pub messages: u64,
    /// Total bytes transferred.
    pub bytes: u64,
}

fn pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

impl SimNetwork {
    /// Creates a network with default link parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters.
    pub fn new(default_latency_ms: f64, default_bytes_per_ms: f64) -> Self {
        assert!(default_latency_ms >= 0.0 && default_bytes_per_ms > 0.0);
        SimNetwork {
            default_latency_ms,
            default_bytes_per_ms,
            overrides: BTreeMap::new(),
            chaos: None,
            messages: 0,
            bytes: 0,
        }
    }

    /// Attaches a fault injector: every subsequent transfer consults it for
    /// drops and slowdowns, and successful transfers advance its logical
    /// clock so scheduled flaps/crashes track simulated time.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.chaos = Some(injector);
    }

    /// The attached injector, for clock advances or schedule queries.
    pub fn fault_injector_mut(&mut self) -> Option<&mut FaultInjector> {
        self.chaos.as_mut()
    }

    /// Counters from the attached injector, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.chaos.as_ref().map(|c| c.stats())
    }

    /// Advances the injector's logical clock (e.g. by a retry backoff) so
    /// scheduled outages can heal between attempts. No-op without chaos.
    pub fn advance_chaos_clock(&mut self, delta_ms: f64) {
        if let Some(chaos) = &mut self.chaos {
            chaos.advance_to(chaos.now_ms() + delta_ms);
        }
    }

    /// Overrides the link between two nodes.
    pub fn set_link(&mut self, a: &str, b: &str, latency_ms: f64, bytes_per_ms: f64) {
        self.overrides.insert(pair(a, b), Link { latency_ms, bytes_per_ms, up: true });
    }

    /// Takes the link between two nodes down (poor connectivity, §III).
    pub fn disconnect(&mut self, a: &str, b: &str) {
        let key = pair(a, b);
        let link = self.overrides.entry(key).or_insert(Link {
            latency_ms: self.default_latency_ms,
            bytes_per_ms: self.default_bytes_per_ms,
            up: true,
        });
        link.up = false;
    }

    /// Restores the link between two nodes.
    pub fn reconnect(&mut self, a: &str, b: &str) {
        if let Some(link) = self.overrides.get_mut(&pair(a, b)) {
            link.up = true;
        }
    }

    /// True when the two nodes can communicate (including any scheduled
    /// chaos outage active right now — probabilistic drops are not
    /// predictable and do not count).
    pub fn is_connected(&self, a: &str, b: &str) -> bool {
        if let Some(chaos) = &self.chaos {
            if !chaos.link_up(a, b) {
                return false;
            }
        }
        self.overrides.get(&pair(a, b)).map(|l| l.up).unwrap_or(true)
    }

    /// Time to move `bytes` from `a` to `b` in one message, or `None` when
    /// disconnected. Records the transfer.
    pub fn transfer(&mut self, a: &str, b: &str, bytes: u64) -> Option<f64> {
        let link = self.overrides.get(&pair(a, b)).copied().unwrap_or(Link {
            latency_ms: self.default_latency_ms,
            bytes_per_ms: self.default_bytes_per_ms,
            up: true,
        });
        if !link.up {
            return None;
        }
        let mut factor = 1.0;
        if let Some(chaos) = &mut self.chaos {
            if chaos.should_drop(a, b) {
                return None;
            }
            factor = chaos.delay_factor();
        }
        self.messages += 1;
        self.bytes += bytes;
        let elapsed = (link.latency_ms + bytes as f64 / link.bytes_per_ms) * factor;
        if let Some(chaos) = &mut self.chaos {
            // traffic moves simulated time forward, so scheduled windows
            // open and close as the run progresses
            chaos.advance_to(chaos.now_ms() + elapsed);
        }
        Some(elapsed)
    }

    /// Round-trip cost of a request/response with the given payload sizes.
    pub fn round_trip(
        &mut self,
        a: &str,
        b: &str,
        request_bytes: u64,
        response_bytes: u64,
    ) -> Option<f64> {
        let there = self.transfer(a, b, request_bytes)?;
        let back = self.transfer(b, a, response_bytes)?;
        Some(there + back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_link_timing() {
        let mut net = SimNetwork::new(10.0, 100.0);
        let t = net.transfer("a", "b", 1000).unwrap();
        assert!((t - 20.0).abs() < 1e-12); // 10 latency + 1000/100
        assert_eq!(net.messages, 1);
        assert_eq!(net.bytes, 1000);
    }

    #[test]
    fn override_is_symmetric() {
        let mut net = SimNetwork::new(10.0, 100.0);
        net.set_link("x", "y", 1.0, 1000.0);
        let t1 = net.transfer("x", "y", 1000).unwrap();
        let t2 = net.transfer("y", "x", 1000).unwrap();
        assert_eq!(t1, t2);
        assert!((t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disconnect_and_reconnect() {
        let mut net = SimNetwork::new(5.0, 10.0);
        assert!(net.is_connected("a", "b"));
        net.disconnect("a", "b");
        assert!(!net.is_connected("a", "b"));
        assert!(net.transfer("a", "b", 10).is_none());
        assert!(net.round_trip("a", "b", 1, 1).is_none());
        // other links unaffected
        assert!(net.transfer("a", "c", 10).is_some());
        net.reconnect("a", "b");
        assert!(net.transfer("a", "b", 10).is_some());
    }

    #[test]
    fn round_trip_sums_both_directions() {
        let mut net = SimNetwork::new(10.0, 100.0);
        let t = net.round_trip("a", "b", 100, 400).unwrap();
        assert!((t - (10.0 + 1.0 + 10.0 + 4.0)).abs() < 1e-12);
        assert_eq!(net.messages, 2);
    }

    #[test]
    fn invalid_defaults_panic() {
        assert!(std::panic::catch_unwind(|| SimNetwork::new(1.0, 0.0)).is_err());
    }

    #[test]
    fn injected_drops_are_seeded_and_replayable() {
        use coda_chaos::{FaultInjector, FaultPlan};
        let run = || {
            let mut net = SimNetwork::new(1.0, 100.0);
            net.set_fault_injector(FaultInjector::new(
                FaultPlan::new(42).with_drop_probability(0.2),
            ));
            (0..500).filter(|_| net.transfer("a", "b", 100).is_none()).count()
        };
        let drops = run();
        assert_eq!(drops, run(), "same seed must replay identically");
        assert!((50..150).contains(&drops), "~20% of 500, got {drops}");
    }

    #[test]
    fn chaos_crash_window_heals_with_traffic() {
        use coda_chaos::{FaultInjector, FaultPlan};
        let mut net = SimNetwork::new(10.0, 100.0);
        // the cloud node crashes between t=15 and t=45 of chaos time
        net.set_fault_injector(FaultInjector::new(
            FaultPlan::new(1).with_crash("cloud", 15.0, 45.0),
        ));
        // first transfer (t:0→20) succeeds and advances the clock into the window
        assert!(net.transfer("edge", "cloud", 1000).is_some());
        assert!(!net.is_connected("edge", "cloud"));
        assert!(net.transfer("edge", "cloud", 100).is_none());
        assert_eq!(net.fault_stats().unwrap().node_down, 1);
        // backing off past the restart heals the link
        net.advance_chaos_clock(60.0);
        assert!(net.is_connected("edge", "cloud"));
        assert!(net.transfer("edge", "cloud", 100).is_some());
    }

    #[test]
    fn chaos_slowdown_stretches_transfer_time() {
        use coda_chaos::{FaultInjector, FaultPlan};
        let mut net = SimNetwork::new(10.0, 100.0);
        net.set_fault_injector(FaultInjector::new(FaultPlan::new(9).with_slowdown(1.0, 3.0)));
        let t = net.transfer("a", "b", 1000).unwrap();
        assert!((t - 60.0).abs() < 1e-9, "3x the clean 20ms, got {t}");
        assert_eq!(net.fault_stats().unwrap().slowed, 1);
    }
}
