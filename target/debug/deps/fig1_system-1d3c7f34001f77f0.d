/root/repo/target/debug/deps/fig1_system-1d3c7f34001f77f0.d: tests/fig1_system.rs

/root/repo/target/debug/deps/fig1_system-1d3c7f34001f77f0: tests/fig1_system.rs

tests/fig1_system.rs:
