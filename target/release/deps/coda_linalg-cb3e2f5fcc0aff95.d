/root/repo/target/release/deps/coda_linalg-cb3e2f5fcc0aff95.d: crates/linalg/src/lib.rs crates/linalg/src/decomp.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libcoda_linalg-cb3e2f5fcc0aff95.rlib: crates/linalg/src/lib.rs crates/linalg/src/decomp.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

/root/repo/target/release/deps/libcoda_linalg-cb3e2f5fcc0aff95.rmeta: crates/linalg/src/lib.rs crates/linalg/src/decomp.rs crates/linalg/src/eigen.rs crates/linalg/src/matrix.rs crates/linalg/src/stats.rs

crates/linalg/src/lib.rs:
crates/linalg/src/decomp.rs:
crates/linalg/src/eigen.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/stats.rs:
