//! Selective path search (the paper's title promises *"selectively testing
//! a wide range of different algorithms"*, and §III notes "the total number
//! of possible calculations for a data set is generally too large to
//! exhaustively determine"): successive halving over a graph's pipelines.
//!
//! All paths are first scored cheaply on a small subsample; each round keeps
//! the better half and doubles the data, so the full dataset is only ever
//! spent on a handful of finalists. The returned report also accounts the
//! *sample-evaluations* spent, so the saving over exhaustive evaluation is
//! measurable.

use coda_data::{CvStrategy, Dataset, Metric};

use crate::eval::{EvalError, Evaluator, PathResult};
use crate::graph::Teg;
use crate::pipeline::Pipeline;

/// Result of a successive-halving search.
#[derive(Debug, Clone)]
pub struct HalvingReport {
    /// Ranking metric.
    pub metric: Metric,
    /// Survivors of the final round, ranked best-first (scored on the most
    /// data).
    pub finalists: Vec<PathResult>,
    /// Paths eliminated per round: `(round, samples used, survivors)`.
    pub rounds: Vec<RoundSummary>,
    /// Total training samples consumed across all evaluations — compare
    /// with `paths x n x folds` for exhaustive search.
    pub samples_spent: usize,
}

/// One halving round's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundSummary {
    /// Round index (0-based).
    pub round: usize,
    /// Samples each surviving path was evaluated on this round.
    pub samples: usize,
    /// Paths still alive after this round.
    pub survivors: usize,
}

impl HalvingReport {
    /// The winning path.
    pub fn best(&self) -> Option<&PathResult> {
        self.finalists.first()
    }
}

impl Evaluator {
    /// Successive-halving search over every pipeline of `graph`.
    ///
    /// Round 0 evaluates all paths on `initial_samples` rows (a
    /// deterministic shuffled subsample); each subsequent round keeps the
    /// better half (by this evaluator's metric) and doubles the rows, until
    /// at most `min_finalists` paths remain or the full dataset is reached.
    /// The final survivors are scored on the full data with this
    /// evaluator's CV strategy.
    ///
    /// # Errors
    ///
    /// [`EvalError::Graph`] for malformed graphs;
    /// [`EvalError::NothingEvaluated`] when every path fails in some round.
    pub fn successive_halving(
        &self,
        graph: &Teg,
        data: &Dataset,
        initial_samples: usize,
        min_finalists: usize,
    ) -> Result<HalvingReport, EvalError> {
        let pipelines = graph.enumerate_pipelines()?;
        let metric = self.metric();
        let min_finalists = min_finalists.max(1);
        let n = data.n_samples();
        // deterministic shuffle once; rounds take growing prefixes so
        // earlier subsamples are subsets of later ones
        let shuffled = {
            let mut idx: Vec<usize> = (0..n).collect();
            // Fisher-Yates with a fixed LCG: search must be reproducible
            let mut state = 0x9E3779B97F4A7C15u64;
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                idx.swap(i, j);
            }
            idx
        };
        let mut alive: Vec<Pipeline> = pipelines;
        let mut rounds = Vec::new();
        let mut samples_spent = 0usize;
        let mut samples = initial_samples.clamp(1, n);
        let mut round = 0usize;
        // cheap screening rounds with a single train/validation split
        while alive.len() > min_finalists && samples < n {
            let subset = data.select(&shuffled[..samples]);
            let screen =
                Evaluator::new(CvStrategy::TrainTestSplit { test_fraction: 0.3, seed: 11 }, metric);
            let mut scored: Vec<(usize, f64)> = Vec::new();
            for (i, pipeline) in alive.iter().enumerate() {
                if let Ok(score) = screen.score_pipeline(pipeline, &subset) {
                    scored.push((i, score));
                }
                samples_spent += samples;
            }
            if scored.is_empty() {
                return Err(EvalError::NothingEvaluated);
            }
            scored.sort_by(|a, b| {
                if metric.is_better(a.1, b.1) {
                    std::cmp::Ordering::Less
                } else if metric.is_better(b.1, a.1) {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            });
            let keep = (scored.len() / 2).max(min_finalists).min(scored.len());
            let mut keep_idx: Vec<usize> = scored[..keep].iter().map(|(i, _)| *i).collect();
            keep_idx.sort_unstable();
            alive = keep_idx.into_iter().rev().map(|i| alive.swap_remove(i)).collect();
            rounds.push(RoundSummary { round, samples, survivors: alive.len() });
            samples = (samples * 2).min(n);
            round += 1;
        }
        // final full-data evaluation of the survivors under the real CV
        let mut finalists = Vec::with_capacity(alive.len());
        for pipeline in &alive {
            match self.evaluate_pipeline(pipeline, data) {
                Ok(fold_scores) => {
                    samples_spent += data.n_samples() * fold_scores.len();
                    let mean_score =
                        fold_scores.iter().sum::<f64>() / fold_scores.len().max(1) as f64;
                    finalists.push(PathResult {
                        spec: pipeline.spec(),
                        fold_scores,
                        mean_score,
                        error: None,
                    });
                }
                Err(e) => finalists.push(PathResult {
                    spec: pipeline.spec(),
                    fold_scores: Vec::new(),
                    mean_score: metric.worst(),
                    error: Some(e.to_string()),
                }),
            }
        }
        if finalists.iter().all(|f| !f.is_ok()) {
            return Err(EvalError::NothingEvaluated);
        }
        finalists.sort_by(|a, b| match (a.is_ok(), b.is_ok()) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => std::cmp::Ordering::Equal,
            (true, true) => {
                if metric.is_better(a.mean_score, b.mean_score) {
                    std::cmp::Ordering::Less
                } else if metric.is_better(b.mean_score, a.mean_score) {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            }
        });
        Ok(HalvingReport { metric, finalists, rounds, samples_spent })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TegBuilder;
    use coda_data::{synth, NoOp};
    use coda_ml::{
        DecisionTreeRegressor, KnnRegressor, LinearRegression, RandomForestRegressor,
        RidgeRegression, StandardScaler,
    };

    fn wide_graph() -> Teg {
        TegBuilder::new()
            .add_feature_scalers(vec![Box::new(StandardScaler::new()), Box::new(NoOp::new())])
            .add_models(vec![
                Box::new(LinearRegression::new()),
                Box::new(RidgeRegression::new(1.0)),
                Box::new(KnnRegressor::new(5)),
                Box::new(KnnRegressor::new(1)),
                Box::new(DecisionTreeRegressor::new()),
                Box::new(RandomForestRegressor::new(8)),
            ])
            .create_graph()
            .unwrap()
    }

    #[test]
    fn halving_finds_the_exhaustive_winner_family() {
        // strongly linear data: linear/ridge paths dominate at every budget
        let ds = synth::linear_regression(600, 4, 0.2, 61);
        let eval = Evaluator::new(CvStrategy::kfold(4), coda_data::Metric::Rmse);
        let exhaustive = eval.evaluate_graph(&wide_graph(), &ds).unwrap();
        let halving = eval.successive_halving(&wide_graph(), &ds, 60, 2).unwrap();
        let exhaustive_winner = &exhaustive.best().unwrap().spec.steps[1];
        let halving_winner = &halving.best().unwrap().spec.steps[1];
        let linear_family = ["linear_regression", "ridge_regression"];
        assert!(linear_family.contains(&exhaustive_winner.as_str()));
        assert!(
            linear_family.contains(&halving_winner.as_str()),
            "halving winner {halving_winner} must be in the linear family"
        );
    }

    #[test]
    fn halving_spends_far_fewer_samples() {
        let ds = synth::linear_regression(600, 4, 0.2, 62);
        let eval = Evaluator::new(CvStrategy::kfold(4), coda_data::Metric::Rmse);
        let halving = eval.successive_halving(&wide_graph(), &ds, 60, 2).unwrap();
        // exhaustive cost: 12 paths x 4 folds x 600 samples
        let exhaustive_cost = 12 * 4 * 600;
        assert!(
            halving.samples_spent < exhaustive_cost / 2,
            "halving spent {} vs exhaustive {exhaustive_cost}",
            halving.samples_spent
        );
        // rounds shrink the field and grow the data
        assert!(!halving.rounds.is_empty());
        for w in halving.rounds.windows(2) {
            assert!(w[1].survivors <= w[0].survivors);
            assert!(w[1].samples >= w[0].samples);
        }
        assert!(halving.finalists.len() <= 3);
    }

    #[test]
    fn tiny_budget_still_returns_a_winner() {
        let ds = synth::linear_regression(100, 3, 0.2, 63);
        let eval = Evaluator::new(CvStrategy::kfold(3), coda_data::Metric::Rmse);
        let halving = eval.successive_halving(&wide_graph(), &ds, 5, 1).unwrap();
        assert!(halving.best().is_some());
    }

    #[test]
    fn initial_budget_larger_than_data_skips_screening() {
        let ds = synth::linear_regression(50, 3, 0.2, 64);
        let eval = Evaluator::new(CvStrategy::kfold(3), coda_data::Metric::Rmse);
        let halving = eval.successive_halving(&wide_graph(), &ds, 1_000, 2).unwrap();
        assert!(halving.rounds.is_empty(), "no screening rounds when budget >= n");
        assert_eq!(halving.finalists.len(), 12); // all paths went to the final
    }
}
