//! Cross-crate integration: the Fig. 11 time-series prediction pipeline on
//! series with known structure — the qualitative model ordering the paper's
//! design implies must hold.

use coda::data::{synth, Metric};
use coda::timeseries::{SeriesData, TimeSeriesPipelineBuilder, TsEvaluator};
use coda_linalg::Matrix;

/// Statistical-models-only graph evaluates fast; used for ordering checks.
fn stat_graph(history: usize) -> coda::graph::Teg {
    TimeSeriesPipelineBuilder::new(history, 1, 1)
        .with_deep_variants(false)
        .with_all_scalers(false)
        .with_epochs(30)
        .build()
        .unwrap()
}

#[test]
fn ar_beats_zero_on_autocorrelated_series_and_not_on_random_walk() {
    let eval = TsEvaluator::sliding(300, 10, 80, 3, Metric::Rmse).with_threads(4);

    // strongly mean-reverting AR(2): AR must beat persistence
    let ar_series = SeriesData::univariate(synth::ar2_series(600, 0.5, 0.2, 1.0, 21));
    let report = eval.evaluate_graph(&stat_graph(8), &ar_series).unwrap();
    let ar = report.score_for("ar_forecaster").unwrap();
    let zero = report.score_for("zero_model").unwrap();
    assert!(ar < zero, "AR {ar:.4} must beat Zero {zero:.4} on an AR process");

    // pure random walk: Zero is near-optimal; AR must not beat it by much
    let walk = SeriesData::univariate(synth::random_walk(600, 1.0, 22));
    let report = eval.evaluate_graph(&stat_graph(8), &walk).unwrap();
    let ar = report.score_for("ar_forecaster").unwrap();
    let zero = report.score_for("zero_model").unwrap();
    assert!(
        zero < ar * 1.15,
        "Zero ({zero:.4}) must be within 15% of AR ({ar:.4}) on a random walk"
    );
}

#[test]
fn temporal_models_beat_iid_dnn_on_seasonal_series() {
    // a clean seasonal signal: history windows are informative, single
    // timestamps are not
    let series: Vec<f64> =
        (0..500).map(|t| (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin() * 3.0).collect();
    let series = SeriesData::univariate(series);
    let graph = TimeSeriesPipelineBuilder::new(16, 1, 1)
        .with_deep_variants(false)
        .with_all_scalers(false)
        .with_epochs(60)
        .with_seed(5)
        .build()
        .unwrap();
    let eval = TsEvaluator::sliding(280, 8, 60, 2, Metric::Rmse).with_threads(4);
    let report = eval.evaluate_graph(&graph, &series).unwrap();
    let lstm = report.score_for("lstm_simple").unwrap();
    let wavenet = report.score_for("wavenet").unwrap();
    let iid = report.score_for("dnn_iid_simple").unwrap();
    let zero = report.score_for("zero_model").unwrap();
    let best_temporal = lstm.min(wavenet);
    assert!(
        best_temporal < iid,
        "temporal ({best_temporal:.4}) must beat TS-as-IID DNN ({iid:.4}) on seasonal data"
    );
    assert!(
        best_temporal < zero,
        "temporal ({best_temporal:.4}) must beat persistence ({zero:.4}) on seasonal data"
    );
}

#[test]
fn multivariate_pipeline_runs_end_to_end() {
    let raw: Matrix = synth::multivariate_sensors(400, 3, 23);
    let series = SeriesData::new(raw, 1);
    let graph = TimeSeriesPipelineBuilder::new(12, 1, 3)
        .with_deep_variants(false)
        .with_epochs(15)
        .build()
        .unwrap();
    let eval = TsEvaluator::sliding(250, 5, 50, 2, Metric::Mae).with_threads(8);
    let report = eval.evaluate_graph(&graph, &series).unwrap();
    // every family produced a result
    for family in [
        "lstm_simple",
        "cnn_simple",
        "wavenet",
        "seriesnet",
        "dnn_simple",
        "dnn_iid_simple",
        "zero_model",
        "ar_forecaster",
    ] {
        assert!(report.score_for(family).is_some(), "family {family} missing from report");
    }
    assert!(report.best().unwrap().mean_score.is_finite());
}

#[test]
fn horizon_two_predicts_two_steps_ahead() {
    // deterministic ramp: two steps ahead is exactly +2
    let series = SeriesData::univariate((0..200).map(|i| i as f64).collect());
    let graph = TimeSeriesPipelineBuilder::new(6, 2, 1)
        .with_deep_variants(false)
        .with_all_scalers(false)
        .with_epochs(10)
        .build()
        .unwrap();
    let eval = TsEvaluator::sliding(120, 4, 30, 2, Metric::Mae);
    let report = eval.evaluate_graph(&graph, &series).unwrap();
    // persistence is exactly 2.0 off at horizon 2; differenced AR is ~exact
    let zero = report.score_for("zero_model").unwrap();
    let ari = report.score_for("ari_forecaster").unwrap();
    assert!((zero - 2.0).abs() < 1e-6, "zero mae at horizon 2 should be 2, got {zero}");
    assert!(ari < 0.05, "differenced AR should nail a pure trend, got {ari}");
}
