//! End-to-end gates for the D8 ops plane: same-seed determinism down to
//! the rendered bytes, a quiet clean scenario, and a loud fault scenario.

use coda_bench::{run_ops_report, run_ops_scenario, OpsReport};

#[test]
fn same_seed_ops_reports_are_byte_identical() {
    let a = run_ops_report(7).to_json();
    let b = run_ops_report(7).to_json();
    assert_eq!(a, b, "same-seed D8 runs must render byte-identically");
    let back = OpsReport::from_json(&a).expect("ops report JSON parses back");
    assert_eq!(back.to_json(), a, "round-trip is stable");
}

#[test]
fn clean_scenario_fires_no_alerts() {
    let clean = run_ops_scenario(7, false);
    assert_eq!(clean.burn_events, 0, "healthy traffic must not page anyone");
    assert_eq!(clean.total_breaches, 0);
    assert_eq!(clean.serve_shed, 0, "closed-loop traffic never sheds");
    assert!(clean.serve_ops > 0);
    let evals: u64 = clean.slo.statuses.iter().map(|s| s.evaluations).sum();
    assert!(evals > 0, "the engine must actually evaluate the declared SLOs");
    assert!(!clean.timeline.is_empty(), "the flight recorder captured windows");
}

#[test]
fn fault_scenario_burns_every_stressed_slo() {
    let fault = run_ops_scenario(7, true);
    assert!(fault.burn_events >= 1, "the fault phase must fire slo.burn alerts");
    assert!(fault.serve_shed > 0, "held shards must shed the burst");
    for slo in ["serve-shed-rate", "serve-p99-latency", "eval-error-rate", "cluster-failovers"] {
        let status = fault
            .slo
            .statuses
            .iter()
            .find(|s| s.slo == slo)
            .unwrap_or_else(|| panic!("{slo} status present"));
        assert!(status.breaches >= 1, "{slo} must breach under its injected fault");
    }
}

#[test]
fn exemplars_and_sampling_surface_the_interesting_traces() {
    let fault = run_ops_scenario(7, true);
    assert!(!fault.critical_paths.is_empty(), "armed exemplars must capture eval paths");
    for cp in &fault.critical_paths {
        assert!(cp.path.contains("eval.path["), "paths resolve to refined operators: {cp:?}");
        assert!(cp.path.contains(" > "), "paths chain from the trace root: {cp:?}");
    }
    assert!(fault.traces_kept < fault.traces_seen, "tail sampling must drop healthy traces");
    assert!(fault.events_after < fault.events_before);
    assert!(fault.cost.entries.keys().any(|k| k.starts_with("eval.path[")));
}
