/root/repo/target/debug/deps/properties-3d067e7687082cd8.d: tests/properties.rs

/root/repo/target/debug/deps/properties-3d067e7687082cd8: tests/properties.rs

tests/properties.rs:
