//! Shared helpers for the experiment harness and Criterion benches:
//! canonical workloads for each experiment and a plain-text table printer.

use coda_core::{Teg, TegBuilder};
use coda_data::{BoxedEstimator, BoxedTransformer, NoOp};
use coda_ml::{
    DecisionTreeRegressor, KnnRegressor, MinMaxScaler, Pca, RandomForestRegressor, RobustScaler,
    ScoreFunction, SelectKBest, StandardScaler,
};

pub mod diag;
pub mod ops;
pub mod serving;
pub use diag::{run_diag_report, ClockBurnScaler, DiagBundle, DiagScenario};
pub use ops::{run_ops_report, run_ops_scenario, CriticalPath, OpsReport, OpsScenario};
pub use serving::{run_serving_bench, serving_bench_config, ServingBenchResult};

/// Prints a fixed-width table with a header rule.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("| ");
        for (w, cell) in widths.iter().zip(cells) {
            s.push_str(&format!("{cell:<w$} | "));
        }
        s
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&head));
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("{}", line(row));
    }
}

/// The exact example graph of Fig. 3 / Listing 1: 4 scalers × 3 selectors ×
/// 3 models = 36 pipelines.
pub fn listing1_graph() -> Teg {
    TegBuilder::new()
        .add_feature_scalers(vec![
            Box::new(MinMaxScaler::new()) as BoxedTransformer,
            Box::new(StandardScaler::new()),
            Box::new(RobustScaler::new()),
            Box::new(NoOp::new()),
        ])
        .add_feature_selectors(vec![
            Box::new(Pca::new(4)) as BoxedTransformer,
            Box::new(SelectKBest::new(4, ScoreFunction::FRegression)),
            Box::new(NoOp::new()),
        ])
        .add_models(vec![
            Box::new(DecisionTreeRegressor::new()) as BoxedEstimator,
            Box::new(KnnRegressor::new(5)),
            Box::new(RandomForestRegressor::new(15)),
        ])
        .create_graph()
        .expect("fixed wiring is acyclic")
}

/// A small regression graph for cooperation/throughput benches.
pub fn small_graph() -> Teg {
    TegBuilder::new()
        .add_feature_scalers(vec![
            Box::new(StandardScaler::new()) as BoxedTransformer,
            Box::new(NoOp::new()),
        ])
        .add_models(vec![
            Box::new(coda_ml::LinearRegression::new()) as BoxedEstimator,
            Box::new(coda_ml::RidgeRegression::new(1.0)),
            Box::new(KnnRegressor::new(5)),
            Box::new(RandomForestRegressor::new(10)),
        ])
        .create_graph()
        .expect("fixed wiring is acyclic")
}

/// A fan-out graph for prefix-cache benches: a fixed 3-stage transformer
/// prefix (standard scaler → PCA → select-k-best) shared by `n_models`
/// ridge regressors with distinct regularization strengths. Every path
/// shares the whole prefix, so a prefix cache fits it once per fold
/// instead of `n_models` times.
pub fn fan_out_graph(n_models: usize) -> Teg {
    let models: Vec<BoxedEstimator> = (0..n_models)
        .map(|i| {
            Box::new(coda_ml::RidgeRegression::new(0.01 * 1.5f64.powi(i as i32))) as BoxedEstimator
        })
        .collect();
    TegBuilder::new()
        .add_feature_scalers(vec![Box::new(StandardScaler::new()) as BoxedTransformer])
        .add_feature_selectors(vec![Box::new(Pca::new(12)) as BoxedTransformer])
        .add_transformers(vec![
            Box::new(SelectKBest::new(8, ScoreFunction::FRegression)) as BoxedTransformer
        ])
        .add_models(models)
        .create_graph()
        .expect("fixed wiring is acyclic")
}

/// Patterned bytes for delta-encoding workloads.
pub fn patterned_bytes(n: usize, seed: u8) -> Vec<u8> {
    (0..n).map(|i| ((i as u64 * 131 + seed as u64) % 251) as u8).collect()
}

/// Applies an update rewriting a contiguous region covering `fraction` of
/// the bytes (the common shape of real updates: appended rows, a rewritten
/// record range).
pub fn mutate_fraction(data: &[u8], fraction: f64) -> Vec<u8> {
    let mut out = data.to_vec();
    let n_touch = ((data.len() as f64) * fraction).round() as usize;
    if n_touch == 0 {
        return out;
    }
    let start = (data.len() - n_touch) / 2;
    for b in &mut out[start..start + n_touch] {
        *b ^= 0x5A;
    }
    out
}

/// Applies an update touching `fraction` of the bytes spread evenly — the
/// worst case for block-based delta encoding (no clean block survives once
/// the stride drops below the block size).
pub fn mutate_fraction_scattered(data: &[u8], fraction: f64) -> Vec<u8> {
    let mut out = data.to_vec();
    let n_touch = ((data.len() as f64) * fraction).round() as usize;
    if n_touch == 0 {
        return out;
    }
    let stride = (data.len() / n_touch).max(1);
    let mut touched = 0;
    let mut i = 0;
    while touched < n_touch && i < out.len() {
        out[i] ^= 0x5A;
        touched += 1;
        i += stride;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing1_has_36_paths() {
        assert_eq!(listing1_graph().enumerate_paths().len(), 36);
    }

    #[test]
    fn mutate_fraction_touches_expected_share() {
        let base = patterned_bytes(10_000, 1);
        let changed = mutate_fraction(&base, 0.1);
        let diff = base.iter().zip(&changed).filter(|(a, b)| a != b).count();
        assert!((diff as f64 - 1000.0).abs() < 50.0, "diff {diff}");
        assert_eq!(mutate_fraction(&base, 0.0), base);
    }
}
