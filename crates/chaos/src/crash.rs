//! Deterministic crash-stop schedules keyed by *logical operation count*.
//!
//! Time-window crashes ([`crate::NodeCrash`]) model outages that start and
//! end at wall positions on the logical clock; a [`CrashPlan`] instead
//! pins the kill to a precise point in a node's *work*: "crash after the
//! node's Nth durable operation". That is the right key for crash-recovery
//! testing — a write-ahead log defines one crash point per appended
//! record, and a recovery subsystem is only correct if the system
//! converges no matter *which* record was the last to hit the log. A
//! [`CrashPlan`] also carries the scheduled restart delay, so a driver can
//! bring the node back and exercise replay, rejoin and catch-up
//! deterministically.

/// One scheduled crash: `node` halts the moment its logical operation
/// counter reaches `at_op` (1-based: `at_op = 1` crashes after the first
/// operation), and restarts `restart_after_ms` later on the driver clock.
/// `restart_after_ms = None` means the node stays down forever.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashPoint {
    /// The node to kill.
    pub node: String,
    /// Logical operation count at which the crash fires (1-based).
    pub at_op: u64,
    /// Delay from the crash instant to the scheduled restart, in logical
    /// milliseconds; `None` = never restarts.
    pub restart_after_ms: Option<f64>,
    /// Optional ground-truth label naming the fault this point injects
    /// (e.g. `"hot-shard:shard-0"`). Diagnosis experiments join a report's
    /// top-ranked suspect against this label to score attribution; it has
    /// no effect on scheduling.
    pub label: Option<String>,
}

/// A deterministic crash-stop schedule: at most one pending crash per node
/// at a time, keyed by that node's logical operation count. Same plan +
/// same operation sequence = same crashes, bit for bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrashPlan {
    points: Vec<CrashPoint>,
}

impl CrashPlan {
    /// An empty plan: nothing ever crashes.
    pub fn new() -> Self {
        CrashPlan::default()
    }

    /// Schedules `node` to crash at its `at_op`-th logical operation and
    /// restart `restart_after_ms` later (`None` = stays down).
    ///
    /// # Panics
    ///
    /// Panics when `at_op` is zero (operation counts are 1-based) or the
    /// restart delay is negative.
    pub fn with_crash_at(self, node: &str, at_op: u64, restart_after_ms: Option<f64>) -> Self {
        self.push_point(node, at_op, restart_after_ms, None)
    }

    /// As [`CrashPlan::with_crash_at`], additionally tagging the point with
    /// a ground-truth fault `label` for attribution scoring.
    ///
    /// # Panics
    ///
    /// As for [`CrashPlan::with_crash_at`].
    pub fn with_labeled_crash_at(
        self,
        node: &str,
        at_op: u64,
        restart_after_ms: Option<f64>,
        label: &str,
    ) -> Self {
        self.push_point(node, at_op, restart_after_ms, Some(label.to_string()))
    }

    fn push_point(
        mut self,
        node: &str,
        at_op: u64,
        restart_after_ms: Option<f64>,
        label: Option<String>,
    ) -> Self {
        assert!(at_op >= 1, "operation counts are 1-based");
        if let Some(delay) = restart_after_ms {
            assert!(delay >= 0.0, "restart delay must be non-negative");
        }
        self.points.push(CrashPoint { node: node.to_string(), at_op, restart_after_ms, label });
        self
    }

    /// The scheduled crash points.
    pub fn points(&self) -> &[CrashPoint] {
        &self.points
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The first not-yet-fired crash point for `node` whose `at_op` is
    /// reached by `ops` (the node's current logical operation count).
    /// Callers track fired points themselves via [`CrashSchedule`].
    pub fn due(&self, node: &str, ops: u64) -> Option<&CrashPoint> {
        self.points.iter().find(|p| p.node == node && ops >= p.at_op)
    }
}

/// Executes a [`CrashPlan`] for a driver loop: tracks which points have
/// fired, when each crashed node is due back, and counts crash/restart
/// events so a report can assert the schedule actually ran.
#[derive(Debug, Clone)]
pub struct CrashSchedule {
    plan: CrashPlan,
    fired: Vec<bool>,
    /// node → scheduled restart time on the driver clock (`None` = never).
    down: Vec<(String, Option<f64>)>,
    crashes: u64,
    restarts: u64,
}

impl CrashSchedule {
    /// Starts executing `plan` with no node down.
    pub fn new(plan: CrashPlan) -> Self {
        let fired = vec![false; plan.points.len()];
        CrashSchedule { plan, fired, down: Vec::new(), crashes: 0, restarts: 0 }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &CrashPlan {
        &self.plan
    }

    /// Consults the schedule after `node` completed its `ops`-th logical
    /// operation at driver time `now_ms`. Returns true exactly once per
    /// crash point — the instant the node must halt. A node already down
    /// never double-crashes.
    pub fn should_crash(&mut self, node: &str, ops: u64, now_ms: f64) -> bool {
        if self.is_down(node) {
            return false;
        }
        for (i, p) in self.plan.points.iter().enumerate() {
            if !self.fired[i] && p.node == node && ops >= p.at_op {
                self.fired[i] = true;
                self.crashes += 1;
                self.down.push((node.to_string(), p.restart_after_ms.map(|d| now_ms + d)));
                return true;
            }
        }
        false
    }

    /// True while `node` is crashed.
    pub fn is_down(&self, node: &str) -> bool {
        self.down.iter().any(|(n, _)| n == node)
    }

    /// Restarts every node whose scheduled restart time has arrived,
    /// returning their names (deterministic order: crash order). Counts
    /// each as a restart event.
    pub fn due_restarts(&mut self, now_ms: f64) -> Vec<String> {
        let mut restarted = Vec::new();
        self.down.retain(|(node, at)| match at {
            Some(t) if now_ms >= *t => {
                restarted.push(node.clone());
                false
            }
            _ => true,
        });
        self.restarts += restarted.len() as u64;
        restarted
    }

    /// Downed nodes with a restart still scheduled (a driver loop must
    /// keep running at least until this reaches zero).
    pub fn pending_restarts(&self) -> usize {
        self.down.iter().filter(|(_, at)| at.is_some()).count()
    }

    /// Crash events fired so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Restart events fired so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_crashes() {
        let mut sched = CrashSchedule::new(CrashPlan::new());
        for op in 1..100 {
            assert!(!sched.should_crash("n", op, op as f64));
        }
        assert_eq!(sched.crashes(), 0);
        assert!(sched.plan().is_empty());
    }

    #[test]
    fn crash_fires_exactly_once_at_the_op_count() {
        let plan = CrashPlan::new().with_crash_at("n", 3, Some(100.0));
        let mut sched = CrashSchedule::new(plan);
        assert!(!sched.should_crash("n", 1, 0.0));
        assert!(!sched.should_crash("n", 2, 10.0));
        assert!(sched.should_crash("n", 3, 20.0), "fires at op 3");
        assert!(sched.is_down("n"));
        assert!(!sched.should_crash("n", 4, 30.0), "a down node cannot re-crash");
        assert_eq!(sched.crashes(), 1);
    }

    #[test]
    fn restart_fires_at_the_scheduled_time() {
        let plan = CrashPlan::new().with_crash_at("n", 1, Some(50.0));
        let mut sched = CrashSchedule::new(plan);
        assert!(sched.should_crash("n", 1, 10.0));
        assert_eq!(sched.pending_restarts(), 1);
        assert!(sched.due_restarts(59.0).is_empty(), "restart is at 10+50=60");
        let back = sched.due_restarts(60.0);
        assert_eq!(back, vec!["n".to_string()]);
        assert!(!sched.is_down("n"));
        assert_eq!(sched.restarts(), 1);
        // the point already fired: the node does not crash again
        assert!(!sched.should_crash("n", 5, 70.0));
    }

    #[test]
    fn no_restart_means_down_forever() {
        let plan = CrashPlan::new().with_crash_at("n", 2, None);
        let mut sched = CrashSchedule::new(plan);
        assert!(sched.should_crash("n", 2, 0.0));
        assert!(sched.due_restarts(1e12).is_empty());
        assert!(sched.is_down("n"));
        assert_eq!(sched.pending_restarts(), 0, "a forever-down node pends nothing");
    }

    #[test]
    fn plans_are_per_node() {
        let plan =
            CrashPlan::new().with_crash_at("a", 1, Some(10.0)).with_crash_at("b", 2, Some(10.0));
        let mut sched = CrashSchedule::new(plan);
        assert!(!sched.should_crash("b", 1, 0.0));
        assert!(sched.should_crash("a", 1, 0.0));
        assert!(sched.should_crash("b", 2, 0.0));
        assert_eq!(sched.crashes(), 2);
        assert_eq!(sched.due_restarts(10.0).len(), 2);
    }

    #[test]
    fn labeled_crash_points_carry_ground_truth_without_changing_schedule() {
        let plan = CrashPlan::new().with_crash_at("a", 1, None).with_labeled_crash_at(
            "b",
            2,
            Some(5.0),
            "hot-shard:shard-0",
        );
        assert_eq!(plan.points()[0].label, None);
        assert_eq!(plan.points()[1].label.as_deref(), Some("hot-shard:shard-0"));
        let mut sched = CrashSchedule::new(plan);
        assert!(sched.should_crash("b", 2, 0.0), "labels do not alter firing");
        assert_eq!(sched.due_restarts(5.0), vec!["b".to_string()]);
    }

    #[test]
    fn due_inspects_without_firing() {
        let plan = CrashPlan::new().with_crash_at("n", 4, None);
        assert!(plan.due("n", 3).is_none());
        let p = plan.due("n", 4).expect("due at op 4");
        assert_eq!(p.at_op, 4);
        assert!(plan.due("other", 100).is_none());
    }
}
