//! Fixture: the escape hatch done wrong — a bare `lint:allow` with no
//! justification. The original violation must survive AND the directive
//! itself must be flagged. Never compiled; walked as text.

fn unjustified_unwrap(v: Option<u32>) -> u32 {
    // lint:allow(panic_safety)
    v.unwrap()
}
