//! Offline stand-in for `criterion`: runs each benchmark closure a handful
//! of times and prints a mean wall-clock figure. No statistics, warm-up or
//! HTML reports — just enough to keep `cargo bench` targets compiling and
//! producing comparable numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement iterations per benchmark (kept tiny so `cargo test`'s bench
/// builds stay fast).
const DEFAULT_SAMPLES: usize = 3;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f, DEFAULT_SAMPLES);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), samples: DEFAULT_SAMPLES, _criterion: self }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (kept small regardless; honors <= the default).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, DEFAULT_SAMPLES);
        self
    }

    /// Sets the measurement time (accepted for API parity; ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the throughput of each iteration (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<I: fmt::Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f, self.samples);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: fmt::Display, P, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let name = format!("{}/{}", self.name, id);
        let samples = self.samples;
        run_one(&name, &mut |b: &mut Bencher| f(b, input), samples);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F, samples: usize) {
    let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
    for _ in 0..samples {
        f(&mut bencher);
    }
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!("bench {name:<50} {per_iter:>12.2?}/iter ({} iters)", bencher.iterations);
}

/// Times the benchmarked closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs and times one iteration of the benchmark body.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        black_box(body());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { text: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Declared per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.throughput(Throughput::Bytes(128));
            g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
                b.iter(|| {
                    runs += 1;
                    n * 2
                })
            });
            g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 3));
            g.finish();
        }
        assert!(runs >= 1);
    }
}
