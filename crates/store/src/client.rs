//! A caching client of a home data store: holds local versions, pulls with
//! version-aware fetches, and applies push messages (full, delta or
//! notify-then-pull).

use bytes::Bytes;
use coda_chaos::{FaultInjector, RetryPolicy, RetryStats};
use coda_obs::Obs;
use std::collections::BTreeMap;

use crate::delta::{content_hash, DeltaCodec, DeltaError};
use crate::home::{FetchReply, HomeDataStore};
use crate::lease::UpdateMessage;

/// Error produced when applying an update to the local cache.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// A delta arrived for a version the client does not hold.
    BaseVersionMismatch {
        /// Version the delta needs.
        needed: u64,
        /// Version the client holds (0 = none).
        held: u64,
    },
    /// Delta application failed.
    Delta(DeltaError),
    /// A pushed full value hashed differently from its recorded checksum —
    /// the payload was corrupted in flight.
    ChecksumMismatch {
        /// Checksum recorded by the home store.
        expected: u64,
        /// Checksum of the received bytes.
        actual: u64,
    },
    /// The home store could not be reached (message dropped, link down or
    /// node crashed) — a transient fault worth retrying.
    Unreachable,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::BaseVersionMismatch { needed, held } => {
                write!(f, "delta needs base version {needed}, client holds {held}")
            }
            ClientError::Delta(e) => write!(f, "delta application failed: {e}"),
            ClientError::ChecksumMismatch { expected, actual } => {
                write!(f, "push payload checksum {actual:#018x}, expected {expected:#018x}")
            }
            ClientError::Unreachable => write!(f, "home store unreachable"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<DeltaError> for ClientError {
    fn from(e: DeltaError) -> Self {
        ClientError::Delta(e)
    }
}

/// A client-side object cache.
#[derive(Debug, Clone, Default)]
pub struct CachingClient {
    name: String,
    cache: BTreeMap<String, (u64, Bytes)>,
    /// Bytes received over all pulls/pushes.
    pub bytes_received: u64,
    obs: Option<Obs>,
}

impl CachingClient {
    /// Creates a named client with an empty cache.
    pub fn new<S: Into<String>>(name: S) -> Self {
        CachingClient { name: name.into(), cache: BTreeMap::new(), bytes_received: 0, obs: None }
    }

    /// Attaches an observability handle: applying a push that carries a
    /// [`coda_obs::SpanContext`] records a `store.apply_update` span as a
    /// child of the originating `put` — the receive side of the in-band
    /// context propagated through [`UpdateMessage`].
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    /// The client's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The locally-held version of `object` (None if uncached).
    pub fn held_version(&self, object: &str) -> Option<u64> {
        self.cache.get(object).map(|(v, _)| *v)
    }

    /// The locally-held bytes of `object`.
    pub fn held_data(&self, object: &str) -> Option<&Bytes> {
        self.cache.get(object).map(|(_, d)| d)
    }

    /// Pulls the latest version from the home store, passing the held
    /// version so the store can reply with a delta (paper §III).
    ///
    /// # Errors
    ///
    /// [`ClientError`] when a received delta cannot be applied.
    pub fn pull(&mut self, store: &mut HomeDataStore, object: &str) -> Result<bool, ClientError> {
        let held = self.held_version(object);
        let Ok(fetched) = store.fetch(object, held);
        let Some(reply) = fetched else {
            return Ok(false);
        };
        self.bytes_received += reply.wire_size() as u64;
        match reply {
            FetchReply::UpToDate { .. } => Ok(true),
            FetchReply::Full { version, data } => {
                self.cache.insert(object.to_string(), (version, data));
                Ok(true)
            }
            FetchReply::Delta(delta) => {
                let (held_v, held_data) =
                    self.cache.get(object).cloned().ok_or(ClientError::BaseVersionMismatch {
                        needed: delta.base_version,
                        held: 0,
                    })?;
                if held_v != delta.base_version {
                    return Err(ClientError::BaseVersionMismatch {
                        needed: delta.base_version,
                        held: held_v,
                    });
                }
                let rebuilt = DeltaCodec::apply(&held_data, &delta)?;
                self.cache.insert(object.to_string(), (delta.target_version, rebuilt));
                Ok(true)
            }
        }
    }

    /// Applies a push message. `Notify` messages only record that the cache
    /// is stale; call [`CachingClient::pull`] to refresh on demand.
    ///
    /// # Errors
    ///
    /// [`ClientError`] when a pushed delta cannot be applied.
    pub fn apply_push(&mut self, message: &UpdateMessage) -> Result<(), ClientError> {
        let obs = self.obs.clone();
        let _span = obs.as_ref().zip(message.context()).map(|(o, ctx)| {
            o.tracer().span_child(
                ctx,
                "store.apply_update",
                &[("client", &self.name), ("object", message.object())],
            )
        });
        self.bytes_received += message.wire_size() as u64;
        match message {
            UpdateMessage::Full { object, version, data, checksum, .. } => {
                let actual = content_hash(data);
                if actual != *checksum {
                    return Err(ClientError::ChecksumMismatch { expected: *checksum, actual });
                }
                self.cache.insert(object.clone(), (*version, data.clone()));
                Ok(())
            }
            UpdateMessage::Delta { object, delta, .. } => {
                let (held_v, held_data) =
                    self.cache.get(object).cloned().ok_or(ClientError::BaseVersionMismatch {
                        needed: delta.base_version,
                        held: 0,
                    })?;
                if held_v != delta.base_version {
                    return Err(ClientError::BaseVersionMismatch {
                        needed: delta.base_version,
                        held: held_v,
                    });
                }
                let rebuilt = DeltaCodec::apply(&held_data, delta)?;
                self.cache.insert(object.clone(), (delta.target_version, rebuilt));
                Ok(())
            }
            UpdateMessage::Notify { .. } => Ok(()),
        }
    }

    /// Applies a push message; on any integrity failure (corrupted payload,
    /// unusable delta) falls back to a fresh pull from the home store so the
    /// cache still converges. Returns true when a fallback pull was needed.
    ///
    /// # Errors
    ///
    /// [`ClientError`] only when the fallback pull itself fails.
    pub fn apply_push_or_repull(
        &mut self,
        store: &mut HomeDataStore,
        message: &UpdateMessage,
    ) -> Result<bool, ClientError> {
        match self.apply_push(message) {
            Ok(()) => Ok(false),
            Err(_) => {
                // the push payload is unusable; drop it and re-fetch
                self.cache.remove(message.object());
                self.pull(store, message.object())?;
                Ok(true)
            }
        }
    }

    /// Like [`CachingClient::pull`], but the message (request + reply) is
    /// subject to fault injection: a dropped message in either direction
    /// surfaces as [`ClientError::Unreachable`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Unreachable`] on an injected drop, otherwise as
    /// [`CachingClient::pull`].
    pub fn pull_via(
        &mut self,
        store: &mut HomeDataStore,
        object: &str,
        chaos: &mut FaultInjector,
    ) -> Result<bool, ClientError> {
        let store_name = store.name().to_string();
        if chaos.should_drop(&self.name, &store_name) || chaos.should_drop(&store_name, &self.name)
        {
            return Err(ClientError::Unreachable);
        }
        self.pull(store, object)
    }

    /// Pulls under a retry policy: transient [`ClientError::Unreachable`]
    /// failures are retried with backoff (advancing the injector's logical
    /// clock, so scheduled outages can heal between attempts); permanent
    /// errors return immediately. Returns the final result plus per-call
    /// retry accounting.
    pub fn pull_with_retry(
        &mut self,
        store: &mut HomeDataStore,
        object: &str,
        chaos: &mut FaultInjector,
        policy: &RetryPolicy,
    ) -> (Result<bool, ClientError>, RetryStats) {
        let mut state = policy.state();
        loop {
            state.begin_attempt();
            match self.pull_via(store, object, chaos) {
                Ok(found) => return (Ok(found), state.finish(true)),
                Err(ClientError::Unreachable) => match state.next_backoff_ms() {
                    Some(backoff) => chaos.advance_to(chaos.now_ms() + backoff),
                    None => return (Err(ClientError::Unreachable), state.finish(false)),
                },
                Err(e) => return (Err(e), state.finish(false)),
            }
        }
    }

    /// True when the client's held version of `object` is behind `store`.
    pub fn is_stale(&self, store: &HomeDataStore, object: &str) -> bool {
        match (self.held_version(object), store.version_of(object)) {
            (Some(h), Some(s)) => h < s,
            (None, Some(_)) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lease::PushMode;

    fn patterned(n: usize, seed: u8) -> Bytes {
        Bytes::from(
            (0..n).map(|i| ((i as u64 * 13 + seed as u64) % 241) as u8).collect::<Vec<u8>>(),
        )
    }

    #[test]
    fn pull_full_then_delta() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        let base = patterned(20_000, 1);
        store.put("o", base.clone());
        assert!(client.pull(&mut store, "o").unwrap());
        assert_eq!(client.held_version("o"), Some(1));
        let full_bytes = client.bytes_received;

        let mut v2 = base.to_vec();
        v2[100] ^= 0xFF;
        store.put("o", Bytes::from(v2.clone()));
        assert!(client.is_stale(&store, "o"));
        client.pull(&mut store, "o").unwrap();
        assert_eq!(client.held_version("o"), Some(2));
        assert_eq!(&client.held_data("o").unwrap()[..], &v2[..]);
        // the delta pull must be far cheaper than the initial full pull
        let delta_bytes = client.bytes_received - full_bytes;
        assert!(delta_bytes < full_bytes / 10, "delta {delta_bytes} vs full {full_bytes}");
    }

    #[test]
    fn pull_missing_object() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        assert!(!client.pull(&mut store, "nope").unwrap());
    }

    #[test]
    fn pull_up_to_date_costs_header_only() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        store.put("o", patterned(1000, 2));
        client.pull(&mut store, "o").unwrap();
        let before = client.bytes_received;
        client.pull(&mut store, "o").unwrap();
        assert_eq!(client.bytes_received - before, 16);
        assert!(!client.is_stale(&store, "o"));
    }

    #[test]
    fn push_full_and_delta_apply() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        let base = patterned(10_000, 3);
        store.put("o", base.clone());
        client.pull(&mut store, "o").unwrap();
        store.subscribe("c", "o", PushMode::Delta, 100);
        let mut v2 = base.to_vec();
        v2[0] ^= 1;
        let (_, messages) = store.put("o", Bytes::from(v2.clone()));
        assert_eq!(messages.len(), 1);
        client.apply_push(&messages[0]).unwrap();
        assert_eq!(client.held_version("o"), Some(2));
        assert_eq!(&client.held_data("o").unwrap()[..], &v2[..]);
    }

    #[test]
    fn notify_then_on_demand_pull() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        let base = patterned(10_000, 4);
        store.put("o", base.clone());
        client.pull(&mut store, "o").unwrap();
        store.subscribe("c", "o", PushMode::NotifyOnly, 100);
        let mut v2 = base.to_vec();
        v2[9] ^= 0xF0;
        let (_, messages) = store.put("o", Bytes::from(v2));
        client.apply_push(&messages[0]).unwrap();
        // notify does not update the cache...
        assert_eq!(client.held_version("o"), Some(1));
        assert!(client.is_stale(&store, "o"));
        // ...until the client decides to pull
        client.pull(&mut store, "o").unwrap();
        assert_eq!(client.held_version("o"), Some(2));
    }

    #[test]
    fn delta_for_wrong_base_rejected() {
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        let base = patterned(10_000, 5);
        store.put("o", base.clone());
        // client never pulled; a delta push cannot apply
        store.subscribe("c", "o", PushMode::Delta, 100);
        let mut v2 = base.to_vec();
        v2[1] ^= 1;
        let (_, messages) = store.put("o", Bytes::from(v2));
        let err = client.apply_push(&messages[0]).unwrap_err();
        assert!(matches!(err, ClientError::BaseVersionMismatch { held: 0, .. }));
    }

    #[test]
    fn corrupted_full_push_rejected_then_repulled() {
        use crate::lease::UpdateMessage;
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        let base = patterned(2000, 6);
        store.put("o", base.clone());
        client.pull(&mut store, "o").unwrap();
        store.subscribe("c", "o", PushMode::Full, 100);
        let v2: Vec<u8> = base.iter().map(|b| b ^ 0xAA).collect();
        let (_, mut messages) = store.put("o", Bytes::from(v2.clone()));
        // corrupt the payload in flight without touching the checksum
        if let UpdateMessage::Full { data, .. } = &mut messages[0] {
            let mut raw = data.to_vec();
            raw[7] ^= 0x10;
            *data = Bytes::from(raw);
        }
        let err = client.apply_push(&messages[0]).unwrap_err();
        assert!(matches!(err, ClientError::ChecksumMismatch { .. }));
        assert_eq!(client.held_version("o"), Some(1), "corrupt push must not apply");
        // graceful fallback: reject the push, re-fetch from the store
        assert!(client.apply_push_or_repull(&mut store, &messages[0]).unwrap());
        assert_eq!(client.held_version("o"), Some(2));
        assert_eq!(&client.held_data("o").unwrap()[..], &v2[..]);
    }

    #[test]
    fn push_carries_context_and_apply_links_to_it() {
        use coda_obs::{Obs, TraceForest};
        let obs = Obs::deterministic();
        let mut store = HomeDataStore::new("h", 4);
        store.attach_obs(obs.clone());
        let mut client = CachingClient::new("c");
        client.attach_obs(obs.clone());
        let base = patterned(4_000, 9);
        store.put("o", base.clone());
        client.pull(&mut store, "o").unwrap();
        store.subscribe("c", "o", PushMode::Full, 100);
        let v2: Vec<u8> = base.iter().map(|b| b ^ 0x3C).collect();
        let (_, messages) = store.put("o", Bytes::from(v2));
        let put_ctx = messages[0].context().expect("instrumented put stamps its context");
        client.apply_push(&messages[0]).unwrap();
        let forest = TraceForest::from_events(&obs.tracer().events());
        assert!(forest.orphans().is_empty());
        let apply = forest.spans().find(|s| s.name == "store.apply_update").unwrap();
        assert_eq!(apply.parent, Some(put_ctx.span_id), "apply is a child of the causing put");
        assert_eq!(apply.ctx.trace_id, put_ctx.trace_id, "one trace spans the wire");
    }

    #[test]
    fn pull_with_retry_rides_out_random_drops() {
        use coda_chaos::{FaultInjector, FaultPlan, RetryPolicy};
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        store.put("o", patterned(500, 7));
        let mut chaos = FaultInjector::new(FaultPlan::new(11).with_drop_probability(0.5));
        let policy = RetryPolicy::exponential(5.0, 2.0, 40.0, 12);
        let (result, stats) = client.pull_with_retry(&mut store, "o", &mut chaos, &policy);
        assert_eq!(result, Ok(true));
        assert_eq!(client.held_version("o"), Some(1));
        assert_eq!(stats.successes, 1);
        assert_eq!(stats.attempts, stats.retries + 1);
    }

    #[test]
    fn pull_with_retry_waits_out_scheduled_outage() {
        use coda_chaos::{FaultInjector, FaultPlan, RetryPolicy};
        let mut store = HomeDataStore::new("h", 4);
        let mut client = CachingClient::new("c");
        store.put("o", patterned(500, 8));
        let mut chaos = FaultInjector::new(FaultPlan::new(1).with_link_flap("c", "h", 0.0, 50.0));
        // 20ms backoffs: the link heals at t=50, the fourth attempt succeeds
        let policy = RetryPolicy::fixed(20.0, 6);
        let (result, stats) = client.pull_with_retry(&mut store, "o", &mut chaos, &policy);
        assert_eq!(result, Ok(true));
        assert_eq!(stats.attempts, 4);
        assert!(chaos.now_ms() >= 50.0);

        // with too small an attempt budget the same outage is fatal
        let mut client2 = CachingClient::new("c");
        let mut chaos2 = FaultInjector::new(FaultPlan::new(1).with_link_flap("c", "h", 0.0, 50.0));
        let tight = RetryPolicy::fixed(10.0, 3);
        let (result2, stats2) = client2.pull_with_retry(&mut store, "o", &mut chaos2, &tight);
        assert_eq!(result2, Err(ClientError::Unreachable));
        assert_eq!(stats2.exhausted, 1);
    }
}
