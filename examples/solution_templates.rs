//! The four heavy-industry solution templates of §IV-E, each a one-call
//! API over the Transformer-Estimator-Graph machinery: Failure Prediction
//! Analysis, Root Cause Analysis, Anomaly Analysis and Cohort Analysis.
//!
//! Run with: `cargo run --release --example solution_templates`

use coda::data::synth;
use coda::templates::{
    AnomalyAnalysis, CohortAnalysis, FailurePredictionAnalysis, RootCauseAnalysis,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Failure Prediction Analysis --------------------------------------
    println!("== Failure Prediction Analysis ==");
    let fleet = synth::failure_prediction_data(40, 120, 10, 1);
    let fpa = FailurePredictionAnalysis::new().with_threads(4).run(&fleet)?;
    println!("best pipeline: {}  (F1 {:.3})", fpa.best_pipeline.join(" -> "), fpa.f1);
    println!("factor ranking:");
    for (name, importance) in &fpa.factor_ranking {
        println!("  {name:<12} {importance:.3}");
    }

    // --- Root Cause Analysis ----------------------------------------------
    println!("\n== Root Cause Analysis ==");
    let (process, causal) = synth::root_cause_data(500, 8, 3, 2);
    let rca = RootCauseAnalysis::new().run(&process)?;
    println!(
        "explained R2 {:.3}; true causal factors: {:?}",
        rca.explained_r2,
        causal.iter().map(|c| format!("x{c}")).collect::<Vec<_>>()
    );
    for f in rca.factors.iter().take(4) {
        println!(
            "  {:<4} importance {:.3}  sensitivity/sigma {:+.3}  corr {:+.3}",
            f.name, f.importance, f.sensitivity_per_sigma, f.correlation
        );
    }
    let top = rca.top_factors(1)[0].to_string();
    println!(
        "what-if: moving {top} up one sigma changes the outcome by {:+.3}",
        rca.what_if(&top, 1.0).unwrap()
    );

    // --- Anomaly Analysis --------------------------------------------------
    println!("\n== Anomaly Analysis ==");
    let (sensor, truth) = synth::anomaly_data(2000, 4, 0.03, 3);
    let detector = AnomalyAnalysis::new().fit(&sensor)?;
    let anomalies = detector.detect(&sensor)?;
    let truth_f: Vec<f64> = truth.iter().map(|&t| if t { 1.0 } else { 0.0 }).collect();
    let flags_f: Vec<f64> = anomalies.flags.iter().map(|&f| if f { 1.0 } else { 0.0 }).collect();
    println!(
        "flagged {:.1}% of samples; F1 vs ground truth {:.3}",
        anomalies.flagged_fraction * 100.0,
        coda::data::metrics::f1_score(&truth_f, &flags_f, 1.0)?
    );

    // --- Cohort Analysis ---------------------------------------------------
    println!("\n== Cohort Analysis ==");
    let (assets, cohort_truth) = synth::cohort_data(120, 4, 6, 4);
    let scan = CohortAnalysis::elbow_scan(&assets, 6, 5)?;
    println!("elbow scan (k, inertia): {scan:?}");
    let cohorts = CohortAnalysis::new(4).run(&assets)?;
    println!(
        "4 cohorts with sizes {:?}; purity vs truth {:.3}",
        cohorts.sizes,
        cohorts.purity_against(&cohort_truth)
    );
    Ok(())
}
