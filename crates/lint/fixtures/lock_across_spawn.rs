//! Fixture: a guard held across `thread::spawn` and across a channel
//! `send` — both block whoever needs the lock for as long as the spawned
//! work or a full channel takes. Never compiled; walked as text.

use parking_lot::Mutex;

struct Shared {
    state: Mutex<Vec<u32>>,
}

impl Shared {
    fn spawn_under_lock(&self) {
        let guard = self.state.lock();
        std::thread::spawn(move || {}); // finding: guard held across spawn
        drop(guard);
    }

    fn send_under_lock(&self, tx: &std::sync::mpsc::Sender<u32>) {
        let guard = self.state.lock();
        tx.send(guard.len() as u32); // finding: guard held across send
    }
}
