//! The component contract of the Transformer-Estimator Graph.
//!
//! Every node in a graph performs one of two operation kinds (paper §IV):
//! a **Transform** (`fit` over a collection, then `transform` items) or an
//! **Estimate** (`fit` over a collection producing a trained model, then
//! `predict`). These traits capture exactly that contract, plus the
//! `node__param` external-parameter mechanism of Listing 1.

use std::collections::BTreeMap;
use std::fmt;

use crate::dataset::{Dataset, DatasetError};

/// The modelling task a component (or graph) addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Predict a continuous value.
    Regression,
    /// Predict a class label.
    Classification,
    /// Forecast future values of a time series.
    Forecasting,
}

impl fmt::Display for TaskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskKind::Regression => write!(f, "regression"),
            TaskKind::Classification => write!(f, "classification"),
            TaskKind::Forecasting => write!(f, "forecasting"),
        }
    }
}

/// A parameter value settable on a component via the `node__param` convention.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Floating point parameter.
    F64(f64),
    /// Integer parameter.
    I64(i64),
    /// Boolean parameter.
    Bool(bool),
    /// String parameter.
    Str(String),
}

impl ParamValue {
    /// The value as `f64`, converting integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::F64(v) => Some(*v),
            ParamValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `i64`, truncating floats that are exactly integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::I64(v) => Some(*v),
            ParamValue::F64(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// The value as `usize` if non-negative integral.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::F64(v)
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::I64(v)
    }
}

impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::I64(v as i64)
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_string())
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::F64(v) => write!(f, "{v}"),
            ParamValue::I64(v) => write!(f, "{v}"),
            ParamValue::Bool(v) => write!(f, "{v}"),
            ParamValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// An ordered map of parameter name → value.
///
/// Keys follow the sklearn-style convention of the paper: a bare name like
/// `n_components` when addressed to a component directly, or a qualified
/// `pca__n_components` when addressed to a named node of a graph.
pub type Params = BTreeMap<String, ParamValue>;

/// Splits a qualified `node__param` key into `(node, param)`, if qualified.
///
/// # Examples
///
/// ```
/// use coda_data::traits::split_param_key;
/// assert_eq!(split_param_key("pca__n_components"), Some(("pca", "n_components")));
/// assert_eq!(split_param_key("n_components"), None);
/// ```
pub fn split_param_key(key: &str) -> Option<(&str, &str)> {
    key.split_once("__")
}

/// Error produced by component fitting, transforming or predicting.
#[derive(Debug, Clone, PartialEq)]
pub enum ComponentError {
    /// The component has not been fitted yet.
    NotFitted(String),
    /// A parameter name is unknown to the component.
    UnknownParam {
        /// Component name.
        component: String,
        /// Offending parameter name.
        param: String,
    },
    /// A parameter value is invalid.
    InvalidParam {
        /// Component name.
        component: String,
        /// Parameter name.
        param: String,
        /// Explanation.
        reason: String,
    },
    /// Input data is unusable for this component.
    InvalidInput(String),
    /// Underlying dataset error.
    Dataset(DatasetError),
    /// Numerical failure during fitting.
    Numerical(String),
}

impl fmt::Display for ComponentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentError::NotFitted(name) => write!(f, "component {name} is not fitted"),
            ComponentError::UnknownParam { component, param } => {
                write!(f, "component {component} has no parameter {param}")
            }
            ComponentError::InvalidParam { component, param, reason } => {
                write!(f, "invalid value for {component}.{param}: {reason}")
            }
            ComponentError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            ComponentError::Dataset(e) => write!(f, "dataset error: {e}"),
            ComponentError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for ComponentError {}

impl From<DatasetError> for ComponentError {
    fn from(e: DatasetError) -> Self {
        ComponentError::Dataset(e)
    }
}

/// A Transform-type AI function (paper §IV): learns state from a collection
/// (`fit`) and rewrites data items (`transform`).
///
/// Implementations must be cheap to clone via [`Transformer::clone_box`] so a
/// graph can be re-fitted per cross-validation fold.
pub trait Transformer: Send + Sync {
    /// Stable component name (e.g. `"standard_scaler"`).
    fn name(&self) -> &str;

    /// Fits internal state on `data`.
    ///
    /// # Errors
    ///
    /// Implementation-specific; see each component.
    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError>;

    /// Rewrites `data` using the fitted state.
    ///
    /// # Errors
    ///
    /// [`ComponentError::NotFitted`] when called before [`Transformer::fit`].
    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError>;

    /// Fits then transforms in one step (the internal-node training operation
    /// of Fig. 5).
    ///
    /// # Errors
    ///
    /// As for [`Transformer::fit`] and [`Transformer::transform`].
    fn fit_transform(&mut self, data: &Dataset) -> Result<Dataset, ComponentError> {
        self.fit(data)?;
        self.transform(data)
    }

    /// Sets a parameter by bare name.
    ///
    /// # Errors
    ///
    /// [`ComponentError::UnknownParam`] or [`ComponentError::InvalidParam`].
    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        let _ = value;
        Err(ComponentError::UnknownParam {
            component: self.name().to_string(),
            param: param.to_string(),
        })
    }

    /// A fresh unfitted clone.
    fn clone_box(&self) -> BoxedTransformer;
}

/// Boxed transformer trait object.
pub type BoxedTransformer = Box<dyn Transformer>;

impl Clone for BoxedTransformer {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// An Estimate-type AI function (paper §IV): trains a model on a collection
/// (`fit`) and predicts values for data items (`predict`).
pub trait Estimator: Send + Sync {
    /// Stable component name (e.g. `"random_forest"`).
    fn name(&self) -> &str;

    /// The task kind this estimator addresses.
    fn task(&self) -> TaskKind;

    /// Trains the model on `data` (features + target).
    ///
    /// # Errors
    ///
    /// [`ComponentError::Dataset`] if the target is missing; otherwise
    /// implementation-specific.
    fn fit(&mut self, data: &Dataset) -> Result<(), ComponentError>;

    /// Predicts a value per sample of `data`.
    ///
    /// # Errors
    ///
    /// [`ComponentError::NotFitted`] when called before [`Estimator::fit`].
    fn predict(&self, data: &Dataset) -> Result<Vec<f64>, ComponentError>;

    /// Sets a parameter by bare name.
    ///
    /// # Errors
    ///
    /// [`ComponentError::UnknownParam`] or [`ComponentError::InvalidParam`].
    fn set_param(&mut self, param: &str, value: ParamValue) -> Result<(), ComponentError> {
        let _ = value;
        Err(ComponentError::UnknownParam {
            component: self.name().to_string(),
            param: param.to_string(),
        })
    }

    /// Feature importances (same length as feature count), if the model kind
    /// supports them. Used for interpretability / root-cause analysis (§II).
    fn feature_importances(&self) -> Option<Vec<f64>> {
        None
    }

    /// A fresh unfitted clone.
    fn clone_box(&self) -> BoxedEstimator;
}

/// Boxed estimator trait object.
pub type BoxedEstimator = Box<dyn Estimator>;

impl Clone for BoxedEstimator {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A no-operation transformer: passes data through untouched.
///
/// The paper's graphs use `NoOp()` to let a stage be skipped (Listing 1).
#[derive(Debug, Clone, Default)]
pub struct NoOp;

impl NoOp {
    /// Creates a new no-op transformer.
    pub fn new() -> Self {
        NoOp
    }
}

impl Transformer for NoOp {
    fn name(&self) -> &str {
        "noop"
    }

    fn fit(&mut self, _data: &Dataset) -> Result<(), ComponentError> {
        Ok(())
    }

    fn transform(&self, data: &Dataset) -> Result<Dataset, ComponentError> {
        Ok(data.clone())
    }

    fn clone_box(&self) -> BoxedTransformer {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coda_linalg::Matrix;

    #[test]
    fn param_value_conversions() {
        assert_eq!(ParamValue::from(2.5).as_f64(), Some(2.5));
        assert_eq!(ParamValue::from(3i64).as_f64(), Some(3.0));
        assert_eq!(ParamValue::from(3.0).as_i64(), Some(3));
        assert_eq!(ParamValue::from(3.5).as_i64(), None);
        assert_eq!(ParamValue::from(7usize).as_usize(), Some(7));
        assert_eq!(ParamValue::from(-1i64).as_usize(), None);
        assert_eq!(ParamValue::from(true).as_bool(), Some(true));
        assert_eq!(ParamValue::from("abc").as_str(), Some("abc"));
        assert_eq!(ParamValue::from("abc").as_f64(), None);
    }

    #[test]
    fn split_param_key_variants() {
        assert_eq!(split_param_key("pca__n_components"), Some(("pca", "n_components")));
        assert_eq!(split_param_key("plain"), None);
        // sklearn convention: first "__" splits node from param
        assert_eq!(split_param_key("a__b__c"), Some(("a", "b__c")));
    }

    #[test]
    fn noop_roundtrip() {
        let ds = Dataset::new(Matrix::from_rows(&[&[1.0], &[2.0]]));
        let mut op = NoOp::new();
        let out = op.fit_transform(&ds).unwrap();
        assert_eq!(out, ds);
        assert_eq!(op.name(), "noop");
    }

    #[test]
    fn default_set_param_is_unknown() {
        let mut op = NoOp::new();
        let err = Transformer::set_param(&mut op, "zzz", ParamValue::from(1.0)).unwrap_err();
        assert!(matches!(err, ComponentError::UnknownParam { .. }));
    }

    #[test]
    fn boxed_clone_works() {
        let op: BoxedTransformer = Box::new(NoOp::new());
        let cloned = op.clone();
        assert_eq!(cloned.name(), "noop");
    }

    #[test]
    fn display_impls_nonempty() {
        assert_eq!(TaskKind::Regression.to_string(), "regression");
        assert_eq!(ParamValue::from(2i64).to_string(), "2");
        let e = ComponentError::NotFitted("pca".into());
        assert!(e.to_string().contains("pca"));
    }
}
