//! Cross-validation strategies (paper §IV-B, Figs. 4 and 12).
//!
//! Every strategy produces a sequence of [`Split`]s (train indices,
//! validation indices) over `n` samples. K-fold, train/test and Monte-Carlo
//! splits treat samples as i.i.d.; [`CvStrategy::TimeSeriesSlidingSplit`]
//! preserves temporal order and keeps a buffer window between the train and
//! validation ranges so no information leaks (Fig. 12).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// One cross-validation split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices of the training samples.
    pub train: Vec<usize>,
    /// Indices of the validation samples.
    pub validation: Vec<usize>,
}

/// Error produced when a strategy cannot split `n` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CvError {
    /// Too few samples for the requested configuration.
    TooFewSamples {
        /// Samples available.
        have: usize,
        /// Samples needed.
        need: usize,
    },
    /// A configuration value is invalid (e.g. k < 2).
    InvalidConfig(String),
}

impl fmt::Display for CvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CvError::TooFewSamples { have, need } => {
                write!(f, "too few samples: have {have}, need at least {need}")
            }
            CvError::InvalidConfig(msg) => write!(f, "invalid cv configuration: {msg}"),
        }
    }
}

impl std::error::Error for CvError {}

/// A cross-validation strategy.
///
/// # Examples
///
/// ```
/// use coda_data::cv::CvStrategy;
/// let splits = CvStrategy::KFold { k: 5, shuffle: false, seed: 0 }.splits(10).unwrap();
/// assert_eq!(splits.len(), 5);
/// assert_eq!(splits[0].validation, vec![0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum CvStrategy {
    /// K-fold: partition into `k` equal folds; each fold validates once
    /// (Fig. 4).
    KFold {
        /// Number of folds (≥ 2).
        k: usize,
        /// Shuffle indices before folding.
        shuffle: bool,
        /// Shuffle seed.
        seed: u64,
    },
    /// Stratified K-fold: folds preserve per-class label proportions —
    /// essential for the rare-failure class imbalances of §II. Requires a
    /// target; use [`CvStrategy::splits_for`].
    StratifiedKFold {
        /// Number of folds (≥ 2).
        k: usize,
        /// Shuffle seed.
        seed: u64,
    },
    /// A single shuffled train/test split.
    TrainTestSplit {
        /// Fraction of samples in the validation set, in `(0, 1)`.
        test_fraction: f64,
        /// Shuffle seed.
        seed: u64,
    },
    /// Monte-Carlo (repeated shuffle) splits.
    MonteCarlo {
        /// Number of random splits.
        n_splits: usize,
        /// Fraction of samples in the validation set, in `(0, 1)`.
        test_fraction: f64,
        /// Base seed; split `i` uses `seed + i`.
        seed: u64,
    },
    /// Sliding-window time-series split (Fig. 12): contiguous train window,
    /// buffer gap, contiguous validation window, slid forward `k` times.
    TimeSeriesSlidingSplit {
        /// Train window length.
        train_size: usize,
        /// Gap between train and validation windows.
        buffer: usize,
        /// Validation window length.
        validation_size: usize,
        /// Number of slides (≥ 1).
        k: usize,
    },
    /// Expanding-window time-series split (the "Time Series Split" of
    /// §IV-B, scikit-learn style): samples are cut into `k + 1` contiguous
    /// blocks; fold `i` trains on blocks `0..=i` and validates on block
    /// `i + 1`, so training always precedes validation and grows each fold.
    TimeSeriesExpanding {
        /// Number of folds (≥ 1); requires `k + 1` blocks of data.
        k: usize,
    },
}

impl CvStrategy {
    /// 10-fold unshuffled K-fold — the configuration of Listing 2.
    pub fn kfold(k: usize) -> Self {
        CvStrategy::KFold { k, shuffle: false, seed: 0 }
    }

    /// The number of splits this strategy will produce.
    pub fn n_splits(&self) -> usize {
        match self {
            CvStrategy::KFold { k, .. } | CvStrategy::StratifiedKFold { k, .. } => *k,
            CvStrategy::TrainTestSplit { .. } => 1,
            CvStrategy::MonteCarlo { n_splits, .. } => *n_splits,
            CvStrategy::TimeSeriesSlidingSplit { k, .. } => *k,
            CvStrategy::TimeSeriesExpanding { k } => *k,
        }
    }

    /// Generates the splits for `n` samples.
    ///
    /// # Errors
    ///
    /// [`CvError::InvalidConfig`] for nonsensical settings;
    /// [`CvError::TooFewSamples`] when `n` cannot support the configuration.
    pub fn splits(&self, n: usize) -> Result<Vec<Split>, CvError> {
        match self {
            CvStrategy::KFold { k, shuffle, seed } => kfold_splits(n, *k, *shuffle, *seed),
            CvStrategy::StratifiedKFold { .. } => Err(CvError::InvalidConfig(
                "stratified k-fold needs labels; use splits_for".to_string(),
            )),
            CvStrategy::TrainTestSplit { test_fraction, seed } => {
                shuffle_splits(n, 1, *test_fraction, *seed)
            }
            CvStrategy::MonteCarlo { n_splits, test_fraction, seed } => {
                shuffle_splits(n, *n_splits, *test_fraction, *seed)
            }
            CvStrategy::TimeSeriesSlidingSplit { train_size, buffer, validation_size, k } => {
                sliding_splits(n, *train_size, *buffer, *validation_size, *k)
            }
            CvStrategy::TimeSeriesExpanding { k } => expanding_splits(n, *k),
        }
    }

    /// Generates splits for a dataset, giving label-aware strategies
    /// (stratified K-fold) access to the target. All other strategies fall
    /// back to [`CvStrategy::splits`] over the sample count.
    ///
    /// # Errors
    ///
    /// As for [`CvStrategy::splits`], plus [`CvError::InvalidConfig`] when a
    /// label-aware strategy is used on an unlabeled dataset.
    pub fn splits_for(&self, data: &crate::dataset::Dataset) -> Result<Vec<Split>, CvError> {
        match self {
            CvStrategy::StratifiedKFold { k, seed } => {
                let y = data.target().ok_or_else(|| {
                    CvError::InvalidConfig(
                        "stratified k-fold requires a labeled dataset".to_string(),
                    )
                })?;
                stratified_splits(y, *k, *seed)
            }
            _ => self.splits(data.n_samples()),
        }
    }
}

impl fmt::Display for CvStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CvStrategy::KFold { k, shuffle, .. } => {
                write!(f, "kfold(k={k}{})", if *shuffle { ", shuffled" } else { "" })
            }
            CvStrategy::TrainTestSplit { test_fraction, .. } => {
                write!(f, "train-test(test={test_fraction})")
            }
            CvStrategy::MonteCarlo { n_splits, test_fraction, .. } => {
                write!(f, "monte-carlo(n={n_splits}, test={test_fraction})")
            }
            CvStrategy::TimeSeriesSlidingSplit { train_size, buffer, validation_size, k } => {
                write!(
                    f,
                    "ts-sliding(train={train_size}, buffer={buffer}, val={validation_size}, k={k})"
                )
            }
            CvStrategy::StratifiedKFold { k, .. } => write!(f, "stratified-kfold(k={k})"),
            CvStrategy::TimeSeriesExpanding { k } => write!(f, "ts-expanding(k={k})"),
        }
    }
}

fn kfold_splits(n: usize, k: usize, shuffle: bool, seed: u64) -> Result<Vec<Split>, CvError> {
    if k < 2 {
        return Err(CvError::InvalidConfig(format!("k must be >= 2, got {k}")));
    }
    if n < k {
        return Err(CvError::TooFewSamples { have: n, need: k });
    }
    let mut idx: Vec<usize> = (0..n).collect();
    if shuffle {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
    }
    // fold sizes differ by at most one, matching sklearn
    let base = n / k;
    let extra = n % k;
    let mut splits = Vec::with_capacity(k);
    let mut start = 0;
    for fold in 0..k {
        let size = base + usize::from(fold < extra);
        let validation: Vec<usize> = idx[start..start + size].to_vec();
        let mut train = Vec::with_capacity(n - size);
        train.extend_from_slice(&idx[..start]);
        train.extend_from_slice(&idx[start + size..]);
        splits.push(Split { train, validation });
        start += size;
    }
    Ok(splits)
}

fn shuffle_splits(
    n: usize,
    n_splits: usize,
    test_fraction: f64,
    seed: u64,
) -> Result<Vec<Split>, CvError> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(CvError::InvalidConfig(format!(
            "test_fraction must be in (0,1), got {test_fraction}"
        )));
    }
    if n_splits == 0 {
        return Err(CvError::InvalidConfig("n_splits must be >= 1".to_string()));
    }
    if n < 2 {
        return Err(CvError::TooFewSamples { have: n, need: 2 });
    }
    let n_test = ((n as f64) * test_fraction).round().clamp(1.0, (n - 1) as f64) as usize;
    let mut splits = Vec::with_capacity(n_splits);
    for i in 0..n_splits {
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_add(i as u64));
        idx.shuffle(&mut rng);
        let (validation, train) = idx.split_at(n_test);
        splits.push(Split { train: train.to_vec(), validation: validation.to_vec() });
    }
    Ok(splits)
}

fn sliding_splits(
    n: usize,
    train_size: usize,
    buffer: usize,
    validation_size: usize,
    k: usize,
) -> Result<Vec<Split>, CvError> {
    if train_size == 0 || validation_size == 0 || k == 0 {
        return Err(CvError::InvalidConfig(
            "train_size, validation_size and k must be positive".to_string(),
        ));
    }
    let window = train_size + buffer + validation_size;
    if n < window {
        return Err(CvError::TooFewSamples { have: n, need: window });
    }
    // Slide so that the k-th window ends at the last sample; steps are as
    // evenly spaced as possible.
    let slack = n - window;
    let mut splits = Vec::with_capacity(k);
    for i in 0..k {
        let offset = if k == 1 { slack } else { slack * i / (k - 1) };
        let train: Vec<usize> = (offset..offset + train_size).collect();
        let val_start = offset + train_size + buffer;
        let validation: Vec<usize> = (val_start..val_start + validation_size).collect();
        splits.push(Split { train, validation });
    }
    Ok(splits)
}

fn stratified_splits(y: &[f64], k: usize, seed: u64) -> Result<Vec<Split>, CvError> {
    if k < 2 {
        return Err(CvError::InvalidConfig(format!("k must be >= 2, got {k}")));
    }
    let n = y.len();
    if n < k {
        return Err(CvError::TooFewSamples { have: n, need: k });
    }
    // group indices per class, shuffle within class, deal round-robin into
    // folds so every fold holds ~1/k of each class
    let mut classes: Vec<f64> = y.to_vec();
    classes.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    classes.dedup();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut fold_members: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut cursor = 0usize;
    for class in classes {
        let mut members: Vec<usize> = (0..n).filter(|&i| y[i] == class).collect();
        members.shuffle(&mut rng);
        for idx in members {
            fold_members[cursor % k].push(idx);
            cursor += 1;
        }
    }
    if fold_members.iter().any(|f| f.is_empty()) {
        return Err(CvError::TooFewSamples { have: n, need: k });
    }
    let splits = (0..k)
        .map(|fold| {
            let validation = fold_members[fold].clone();
            let train: Vec<usize> = (0..k)
                .filter(|&f| f != fold)
                .flat_map(|f| fold_members[f].iter().copied())
                .collect();
            Split { train, validation }
        })
        .collect();
    Ok(splits)
}

fn expanding_splits(n: usize, k: usize) -> Result<Vec<Split>, CvError> {
    if k == 0 {
        return Err(CvError::InvalidConfig("k must be >= 1".to_string()));
    }
    let blocks = k + 1;
    if n < blocks {
        return Err(CvError::TooFewSamples { have: n, need: blocks });
    }
    // block sizes differ by at most one, earliest blocks take the remainder
    let base = n / blocks;
    let extra = n % blocks;
    let mut bounds = Vec::with_capacity(blocks + 1);
    bounds.push(0usize);
    for b in 0..blocks {
        let size = base + usize::from(b < extra);
        bounds.push(bounds[b] + size);
    }
    let mut splits = Vec::with_capacity(k);
    for fold in 0..k {
        let train: Vec<usize> = (0..bounds[fold + 1]).collect();
        let validation: Vec<usize> = (bounds[fold + 1]..bounds[fold + 2]).collect();
        splits.push(Split { train, validation });
    }
    Ok(splits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn kfold_partitions_disjoint_covering() {
        let splits = CvStrategy::kfold(4).splits(10).unwrap();
        assert_eq!(splits.len(), 4);
        let mut all_val = BTreeSet::new();
        for s in &splits {
            // train and validation are disjoint, and together cover 0..n
            let t: BTreeSet<_> = s.train.iter().collect();
            let v: BTreeSet<_> = s.validation.iter().collect();
            assert!(t.is_disjoint(&v));
            assert_eq!(t.len() + v.len(), 10);
            for i in &s.validation {
                assert!(all_val.insert(*i), "validation folds must not overlap");
            }
        }
        assert_eq!(all_val.len(), 10);
    }

    #[test]
    fn kfold_fold_sizes_balanced() {
        let splits = CvStrategy::kfold(3).splits(10).unwrap();
        let sizes: Vec<usize> = splits.iter().map(|s| s.validation.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn kfold_shuffled_differs_but_partitions() {
        let a = CvStrategy::KFold { k: 5, shuffle: true, seed: 1 }.splits(50).unwrap();
        let b = CvStrategy::KFold { k: 5, shuffle: false, seed: 1 }.splits(50).unwrap();
        assert_ne!(a[0].validation, b[0].validation);
        let union: BTreeSet<usize> = a.iter().flat_map(|s| s.validation.clone()).collect();
        assert_eq!(union.len(), 50);
    }

    #[test]
    fn kfold_rejects_bad_config() {
        assert!(matches!(CvStrategy::kfold(1).splits(10), Err(CvError::InvalidConfig(_))));
        assert!(matches!(
            CvStrategy::kfold(5).splits(3),
            Err(CvError::TooFewSamples { have: 3, need: 5 })
        ));
    }

    #[test]
    fn train_test_single_split() {
        let splits = CvStrategy::TrainTestSplit { test_fraction: 0.3, seed: 4 }.splits(10).unwrap();
        assert_eq!(splits.len(), 1);
        assert_eq!(splits[0].validation.len(), 3);
        assert_eq!(splits[0].train.len(), 7);
    }

    #[test]
    fn monte_carlo_varies_by_split() {
        let splits =
            CvStrategy::MonteCarlo { n_splits: 3, test_fraction: 0.2, seed: 9 }.splits(20).unwrap();
        assert_eq!(splits.len(), 3);
        assert_ne!(splits[0].validation, splits[1].validation);
        for s in &splits {
            assert_eq!(s.validation.len(), 4);
            assert_eq!(s.train.len(), 16);
        }
    }

    #[test]
    fn monte_carlo_rejects_bad_fraction() {
        for f in [0.0, 1.0, -0.5] {
            assert!(CvStrategy::MonteCarlo { n_splits: 2, test_fraction: f, seed: 0 }
                .splits(10)
                .is_err());
        }
    }

    #[test]
    fn sliding_split_no_leakage() {
        let s = CvStrategy::TimeSeriesSlidingSplit {
            train_size: 10,
            buffer: 3,
            validation_size: 5,
            k: 4,
        };
        let splits = s.splits(40).unwrap();
        assert_eq!(splits.len(), 4);
        for sp in &splits {
            let max_train = *sp.train.iter().max().unwrap();
            let min_val = *sp.validation.iter().min().unwrap();
            // every validation index is strictly after train + buffer
            assert!(min_val > max_train + 2, "buffer must separate train and validation");
            assert_eq!(min_val, max_train + 4); // buffer of exactly 3
                                                // windows are contiguous
            assert_eq!(sp.train.len(), 10);
            assert_eq!(sp.validation.len(), 5);
            assert_eq!(*sp.train.last().unwrap() - sp.train[0], 9);
        }
        // the last window ends at the final sample
        assert_eq!(*splits[3].validation.last().unwrap(), 39);
        // windows move forward
        assert!(splits[1].train[0] > splits[0].train[0]);
    }

    #[test]
    fn sliding_split_exact_fit_single_position() {
        let s = CvStrategy::TimeSeriesSlidingSplit {
            train_size: 5,
            buffer: 0,
            validation_size: 2,
            k: 3,
        };
        let splits = s.splits(7).unwrap();
        // no slack: all three windows identical
        assert_eq!(splits[0], splits[2]);
    }

    #[test]
    fn sliding_split_too_few_samples() {
        let s = CvStrategy::TimeSeriesSlidingSplit {
            train_size: 10,
            buffer: 2,
            validation_size: 5,
            k: 2,
        };
        assert!(matches!(s.splits(16), Err(CvError::TooFewSamples { have: 16, need: 17 })));
    }

    #[test]
    fn stratified_preserves_class_ratio_per_fold() {
        // 100 samples, 10% positive
        let y: Vec<f64> = (0..100).map(|i| if i % 10 == 0 { 1.0 } else { 0.0 }).collect();
        let ds = crate::dataset::Dataset::new(coda_linalg::Matrix::zeros(100, 1))
            .with_target(y.clone())
            .unwrap();
        let splits = CvStrategy::StratifiedKFold { k: 5, seed: 3 }.splits_for(&ds).unwrap();
        assert_eq!(splits.len(), 5);
        let mut all_val = BTreeSet::new();
        for s in &splits {
            let pos = s.validation.iter().filter(|&&i| y[i] == 1.0).count();
            assert_eq!(pos, 2, "each fold must hold exactly 1/5 of the positives");
            assert_eq!(s.validation.len(), 20);
            for i in &s.validation {
                assert!(all_val.insert(*i));
            }
        }
        assert_eq!(all_val.len(), 100);
    }

    #[test]
    fn stratified_requires_labels_and_enough_samples() {
        let strat = CvStrategy::StratifiedKFold { k: 3, seed: 0 };
        assert!(matches!(strat.splits(30), Err(CvError::InvalidConfig(_))));
        let unlabeled = crate::dataset::Dataset::new(coda_linalg::Matrix::zeros(30, 1));
        assert!(matches!(strat.splits_for(&unlabeled), Err(CvError::InvalidConfig(_))));
        let tiny = crate::dataset::Dataset::new(coda_linalg::Matrix::zeros(2, 1))
            .with_target(vec![0.0, 1.0])
            .unwrap();
        assert!(matches!(strat.splits_for(&tiny), Err(CvError::TooFewSamples { .. })));
    }

    #[test]
    fn splits_for_falls_back_for_plain_strategies() {
        let ds = crate::dataset::Dataset::new(coda_linalg::Matrix::zeros(12, 1));
        let a = CvStrategy::kfold(3).splits_for(&ds).unwrap();
        let b = CvStrategy::kfold(3).splits(12).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn expanding_split_grows_and_never_leaks() {
        let splits = CvStrategy::TimeSeriesExpanding { k: 4 }.splits(50).unwrap();
        assert_eq!(splits.len(), 4);
        for (i, s) in splits.iter().enumerate() {
            // training always precedes validation
            let max_train = *s.train.iter().max().unwrap();
            let min_val = *s.validation.iter().min().unwrap();
            assert_eq!(min_val, max_train + 1);
            // training grows each fold
            if i > 0 {
                assert!(s.train.len() > splits[i - 1].train.len());
            }
        }
        // the final validation block ends at the last sample
        assert_eq!(*splits[3].validation.last().unwrap(), 49);
    }

    #[test]
    fn expanding_split_block_sizes_balanced() {
        let splits = CvStrategy::TimeSeriesExpanding { k: 3 }.splits(10).unwrap();
        // 10 samples into 4 blocks: 3,3,2,2
        assert_eq!(splits[0].train.len(), 3);
        assert_eq!(splits[0].validation.len(), 3);
        assert_eq!(splits[2].validation.len(), 2);
    }

    #[test]
    fn expanding_split_errors() {
        assert!(matches!(
            CvStrategy::TimeSeriesExpanding { k: 0 }.splits(10),
            Err(CvError::InvalidConfig(_))
        ));
        assert!(matches!(
            CvStrategy::TimeSeriesExpanding { k: 10 }.splits(5),
            Err(CvError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn n_splits_matches() {
        assert_eq!(CvStrategy::kfold(7).n_splits(), 7);
        assert_eq!(
            CvStrategy::MonteCarlo { n_splits: 3, test_fraction: 0.5, seed: 0 }.n_splits(),
            3
        );
        assert_eq!(CvStrategy::TrainTestSplit { test_fraction: 0.5, seed: 0 }.n_splits(), 1);
    }

    #[test]
    fn display_nonempty() {
        for s in [
            CvStrategy::kfold(3),
            CvStrategy::TrainTestSplit { test_fraction: 0.2, seed: 0 },
            CvStrategy::MonteCarlo { n_splits: 2, test_fraction: 0.2, seed: 0 },
            CvStrategy::TimeSeriesSlidingSplit {
                train_size: 5,
                buffer: 1,
                validation_size: 2,
                k: 2,
            },
        ] {
            assert!(!s.to_string().is_empty());
        }
    }
}
