/root/repo/target/debug/deps/coda_ml-89fdc2dabf2a49a4.d: crates/ml/src/lib.rs crates/ml/src/balance.rs crates/ml/src/bayes.rs crates/ml/src/boost.rs crates/ml/src/forest.rs crates/ml/src/kernel_pca.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/lda.rs crates/ml/src/linear.rs crates/ml/src/pca.rs crates/ml/src/scalers.rs crates/ml/src/select.rs crates/ml/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_ml-89fdc2dabf2a49a4.rmeta: crates/ml/src/lib.rs crates/ml/src/balance.rs crates/ml/src/bayes.rs crates/ml/src/boost.rs crates/ml/src/forest.rs crates/ml/src/kernel_pca.rs crates/ml/src/kmeans.rs crates/ml/src/knn.rs crates/ml/src/lda.rs crates/ml/src/linear.rs crates/ml/src/pca.rs crates/ml/src/scalers.rs crates/ml/src/select.rs crates/ml/src/tree.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/balance.rs:
crates/ml/src/bayes.rs:
crates/ml/src/boost.rs:
crates/ml/src/forest.rs:
crates/ml/src/kernel_pca.rs:
crates/ml/src/kmeans.rs:
crates/ml/src/knn.rs:
crates/ml/src/lda.rs:
crates/ml/src/linear.rs:
crates/ml/src/pca.rs:
crates/ml/src/scalers.rs:
crates/ml/src/select.rs:
crates/ml/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
