/root/repo/target/debug/deps/coda_timeseries-6f85fcb1e4b3eb57.d: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs

/root/repo/target/debug/deps/coda_timeseries-6f85fcb1e4b3eb57: crates/timeseries/src/lib.rs crates/timeseries/src/deep.rs crates/timeseries/src/forecast.rs crates/timeseries/src/models.rs crates/timeseries/src/pipeline.rs crates/timeseries/src/series.rs crates/timeseries/src/window.rs

crates/timeseries/src/lib.rs:
crates/timeseries/src/deep.rs:
crates/timeseries/src/forecast.rs:
crates/timeseries/src/models.rs:
crates/timeseries/src/pipeline.rs:
crates/timeseries/src/series.rs:
crates/timeseries/src/window.rs:
