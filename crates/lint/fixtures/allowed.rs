//! Fixture: the escape hatch done right — every violation carries a
//! `lint:allow` directive WITH a justification, so the file must produce
//! zero findings. Never compiled; walked as text.

fn justified_unwrap(v: Option<u32>) -> u32 {
    // lint:allow(panic_safety) v is produced by a validator two lines up
    v.unwrap()
}

fn justified_expect(m: &std::collections::BTreeMap<u32, u32>) -> u32 {
    // lint:allow(panic_safety) the map is seeded with key 0 at construction
    *m.get(&0).expect("seeded")
}
