//! Kill-restart acceptance test: the crash-stop failure subsystem must
//! converge from *every* WAL crash point. Under a fixed seed, the driver
//! is run crash-free to establish a baseline digest and the home's total
//! WAL operation count; then the home is killed after each of those
//! operations in turn, restarted, and the run must (a) replay the WAL to
//! a byte-identical pre-crash state, (b) fail the home role over through
//! the lease gate only, (c) reap orphaned DARR claims, and (d) end with
//! the exact same store/DARR digest and cooperative-worklist outcome as
//! the no-crash run. Same-seed instrumented replays must render
//! byte-identical trace logs and metric expositions.

use coda::chaos::CrashPlan;
use coda::cluster::{run_crash_recovery, run_crash_recovery_obs, CrashRecoveryConfig};
use coda::obs::Obs;

fn acceptance_config(seed: u64) -> CrashRecoveryConfig {
    CrashRecoveryConfig { seed, ..CrashRecoveryConfig::default() }
}

/// Reads the CI seed matrix (`CRASH_SEED` env var) or falls back to the
/// default acceptance seed, so one test body serves every matrix entry.
fn matrix_seed() -> u64 {
    std::env::var("CRASH_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(7)
}

#[test]
fn every_wal_crash_point_converges_to_the_no_crash_outcome() {
    let seed = matrix_seed();
    let baseline = run_crash_recovery(&acceptance_config(seed));
    assert_eq!(baseline.completed, 8, "the baseline itself must converge");
    assert_eq!(baseline.failovers, 0);
    assert!(baseline.home_ops > 0, "the baseline must log operations");

    // kill the home after every single WAL record it will ever append
    for at_op in 1..=baseline.home_ops {
        let cfg = CrashRecoveryConfig {
            plan: CrashPlan::new().with_crash_at("node-0", at_op, Some(500.0)),
            ..acceptance_config(seed)
        };
        let report = run_crash_recovery(&cfg);
        assert_eq!(report.crashes, 1, "crash point {at_op} must fire");
        assert_eq!(report.restarts, 1, "crash point {at_op} must restart");
        assert_eq!(
            report.byte_identical_recoveries, 1,
            "crash point {at_op}: WAL replay must reproduce the pre-crash state byte for byte"
        );
        assert_eq!(report.recovery_mismatches, 0, "crash point {at_op}");
        assert_eq!(
            report.digest, baseline.digest,
            "crash point {at_op}: final store/DARR state must match the no-crash run"
        );
        assert_eq!(report.completed, baseline.completed, "crash point {at_op}");
    }
}

#[test]
fn home_crash_without_restart_still_converges_through_failover() {
    let seed = matrix_seed();
    let baseline = run_crash_recovery(&acceptance_config(seed));
    let cfg = CrashRecoveryConfig {
        plan: CrashPlan::new().with_crash_at("node-0", 9, None),
        ..acceptance_config(seed)
    };
    let report = run_crash_recovery(&cfg);
    assert_eq!(report.failovers, 1, "the surviving replica must be promoted");
    assert_eq!(report.final_home, "node-1");
    assert!(report.suspicions >= 1, "the detector must pass through suspicion");
    assert!(report.deaths >= 1, "…before the dead verdict");
    assert!(report.reaped_claims >= 1, "the orphaned claim must be reaped");
    assert!(report.takeovers >= 1, "…and its work item taken over");
    assert_eq!(report.digest, baseline.digest, "one node is enough to finish");
}

#[test]
fn same_seed_replays_traces_and_metrics_byte_identically() {
    let cfg = CrashRecoveryConfig {
        plan: CrashPlan::new().with_crash_at("node-0", 10, Some(500.0)),
        ..acceptance_config(matrix_seed())
    };
    let obs_a = Obs::deterministic();
    let report_a = run_crash_recovery_obs(&cfg, Some(&obs_a));
    let obs_b = Obs::deterministic();
    let report_b = run_crash_recovery_obs(&cfg, Some(&obs_b));

    assert_eq!(report_a, report_b, "reports must replay bit-identically");
    let log_a = obs_a.tracer().render_log();
    assert!(!log_a.is_empty(), "the run must emit trace events");
    assert_eq!(log_a, obs_b.tracer().render_log(), "trace logs must be byte-identical");
    assert_eq!(
        obs_a.registry().render_prometheus(),
        obs_b.registry().render_prometheus(),
        "metric expositions must be byte-identical"
    );

    // instrumentation must not perturb the uninstrumented ground truth
    assert_eq!(report_a, run_crash_recovery(&cfg));

    // the trace carries every failure-path transition…
    for marker in [
        "event recovery.crash ",
        "event recovery.promote ",
        "event recovery.reap ",
        "span_start store.wal_replay ",
        "event recovery.rejoin ",
    ] {
        assert!(log_a.contains(marker), "trace must contain {marker:?}");
    }
    // …and the registry the issue-mandated counters
    let prom = obs_a.registry().render_prometheus();
    assert!(prom.contains("coda_cluster_failovers_total 1"));
    assert!(prom.contains("coda_darr_claims_reaped_total"));
    assert!(prom.contains("coda_store_wal_replays 1"));
}

#[test]
fn no_spurious_failovers_across_the_chaos_seed_matrix() {
    // the detector + lease gate must never move the home role in a
    // crash-free run, whatever the seed — same seed set as chaos_e2e
    for seed in [1u64, 7, 17, 18, 23, 64, 101] {
        let report = run_crash_recovery(&acceptance_config(seed));
        assert_eq!(report.failovers, 0, "seed {seed}: zero spurious failovers");
        assert_eq!(report.deaths, 0, "seed {seed}: no dead verdicts without a crash");
        assert_eq!(report.reaped_claims, 0, "seed {seed}: nothing to reap");
        assert_eq!(report.completed, 8, "seed {seed}: the worklist completes");
        assert_eq!(report.final_home, "node-0", "seed {seed}: the home never moves");
    }
}
