/root/repo/target/debug/examples/timeseries_forecast-e8607210a6fc9976.d: examples/timeseries_forecast.rs Cargo.toml

/root/repo/target/debug/examples/libtimeseries_forecast-e8607210a6fc9976.rmeta: examples/timeseries_forecast.rs Cargo.toml

examples/timeseries_forecast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
