//! Suppression case: the same map-iteration escape as `unordered_flow.rs`,
//! but the collected keys are sorted before serialization — the flow
//! regains a deterministic order and nothing may fire.

use std::collections::HashMap;

pub fn export_counts(m: &HashMap<String, u64>) -> String {
    let mut names: Vec<String> = m.keys().cloned().collect();
    names.sort();
    to_json(&names)
}

fn to_json(_names: &[String]) -> String {
    String::new()
}
