/root/repo/target/debug/deps/coda_darr-e325b168dc16c9ec.d: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs Cargo.toml

/root/repo/target/debug/deps/libcoda_darr-e325b168dc16c9ec.rmeta: crates/darr/src/lib.rs crates/darr/src/coop.rs crates/darr/src/record.rs crates/darr/src/repo.rs crates/darr/src/resilient.rs Cargo.toml

crates/darr/src/lib.rs:
crates/darr/src/coop.rs:
crates/darr/src/record.rs:
crates/darr/src/repo.rs:
crates/darr/src/resilient.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
